//! Bare fault-injection campaign on a hand-written assembly program —
//! using the substrate directly, without any machine learning.
//!
//! Writes a small dot-product kernel in GLAIVE assembly, runs a systematic
//! single-bit-upset campaign over every operand bit, and prints the
//! per-instruction vulnerability table the campaign derives.
//!
//! Run with: `cargo run --release --example fi_campaign`

use glaive_faultsim::{Campaign, CampaignConfig};
use glaive_isa::{AluOp, Asm, BranchCond, Reg};

fn main() {
    // dot = Σ a[i] * b[i] over 8-element vectors at addresses 0 and 8.
    let mut asm = Asm::new("dot-product");
    asm.set_mem_words(16);
    let (acc, i, n, t1, t2, addr) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    asm.li(acc, 0);
    asm.li(i, 0);
    asm.li(n, 8);
    let top = asm.label();
    asm.bind(top);
    asm.mov(addr, i);
    asm.load(t1, addr, 0); // a[i]
    asm.load(t2, addr, 8); // b[i]
    asm.alu(AluOp::Mul, t1, t1, t2);
    asm.alu(AluOp::Add, acc, acc, t1);
    asm.alu_imm(AluOp::Add, i, i, 1);
    asm.branch(BranchCond::Lt, i, n, top);
    asm.out(acc);
    asm.halt();
    let program = asm.finish().expect("labels resolve");

    println!("{}", program.disassemble());

    let inputs: Vec<u64> = (1..=16).collect();
    let config = CampaignConfig {
        bit_stride: 1, // all 64 bits — the paper's setting
        instances_per_site: 2,
        ..CampaignConfig::default()
    };
    let truth = Campaign::try_new(&program, &inputs, config)
        .expect("valid config")
        .run();

    println!(
        "campaign: {} injections, golden run {} dynamic instructions",
        truth.total_injections(),
        truth.golden().dyn_instrs
    );
    println!("\npc    crash  sdc    masked  injections  instruction");
    let instr_vuln = truth
        .try_instruction_vulnerability()
        .expect("campaign produced records");
    for iv in instr_vuln {
        println!(
            "{:<5} {:.3}  {:.3}  {:.3}   {:>10}  {}",
            iv.pc,
            iv.tuple.crash,
            iv.tuple.sdc,
            iv.tuple.masked,
            iv.injections,
            program.instrs()[iv.pc]
        );
    }
    let pv = truth
        .try_program_vulnerability()
        .expect("campaign produced records");
    println!(
        "\nprogram vulnerability: crash={:.3} sdc={:.3} masked={:.3}",
        pv.crash, pv.sdc, pv.masked
    );
}
