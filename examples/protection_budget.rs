//! Protection-budget planning: which instructions should be hardened when
//! only K% of them can be protected (e.g. by selective duplication)?
//!
//! The example sweeps the budget from 5% to 50% on the sobel benchmark and
//! reports, for each budget, how much of the FI-ideal protection set the
//! GLAIVE-estimated set covers — the paper's top-K coverage metric — and
//! what fraction of failing faults the protected set would intercept.
//!
//! Run with: `cargo run --release --example protection_budget`

use glaive::{metrics, prepare_benchmark, train_models, Method, PipelineConfig};

fn main() {
    let config = PipelineConfig::quick_test();

    // Train on the other control-sensitive programs.
    let train: Vec<_> = [
        glaive_bench_suite::control::dijkstra::build(7),
        glaive_bench_suite::control::astar::build(7),
        glaive_bench_suite::control::jmeint::build(7),
    ]
    .into_iter()
    .map(|b| prepare_benchmark(b, &config))
    .collect();
    let train_refs: Vec<&_> = train.iter().collect();
    let models = train_models(&train_refs, &config);

    let target = prepare_benchmark(glaive_bench_suite::control::sobel::build(7), &config);
    let estimate = models.estimate(Method::Glaive, &target);
    let ranked = metrics::ranking(&estimate, &target);

    // Total failure probability mass over the program (from FI truth),
    // used to report how much the protected set intercepts.
    let total_failure: f64 = target
        .covered_pcs()
        .iter()
        .map(|&pc| target.fi_tuples[pc].expect("covered").failure() * target.fi_weights[pc] as f64)
        .sum();

    println!("protecting sobel with GLAIVE-ranked instruction sets:");
    println!("budget\tset_size\ttop-K coverage\tfailure mass intercepted");
    for k in [5.0, 10.0, 20.0, 30.0, 40.0, 50.0] {
        let size = metrics::top_k_size(&target, k);
        let coverage = metrics::top_k_coverage(&estimate, &target, k);
        let intercepted: f64 = ranked[..size]
            .iter()
            .map(|&pc| {
                target.fi_tuples[pc].expect("covered").failure() * target.fi_weights[pc] as f64
            })
            .sum();
        println!(
            "{k:>4}%\t{size:>8}\t{coverage:>10.3}\t{:>10.1}%",
            intercepted / total_failure * 100.0
        );
    }
}
