//! Quickstart: estimate the instruction vulnerability of an unseen program.
//!
//! This walks the full GLAIVE pipeline on a miniature setup:
//! 1. pick training benchmarks and run fault-injection campaigns on them,
//! 2. train the augmented GraphSAGE on their labelled bit-level CDFGs,
//! 3. estimate vulnerability on a program the model has never seen,
//! 4. print the most vulnerable instructions with their disassembly.
//!
//! Run with: `cargo run --release --example quickstart`

use glaive::{metrics, prepare_benchmark, train_models, Method, PipelineConfig};

fn main() {
    // Quick config: subsampled bits and a small model, so this finishes in
    // seconds. Use PipelineConfig::default() for experiment-scale runs.
    let config = PipelineConfig::quick_test();

    println!("== 1. fault-injection campaigns on the training programs ==");
    let train_a = prepare_benchmark(glaive_bench_suite::data::fft::build(7), &config);
    let train_b = prepare_benchmark(glaive_bench_suite::data::swaptions::build(7), &config);
    for d in [&train_a, &train_b] {
        println!(
            "  {}: {} injections over {} instructions ({} labelled bit nodes)",
            d.bench.name,
            d.truth.total_injections(),
            d.truth.instructions_covered(),
            d.bit_datapoints()
        );
    }

    println!("== 2. training GLAIVE (+ baselines) ==");
    let models = train_models(&[&train_a, &train_b], &config);

    println!("== 3. estimating an unseen program (radix) ==");
    let test = prepare_benchmark(glaive_bench_suite::data::radix::build(7), &config);
    let estimate = models.estimate(Method::Glaive, &test);

    println!("== 4. most vulnerable instructions ==");
    let ranked = metrics::ranking(&estimate, &test);
    println!("  rank  pc    crash  sdc    masked  instruction");
    for (rank, &pc) in ranked.iter().take(10).enumerate() {
        let t = estimate[pc].expect("ranked instructions have estimates");
        println!(
            "  {:>4}  {:>4}  {:.3}  {:.3}  {:.3}   {}",
            rank + 1,
            pc,
            t.crash,
            t.sdc,
            t.masked,
            test.bench.program().instrs()[pc]
        );
    }

    let coverage = metrics::top_k_coverage(&estimate, &test, 20.0);
    let pv_err = metrics::program_vulnerability_error(&estimate, &test);
    println!("top-20% coverage vs FI ground truth: {coverage:.3}");
    println!("program vulnerability error vs FI:   {pv_err:.3}");
}
