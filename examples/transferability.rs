//! Transferability: GLAIVE's inductive model applies to programs it has
//! never seen, without retraining (paper §V-A).
//!
//! Trains on all five control-sensitive train/test benchmarks and then
//! estimates the held-out validation program `inversek2j`, comparing the
//! learned model against (a) the FI ground truth and (b) a naive
//! "predict the training set's majority class" baseline.
//!
//! Run with: `cargo run --release --example transferability`

use glaive::{metrics, prepare_benchmark, train_models, Method, PipelineConfig};
use glaive_bench_suite::control;

fn main() {
    let config = PipelineConfig::quick_test();

    let train: Vec<_> = [
        control::dijkstra::build(7),
        control::astar::build(7),
        control::streamcluster::build(7),
        control::jmeint::build(7),
        control::sobel::build(7),
    ]
    .into_iter()
    .map(|b| prepare_benchmark(b, &config))
    .collect();
    let train_refs: Vec<&_> = train.iter().collect();
    let models = train_models(&train_refs, &config);

    let unseen = prepare_benchmark(control::inversek2j::build(7), &config);
    println!(
        "unseen program: {} ({} instructions, {} labelled bit nodes)",
        unseen.bench.name,
        unseen.bench.program().len(),
        unseen.bit_datapoints()
    );

    // Majority-class baseline from the training labels.
    let mut counts = [0usize; 3];
    for d in &train {
        for (i, &m) in d.mask.iter().enumerate() {
            if m {
                counts[d.labels[i]] += 1;
            }
        }
    }
    let majority = (0..3).max_by_key(|&c| counts[c]).expect("three classes");
    let majority_preds = vec![majority; unseen.cdfg.node_count()];

    let glaive_preds = models
        .bit_predictions(Method::Glaive, &unseen)
        .expect("bit-level method");
    println!(
        "bit accuracy on unseen program: GLAIVE {:.3} vs majority-class {:.3}",
        metrics::bit_accuracy(&glaive_preds, &unseen),
        metrics::bit_accuracy(&majority_preds, &unseen),
    );

    for method in [
        Method::Glaive,
        Method::MlpBit,
        Method::RfInst,
        Method::SvmInst,
    ] {
        let est = models.estimate(method, &unseen);
        println!(
            "{:9}: top-25% coverage {:.3}, program vulnerability error {:.3}",
            method.name(),
            metrics::top_k_coverage(&est, &unseen, 25.0),
            metrics::program_vulnerability_error(&est, &unseen),
        );
    }
}
