//! Meta-crate re-exporting the full GLAIVE reproduction API.
pub use glaive as pipeline;
pub use glaive_bench_suite as bench_suite;
pub use glaive_cdfg as cdfg;
pub use glaive_faultsim as faultsim;
pub use glaive_gnn as gnn;
pub use glaive_isa as isa;
pub use glaive_lang as lang;
pub use glaive_ml as ml;
pub use glaive_nn as nn;
pub use glaive_sim as sim;
