//! Developer utility: times each estimator family inside one training
//! split of the quick configuration, then the micro-phases of the GNN
//! (resample / aggregate / forward) on the split's largest graph.
//!
//! Run with: `cargo run -p glaive-bench --release --example profile_training`

use std::time::Instant;

use glaive::{prepare_benchmark, train_models, PipelineConfig};
use glaive_gnn::{GraphSage, TrainGraph};

fn main() {
    let config = PipelineConfig::quick_test();
    let names = ["dijkstra", "sobel", "astar", "jmeint", "streamcluster"];
    let mut data = Vec::new();
    for b in glaive_bench_suite::suite(7) {
        if names.contains(&b.name) {
            data.push(prepare_benchmark(b, &config));
        }
    }
    let refs: Vec<&_> = data.iter().collect();

    let t = Instant::now();
    let graphs: Vec<TrainGraph<'_>> = refs
        .iter()
        .map(|d| TrainGraph {
            features: &d.features,
            graph: &d.preds,
            labels: &d.labels,
            mask: &d.mask,
        })
        .collect();
    let mut sage =
        GraphSage::try_new(glaive_cdfg::FEATURE_DIM, &config.sage).expect("valid model config");
    sage.train(&graphs);
    println!("glaive gnn:   {:.3}s", t.elapsed().as_secs_f64());

    let t = Instant::now();
    let graphs: Vec<TrainGraph<'_>> = refs
        .iter()
        .map(|d| TrainGraph {
            features: &d.features,
            graph: &d.all_neighbors,
            labels: &d.labels,
            mask: &d.mask,
        })
        .collect();
    let mut vanilla =
        GraphSage::try_new(glaive_cdfg::FEATURE_DIM, &config.sage).expect("valid model config");
    vanilla.train(&graphs);
    println!("vanilla gnn:  {:.3}s", t.elapsed().as_secs_f64());

    let t = Instant::now();
    let mut no_vanilla = config;
    no_vanilla.train_vanilla = false;
    std::hint::black_box(train_models(&refs, &no_vanilla));
    println!(
        "full no-vanilla (gnn+mlp+rf+svr): {:.3}s",
        t.elapsed().as_secs_f64()
    );

    // Micro-phases of the GNN on the largest graph.
    let d = refs
        .iter()
        .max_by_key(|d| d.preds.node_count())
        .expect("non-empty");
    println!(
        "largest graph: n={} preds_edges={} sym_edges={}",
        d.preds.node_count(),
        d.preds.edge_count(),
        d.all_neighbors.edge_count()
    );
    let t = Instant::now();
    let mut ws = glaive_gnn::SampledCsr::new();
    let mut rng = glaive_nn::DetRng::new(1);
    for _ in 0..75 {
        ws.resample(&d.preds, config.sage.sample_size, &mut rng);
    }
    println!("75x resample: {:.3}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    for _ in 0..75 {
        std::hint::black_box(glaive_gnn::kernels::mean_aggregate(
            &d.features,
            d.preds.view(),
        ));
    }
    println!("75x aggregate(features): {:.3}s", t.elapsed().as_secs_f64());
    let t = Instant::now();
    for _ in 0..75 {
        std::hint::black_box(sage.predict_proba(&d.features, &d.preds));
    }
    println!("75x full forward: {:.3}s", t.elapsed().as_secs_f64());
}
