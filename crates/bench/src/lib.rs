//! Shared plumbing for the experiment binaries and Criterion benches that
//! regenerate every table and figure of the paper's evaluation (§V).
//!
//! Each binary prints one table/figure as TSV to stdout. Pass `--quick`
//! (or set `GLAIVE_QUICK=1`) to run with the subsampled test configuration
//! instead of the full experiment configuration — useful for smoke tests.
//!
//! | Paper artefact | Binary |
//! |---|---|
//! | Fig. 2 (vulnerability distributions) | `fig2_distribution` |
//! | Table II (dataset sizes) | `table2_datasets` |
//! | Table III (accuracy) | `table3_accuracy` |
//! | Fig. 4 (top-K coverage) | `fig4_coverage` |
//! | Fig. 5a (program vulnerability error) | `fig5a_pv_error` |
//! | Fig. 5b (speedup over FI) | `fig5b_speedup` |
//! | DESIGN.md ablations | `ablations` |

use std::time::Instant;

use glaive::experiments::Evaluation;
use glaive::{prepare_suite, PipelineConfig};

/// The seed every experiment binary uses for benchmark inputs, so tables
/// printed by different binaries refer to the same programs and campaigns.
pub const EXPERIMENT_SEED: u64 = 7;

/// Returns `true` if `--quick` was passed or `GLAIVE_QUICK` is set.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var("GLAIVE_QUICK").is_ok()
}

/// The pipeline configuration for this invocation (full or quick).
pub fn experiment_config() -> PipelineConfig {
    if quick_requested() {
        PipelineConfig::quick_test()
    } else {
        PipelineConfig::default()
    }
}

/// Prepares the 12-benchmark suite and trains all round-robin model sets,
/// logging progress to stderr.
pub fn standard_evaluation() -> (Evaluation, PipelineConfig) {
    let config = experiment_config();
    eprintln!(
        "preparing suite (seed {EXPERIMENT_SEED}, bit stride {}, {} instances/site)...",
        config.bit_stride, config.instances_per_site
    );
    let t = Instant::now();
    let suite = prepare_suite(EXPERIMENT_SEED, &config);
    eprintln!(
        "suite prepared in {:.1}s; training models...",
        t.elapsed().as_secs_f64()
    );
    let t = Instant::now();
    let eval = Evaluation::new(suite, &config);
    eprintln!("models trained in {:.1}s", t.elapsed().as_secs_f64());
    (eval, config)
}

/// Prepares the suite only (no model training), for data-statistics
/// binaries.
pub fn standard_suite() -> (Vec<glaive::BenchData>, PipelineConfig) {
    let config = experiment_config();
    let t = Instant::now();
    let suite = prepare_suite(EXPERIMENT_SEED, &config);
    eprintln!("suite prepared in {:.1}s", t.elapsed().as_secs_f64());
    (suite, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_env_is_detected() {
        // Uses the env-var path (args can't be faked portably in a test).
        std::env::set_var("GLAIVE_QUICK", "1");
        assert!(quick_requested());
        assert_eq!(experiment_config(), PipelineConfig::quick_test());
        std::env::remove_var("GLAIVE_QUICK");
    }
}
