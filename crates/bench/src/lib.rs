//! Shared plumbing for the experiment binaries and timing benches that
//! regenerate every table and figure of the paper's evaluation (§V).
//!
//! Each binary prints one table/figure as TSV to stdout. Pass `--quick`
//! (or set `GLAIVE_QUICK=1`) to run with the subsampled test configuration
//! instead of the full experiment configuration — useful for smoke tests.
//! Pass `--no-cache` (or set `GLAIVE_NO_CACHE=1`) to bypass the on-disk
//! artifact cache; by default repeat runs reuse cached FI campaigns and
//! trained GLAIVE models, which the timing summary printed to stderr makes
//! visible as cache hits.
//!
//! | Paper artefact | Binary |
//! |---|---|
//! | Fig. 2 (vulnerability distributions) | `fig2_distribution` |
//! | Table II (dataset sizes) | `table2_datasets` |
//! | Table III (accuracy) | `table3_accuracy` |
//! | Fig. 4 (top-K coverage) | `fig4_coverage` |
//! | Fig. 5a (program vulnerability error) | `fig5a_pv_error` |
//! | Fig. 5b (speedup over FI) | `fig5b_speedup` |
//! | DESIGN.md ablations | `ablations` |

pub mod timing;

use std::sync::Arc;

use glaive::experiments::Evaluation;
use glaive::telemetry::TimingRecorder;
use glaive::{BenchData, Error, Pipeline, PipelineConfig};

/// The seed every experiment binary uses for benchmark inputs, so tables
/// printed by different binaries refer to the same programs and campaigns.
pub const EXPERIMENT_SEED: u64 = 7;

/// Returns `true` if `--quick` was passed or `GLAIVE_QUICK` is set.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var("GLAIVE_QUICK").is_ok()
}

/// Returns `true` if `--no-cache` was passed or `GLAIVE_NO_CACHE` is set.
pub fn cache_disabled() -> bool {
    std::env::args().any(|a| a == "--no-cache") || std::env::var("GLAIVE_NO_CACHE").is_ok()
}

/// The pipeline configuration for this invocation (full or quick).
pub fn experiment_config() -> PipelineConfig {
    if quick_requested() {
        PipelineConfig::quick_test()
    } else {
        PipelineConfig::default()
    }
}

/// The pipeline runtime every experiment binary shares: the invocation's
/// configuration, the artifact cache (unless disabled), and a timing
/// recorder whose summary the caller prints via [`finish_telemetry`].
pub fn experiment_pipeline() -> Result<(Pipeline, Arc<TimingRecorder>), Error> {
    let config = experiment_config();
    let recorder = Arc::new(TimingRecorder::new());
    let mut builder = Pipeline::builder(config).observer(recorder.clone());
    if !cache_disabled() {
        builder = builder.default_cache();
    }
    Ok((builder.build()?, recorder))
}

/// Prints the stage timing summary (campaign / graph / training wall-clock
/// plus cache hit counts) to stderr.
pub fn finish_telemetry(recorder: &TimingRecorder) {
    eprint!("{}", recorder.summary());
}

/// Runs an experiment body, printing any pipeline error to stderr and
/// converting it into a failing exit code — so the binaries propagate
/// [`Error`] with `?` instead of panicking.
pub fn run_experiment(body: impl FnOnce() -> Result<(), Error>) -> std::process::ExitCode {
    match body() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// Prepares the 12-benchmark suite and trains all round-robin model sets,
/// reporting stage timings and cache activity to stderr.
///
/// Preparation runs supervised: a failure summary is printed to stderr
/// before the configured quorum is checked, so a degraded or aborted run
/// still reports every benchmark's fate.
pub fn standard_evaluation() -> Result<(Evaluation, PipelineConfig), Error> {
    let (eval, config, _) = standard_evaluation_timed()?;
    Ok((eval, config))
}

/// Like [`standard_evaluation`], but also hands back the timing recorder so
/// callers can export per-stage wall times (e.g. the `--json` mode of
/// `fig5b_speedup`).
pub fn standard_evaluation_timed(
) -> Result<(Evaluation, PipelineConfig, Arc<TimingRecorder>), Error> {
    let (pipeline, recorder) = experiment_pipeline()?;
    let config = *pipeline.config();
    eprintln!(
        "preparing suite (seed {EXPERIMENT_SEED}, bit stride {}, {} instances/site)...",
        config.bit_stride, config.instances_per_site
    );
    let suite = prepared_suite(&pipeline)?;
    let eval = pipeline.evaluation(suite)?;
    finish_telemetry(&recorder);
    Ok((eval, config, recorder))
}

/// Prepares the suite only (no model training), for data-statistics
/// binaries.
pub fn standard_suite() -> Result<(Vec<BenchData>, PipelineConfig), Error> {
    let (pipeline, recorder) = experiment_pipeline()?;
    let config = *pipeline.config();
    let suite = prepared_suite(&pipeline)?;
    finish_telemetry(&recorder);
    Ok((suite, config))
}

/// Supervised suite preparation shared by the experiment entry points:
/// renders the failure summary (if any) to stderr, then applies the
/// configured quorum policy.
fn prepared_suite(pipeline: &Pipeline) -> Result<Vec<BenchData>, Error> {
    let mut report = pipeline.prepare_suite_supervised(EXPERIMENT_SEED);
    if let Some(summary) = report.failure_summary() {
        eprint!("{summary}");
    }
    report.check_quorum(pipeline.config().quorum)?;
    Ok(report.take_prepared())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_env_is_detected() {
        // Uses the env-var path (args can't be faked portably in a test).
        std::env::set_var("GLAIVE_QUICK", "1");
        assert!(quick_requested());
        assert_eq!(experiment_config(), PipelineConfig::quick_test());
        std::env::remove_var("GLAIVE_QUICK");
    }

    #[test]
    fn no_cache_env_is_detected() {
        std::env::set_var("GLAIVE_NO_CACHE", "1");
        assert!(cache_disabled());
        std::env::remove_var("GLAIVE_NO_CACHE");
    }
}
