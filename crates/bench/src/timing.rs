//! A minimal std-only micro-benchmark harness for the `benches/` targets
//! (`harness = false`), replacing the external Criterion dependency so the
//! workspace builds fully offline.
//!
//! Methodology: one untimed warm-up call, then batches of iterations are
//! timed until either the time budget or the iteration cap is reached;
//! mean and minimum per-iteration times are reported. This is deliberately
//! simple — the benches exist to show relative magnitudes (the paper's
//! orders-of-magnitude speedup claims), not microsecond-precision deltas.

use std::time::{Duration, Instant};

/// Per-bench measurement settings.
#[derive(Debug, Clone, Copy)]
pub struct Settings {
    /// Stop after roughly this much measured time.
    pub budget: Duration,
    /// Hard cap on timed iterations.
    pub max_iters: u64,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            budget: Duration::from_secs(2),
            max_iters: 1000,
        }
    }
}

impl Settings {
    /// Settings for expensive workloads (few, long iterations).
    pub fn heavy() -> Settings {
        Settings {
            budget: Duration::from_secs(5),
            max_iters: 10,
        }
    }
}

/// One bench result, printed as a TSV row by [`report`].
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Bench label.
    pub name: String,
    /// Timed iterations.
    pub iters: u64,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest observed iteration, seconds.
    pub min_s: f64,
}

/// Times `f` under `settings` and returns the measurement.
pub fn bench<F: FnMut()>(name: &str, settings: Settings, mut f: F) -> Measurement {
    f(); // warm-up, untimed

    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    while iters < settings.max_iters && total < settings.budget {
        let t = Instant::now();
        f();
        let dt = t.elapsed();
        total += dt;
        min = min.min(dt);
        iters += 1;
    }
    Measurement {
        name: name.to_string(),
        iters,
        mean_s: total.as_secs_f64() / iters as f64,
        min_s: min.as_secs_f64(),
    }
}

/// Prints a TSV header followed by one row per measurement.
pub fn report(measurements: &[Measurement]) {
    println!("bench\titers\tmean_s\tmin_s");
    for m in measurements {
        println!("{}\t{}\t{:.6}\t{:.6}", m.name, m.iters, m.mean_s, m.min_s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_times_the_closure() {
        let mut calls = 0u64;
        let m = bench(
            "noop",
            Settings {
                budget: Duration::from_millis(10),
                max_iters: 5,
            },
            || calls += 1,
        );
        // warm-up + timed iterations
        assert_eq!(calls, m.iters + 1);
        assert!(m.iters >= 1 && m.iters <= 5);
        assert!(m.min_s <= m.mean_s);
    }
}
