//! A minimal std-only micro-benchmark harness for the `benches/` targets
//! (`harness = false`), replacing the external Criterion dependency so the
//! workspace builds fully offline.
//!
//! Methodology: one untimed warm-up call, then batches of iterations are
//! timed until either the time budget or the iteration cap is reached;
//! mean and minimum per-iteration times are reported. This is deliberately
//! simple — the benches exist to show relative magnitudes (the paper's
//! orders-of-magnitude speedup claims), not microsecond-precision deltas.

use std::time::{Duration, Instant};

/// Per-bench measurement settings.
#[derive(Debug, Clone, Copy)]
pub struct Settings {
    /// Stop after roughly this much measured time.
    pub budget: Duration,
    /// Hard cap on timed iterations.
    pub max_iters: u64,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            budget: Duration::from_secs(2),
            max_iters: 1000,
        }
    }
}

impl Settings {
    /// Settings for expensive workloads (few, long iterations).
    pub fn heavy() -> Settings {
        Settings {
            budget: Duration::from_secs(5),
            max_iters: 10,
        }
    }
}

/// One bench result, printed as a TSV row by [`report`].
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Bench label.
    pub name: String,
    /// Timed iterations.
    pub iters: u64,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest observed iteration, seconds.
    pub min_s: f64,
}

/// Times `f` under `settings` and returns the measurement.
pub fn bench<F: FnMut()>(name: &str, settings: Settings, mut f: F) -> Measurement {
    f(); // warm-up, untimed

    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    while iters < settings.max_iters && total < settings.budget {
        let t = Instant::now();
        f();
        let dt = t.elapsed();
        total += dt;
        min = min.min(dt);
        iters += 1;
    }
    Measurement {
        name: name.to_string(),
        iters,
        mean_s: total.as_secs_f64() / iters as f64,
        min_s: min.as_secs_f64(),
    }
}

/// Prints a TSV header followed by one row per measurement.
pub fn report(measurements: &[Measurement]) {
    println!("bench\titers\tmean_s\tmin_s");
    for m in measurements {
        println!("{}\t{}\t{:.6}\t{:.6}", m.name, m.iters, m.mean_s, m.min_s);
    }
}

/// Parses a `--json <path>` (or `--json=<path>`) flag from `args`.
/// Returns `None` when the flag is absent; a `--json` with no following
/// path is treated as absent rather than an error.
pub fn json_path_arg(args: impl IntoIterator<Item = String>) -> Option<String> {
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
        if let Some(path) = a.strip_prefix("--json=") {
            return Some(path.to_string());
        }
    }
    None
}

/// End-to-end per-stage wall times of one experiment run, in seconds —
/// the machine-readable counterpart of the stderr timing summary.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimes {
    /// Bit-level CDFG construction + label join.
    pub cdfg_build_s: f64,
    /// Fault-injection campaigns (the ground-truth baseline).
    pub fi_campaign_s: f64,
    /// Model training across all round-robin splits.
    pub train_s: f64,
    /// Inference / metric evaluation.
    pub inference_s: f64,
    /// Whole-run wall clock (single-threaded stages may sum below this;
    /// parallel stage totals may exceed it).
    pub total_s: f64,
    /// Wall clock of the reference build this run is compared against
    /// (`None` omits the field).
    pub baseline_total_s: Option<f64>,
}

impl StageTimes {
    /// Renders the record as a JSON object (hand-rolled: the workspace
    /// builds offline with no serialisation crates).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut field = |name: &str, value: f64, last: bool| {
            out.push_str(&format!(
                "  \"{name}\": {:.6}{}\n",
                value,
                if last { "" } else { "," }
            ));
        };
        field("cdfg_build_s", self.cdfg_build_s, false);
        field("fi_campaign_s", self.fi_campaign_s, false);
        field("train_s", self.train_s, false);
        field("inference_s", self.inference_s, false);
        match self.baseline_total_s {
            Some(b) => {
                field("total_s", self.total_s, false);
                field("baseline_total_s", b, true);
            }
            None => field("total_s", self.total_s, true),
        }
        out.push('}');
        out.push('\n');
        out
    }

    /// Writes [`StageTimes::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_times_the_closure() {
        let mut calls = 0u64;
        let m = bench(
            "noop",
            Settings {
                budget: Duration::from_millis(10),
                max_iters: 5,
            },
            || calls += 1,
        );
        // warm-up + timed iterations
        assert_eq!(calls, m.iters + 1);
        assert!(m.iters >= 1 && m.iters <= 5);
        assert!(m.min_s <= m.mean_s);
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn json_flag_is_parsed_in_both_spellings() {
        assert_eq!(
            json_path_arg(args(&["bin", "--json", "out.json", "--quick"])),
            Some("out.json".to_string())
        );
        assert_eq!(
            json_path_arg(args(&["bin", "--json=b.json"])),
            Some("b.json".to_string())
        );
        assert_eq!(json_path_arg(args(&["bin", "--quick"])), None);
        assert_eq!(json_path_arg(args(&["bin", "--json"])), None);
    }

    #[test]
    fn stage_times_render_as_valid_json() {
        let t = StageTimes {
            cdfg_build_s: 0.25,
            fi_campaign_s: 1.5,
            train_s: 10.0,
            inference_s: 0.125,
            total_s: 12.0,
            baseline_total_s: None,
        };
        let j = t.to_json();
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'), "{j}");
        assert!(j.contains("\"train_s\": 10.000000"), "{j}");
        assert!(!j.contains("baseline_total_s"), "{j}");
        // No trailing comma before the closing brace.
        assert!(!j.contains(",\n}"), "{j}");

        let with_baseline = StageTimes {
            baseline_total_s: Some(20.9),
            ..t
        }
        .to_json();
        assert!(
            with_baseline.contains("\"baseline_total_s\": 20.900000"),
            "{with_baseline}"
        );
        assert!(!with_baseline.contains(",\n}"), "{with_baseline}");
    }

    #[test]
    fn stage_times_write_to_disk() {
        let path = std::env::temp_dir().join("glaive_stage_times_test.json");
        let path = path.to_str().expect("utf-8 temp path");
        let t = StageTimes {
            total_s: 1.0,
            ..StageTimes::default()
        };
        t.write(path).expect("write");
        let back = std::fs::read_to_string(path).expect("read");
        assert_eq!(back, t.to_json());
        std::fs::remove_file(path).ok();
    }
}
