//! Fig. 5a — program vulnerability error (Σ per-class |estimate − FI|) per
//! benchmark × method, with the paper's D1..D6 / C1..C6 labelling.
//!
//! Paper shape: on data-sensitive benchmarks GLAIVE averages 26.24%,
//! 33.09% and 16.78% lower error than RF-INST, SVM-INST and MLP-BIT; on
//! control-sensitive benchmarks the methods are close (GLAIVE within ~1%
//! of MLP-BIT).

use glaive::Method;
use glaive_bench_suite::Category;

/// The paper's row labels, in Fig. 5 order.
const DATA_ORDER: [&str; 6] = ["blackscholes", "fft", "swaptions", "radix", "ctaes", "lu"];
const CONTROL_ORDER: [&str; 6] = [
    "dijkstra",
    "streamcluster",
    "jmeint",
    "astar",
    "sobel",
    "inversek2j",
];

fn main() -> std::process::ExitCode {
    glaive_bench::run_experiment(|| {
        let (eval, _) = glaive_bench::standard_evaluation()?;
        let rows = eval.pv_error_rows();
        println!("# Fig. 5a: program vulnerability error (lower is better)");
        println!("label\tbenchmark\tM1:GLAIVE\tM2:MLP-BIT\tM3:SVM-INST\tM4:RF-INST");
        for (cat, order, tag) in [
            (Category::Data, DATA_ORDER, 'D'),
            (Category::Control, CONTROL_ORDER, 'C'),
        ] {
            let mut sums = [0.0f64; 4];
            for (i, name) in order.iter().enumerate() {
                let r = rows
                    .iter()
                    .find(|r| r.benchmark == *name)
                    .unwrap_or_else(|| panic!("missing row for {name}"));
                println!(
                    "{tag}{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                    i + 1,
                    r.benchmark,
                    r.errors[0],
                    r.errors[1],
                    r.errors[2],
                    r.errors[3]
                );
                for (s, e) in sums.iter_mut().zip(r.errors) {
                    *s += e;
                }
            }
            let avg = sums.map(|s| s / order.len() as f64);
            println!(
                "# {cat:?} averages: M1={:.3} M2={:.3} M3={:.3} M4={:.3}",
                avg[0], avg[1], avg[2], avg[3]
            );
            for (k, m) in Method::ALL.iter().enumerate().skip(1) {
                println!(
                    "#   GLAIVE vs {}: {:+.1}% error",
                    m.name(),
                    (avg[0] - avg[k]) / avg[k] * 100.0
                );
            }
        }

        Ok(())
    })
}
