//! Load generator for the `glaive-serve` model server (`BENCH_4.json`).
//!
//! Spawns an in-process server, fires concurrent clients at it, and
//! verifies every response end-to-end: each batched result must be
//! **bit-identical** to single-program inference computed locally with the
//! same weights, and no request may be dropped or answered with a
//! corrupted frame. The run fails (non-zero exit) on any mismatch.
//!
//! Reported metrics: per-request latency (p50 / p99 / mean), aggregate
//! throughput, the server's own coalescing counters, and the robustness
//! columns (`retries`, `busy_responses`, `reconnects`) — always present,
//! zero on a clean run. Written as flat JSON to `BENCH_4.json` (override
//! with `--out PATH`) and printed as TSV.
//!
//! Flags: `--clients N` (default 8), `--requests N` per client (default
//! 25), `--quick` (or `GLAIVE_QUICK=1`) for a subsampled smoke run.
//! Setting `GLAIVE_CHAOS_SEED` (with `GLAIVE_CHAOS_RATE`) wraps every
//! load connection in seeded fault injection; the bit-identity check
//! still must pass — corruption is caught by frame checksums and retried,
//! never silently served.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use glaive_bench::EXPERIMENT_SEED;
use glaive_bench_suite::suite;
use glaive_cdfg::{Cdfg, CdfgConfig, FEATURE_DIM};
use glaive_gnn::{GraphSage, SageConfig};
use glaive_nn::Matrix;
use glaive_serve::{Client, ClientReport, ProgramSpec, ResilientClient, Server, ServerConfig};
use glaive_wire::{ChaosConfig, ChaosPlan, RetryPolicy};

const STRIDE: usize = 8;

struct Args {
    clients: usize,
    requests: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        requests: 25,
        out: "BENCH_4.json".to_string(),
    };
    if glaive_bench::quick_requested() {
        args.requests = 4;
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--clients" => {
                args.clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a number");
            }
            "--requests" => {
                args.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--quick" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Reference bit-probability rows for one benchmark, computed serially.
struct Reference {
    name: &'static str,
    probs: Matrix,
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

fn main() {
    let args = parse_args();
    // Deterministically initialised weights: accuracy is irrelevant to a
    // load test, but the forward-pass cost matches a trained model of the
    // same architecture, and determinism is what the bit-identity check
    // needs.
    let model =
        GraphSage::try_new(FEATURE_DIM, &SageConfig::default()).expect("valid model config");

    eprintln!("computing serial references for the suite...");
    let references: Vec<Reference> = suite(EXPERIMENT_SEED)
        .into_iter()
        .map(|b| {
            let cdfg = Cdfg::build(b.program(), &CdfgConfig { bit_stride: STRIDE });
            let features = Matrix::from_vec(cdfg.node_count(), FEATURE_DIM, cdfg.feature_matrix());
            Reference {
                name: b.name,
                probs: model.predict_proba(&features, cdfg.preds_csr()),
            }
        })
        .collect();
    let references = Arc::new(references);

    let server = Server::bind(
        model,
        "127.0.0.1:0",
        ServerConfig {
            workers: args.clients,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();
    let handle = server.spawn();
    eprintln!(
        "server on {addr}; {} clients x {} requests",
        args.clients, args.requests
    );

    // Optional seeded fault injection on every load connection; the
    // retry budget is patient under chaos so the run always completes
    // (or times out loudly) instead of failing on an unlucky schedule.
    let chaos = ChaosConfig::from_env().map(ChaosPlan::new);
    let policy = if chaos.is_some() {
        RetryPolicy::patient(Duration::from_secs(60))
    } else {
        RetryPolicy::default()
    };
    if let Some(plan) = &chaos {
        eprintln!(
            "chaos: seed {:#018x}, fault rate {} ppm",
            plan.config().seed,
            plan.config().fault_ppm
        );
    }

    let failures = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(args.clients + 1));
    let mut threads = Vec::new();
    for client_id in 0..args.clients {
        let references = references.clone();
        let failures = failures.clone();
        let barrier = barrier.clone();
        let chaos = chaos.clone();
        threads.push(std::thread::spawn(move || -> (Vec<u64>, ClientReport) {
            let mut client = ResilientClient::new(addr.to_string(), policy);
            if let Some(plan) = chaos {
                // Disjoint stream-id blocks per client: schedules differ
                // across clients but replay exactly under the same seed.
                client = client.with_chaos(plan, (client_id as u64) << 32);
            }
            let mut latencies = Vec::with_capacity(args.requests);
            barrier.wait();
            for r in 0..args.requests {
                let reference = &references[(client_id + r * 7) % references.len()];
                let spec = ProgramSpec::Suite {
                    name: reference.name.to_string(),
                    seed: EXPERIMENT_SEED,
                };
                let start = Instant::now();
                let reply = match client.predict(&spec, STRIDE as u32, 10, true) {
                    Ok(reply) => reply,
                    Err(e) => {
                        eprintln!("client {client_id} request {r}: {e}");
                        failures.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                };
                latencies.push(start.elapsed().as_nanos() as u64);

                // End-to-end differential check: the batched, wire-encoded
                // per-node probabilities must equal serial inference bit
                // for bit.
                let bits = reply.bit_probs.as_deref().unwrap_or_default();
                let serial = &reference.probs;
                let identical = bits.len() == serial.rows()
                    && bits.iter().enumerate().all(|(row, got)| {
                        got.iter()
                            .zip(serial.row(row))
                            .all(|(a, b)| a.to_bits() == b.to_bits())
                    });
                if !identical {
                    eprintln!(
                        "client {client_id} request {r}: batched result diverges from serial \
                         ({} vs {} rows)",
                        bits.len(),
                        serial.rows()
                    );
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            }
            (latencies, client.report())
        }));
    }

    barrier.wait();
    let wall_start = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    let mut survived = ClientReport::default();
    for t in threads {
        let (client_latencies, report) = t.join().expect("client thread");
        latencies.extend(client_latencies);
        survived.retries += report.retries;
        survived.busy_responses += report.busy_responses;
        survived.reconnects += report.reconnects;
    }
    let wall = wall_start.elapsed();

    let mut control = Client::connect(addr).expect("connect for stats");
    let stats = control.stats().expect("stats");
    control.shutdown_server().expect("shutdown");
    handle.join().expect("server run");

    latencies.sort_unstable();
    let total = args.clients * args.requests;
    let failed = failures.load(Ordering::Relaxed);
    let p50 = percentile_ms(&latencies, 0.50);
    let p99 = percentile_ms(&latencies, 0.99);
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e6
    };
    let req_per_s = latencies.len() as f64 / wall.as_secs_f64();

    println!("metric\tvalue");
    println!("clients\t{}", args.clients);
    println!("requests\t{total}");
    println!("failures\t{failed}");
    println!("p50_ms\t{p50:.3}");
    println!("p99_ms\t{p99:.3}");
    println!("mean_ms\t{mean:.3}");
    println!("req_per_s\t{req_per_s:.1}");
    println!("batches\t{}", stats.batches);
    println!("peak_batch\t{}", stats.peak_batch);
    println!("cache_hits\t{}", stats.cache_hits);
    println!("cache_misses\t{}", stats.cache_misses);
    println!("retries\t{}", survived.retries);
    println!("busy_responses\t{}", survived.busy_responses);
    println!("reconnects\t{}", survived.reconnects);

    let json = format!(
        "{{\n  \"clients\": {},\n  \"requests\": {},\n  \"failures\": {},\n  \
         \"p50_ms\": {:.6},\n  \"p99_ms\": {:.6},\n  \"mean_ms\": {:.6},\n  \
         \"req_per_s\": {:.3},\n  \"batches\": {},\n  \"peak_batch\": {},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"retries\": {},\n  \
         \"busy_responses\": {},\n  \"reconnects\": {}\n}}\n",
        args.clients,
        total,
        failed,
        p50,
        p99,
        mean,
        req_per_s,
        stats.batches,
        stats.peak_batch,
        stats.cache_hits,
        stats.cache_misses,
        survived.retries,
        survived.busy_responses,
        survived.reconnects
    );
    std::fs::write(&args.out, json).expect("write results");
    eprintln!("wrote {}", args.out);

    assert_eq!(failed, 0, "{failed} dropped or corrupted responses");
}
