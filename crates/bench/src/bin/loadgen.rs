//! Open-loop load generator for the `glaive-serve` model server
//! (`BENCH_4.json`).
//!
//! Sweeps concurrency steps (default 8/32/128/512 clients) against a
//! fresh in-process server per step. Each client is **open-loop**: a
//! sender thread fires requests at fixed arrival times (`--interval-ms`
//! apart) whether or not earlier replies have come back, pipelining them
//! on one socket, while a reader thread collects the in-order replies.
//! Latency is measured from the *scheduled* arrival time, so queueing
//! delay is charged to the server instead of silently self-throttling
//! the way a closed loop does (coordinated omission).
//!
//! Every non-`Busy` reply is verified **bit-identical** to
//! single-program serial inference with the same weights; `Busy`
//! rejections are the admission controller shedding load and are counted
//! per step, never latency-sampled. The run fails (non-zero exit) on any
//! mismatch, dropped reply, or protocol error.
//!
//! Per step, the JSON records `clients`, latency percentiles over
//! answered requests, throughput, `busy`, and the server's own counters
//! (`batches`, `peak_batch`, `queue_depth_max`, `busy_rejections`,
//! `stall_evictions`). If a committed `BENCH_4.json` with a matching
//! lowest step exists, a one-line regression note is printed when its
//! p99 worsens.
//!
//! Flags: `--steps 8,32,128,512`, `--requests N` per client,
//! `--interval-ms MS` between arrivals, `--queue-bound N` (server
//! admission bound), `--out PATH`. `--quick` (or `GLAIVE_QUICK=1`)
//! shrinks the sweep to a smoke run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use glaive_bench::EXPERIMENT_SEED;
use glaive_bench_suite::suite;
use glaive_cdfg::{Cdfg, CdfgConfig, FEATURE_DIM};
use glaive_gnn::{GraphSage, SageConfig};
use glaive_nn::Matrix;
use glaive_serve::protocol::{read_frame, write_frame};
use glaive_serve::{Client, ProgramSpec, Request, Response, Server, ServerConfig, StatsReply};

const STRIDE: usize = 8;

struct Args {
    steps: Vec<usize>,
    requests: usize,
    interval_ms: u64,
    queue_bound: usize,
    out: String,
}

fn parse_args() -> Args {
    let quick = glaive_bench::quick_requested();
    let mut args = Args {
        steps: if quick {
            vec![8, 32]
        } else {
            vec![8, 32, 128, 512]
        },
        requests: if quick { 3 } else { 10 },
        interval_ms: if quick { 200 } else { 1000 },
        queue_bound: 64,
        out: "BENCH_4.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--steps" => {
                args.steps = it
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|s| s.trim().parse().expect("--steps needs numbers"))
                            .collect()
                    })
                    .expect("--steps needs a comma-separated list");
            }
            "--requests" => {
                args.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number");
            }
            "--interval-ms" => {
                args.interval_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--interval-ms needs a number");
            }
            "--queue-bound" => {
                args.queue_bound = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queue-bound needs a number");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--quick" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(
        !args.steps.is_empty(),
        "--steps must name at least one step"
    );
    args
}

/// Reference bit-probability rows for one benchmark, computed serially.
struct Reference {
    name: &'static str,
    probs: Matrix,
}

/// One concurrency step's measurements.
struct StepResult {
    clients: usize,
    sent: usize,
    answered: usize,
    busy: usize,
    failures: u64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    req_per_s: f64,
    stats: StatsReply,
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

/// Which suite program client `client_id` requests on its `r`-th arrival —
/// shared by the sender (builds the request) and the reader (checks the
/// reply), so the two threads never need to communicate.
fn program_index(client_id: usize, r: usize, len: usize) -> usize {
    (client_id + r * 7) % len
}

/// Pulls the committed p99 for a given client count out of a previous
/// `BENCH_4.json` — tolerant of both the old flat layout and the current
/// per-step layout, and of neither matching (returns `None`).
fn committed_p99_ms(json: &str, clients: usize) -> Option<f64> {
    let at = json.find(&format!("\"clients\": {clients}"))?;
    let rest = &json[at..];
    let key = "\"p99_ms\": ";
    let num = &rest[rest.find(key)? + key.len()..];
    let end = num
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

/// Runs one concurrency step against a fresh server and returns its
/// measurements. `failures` accumulates protocol errors and bit-identity
/// mismatches across the whole sweep.
fn run_step(
    model: &GraphSage,
    references: &Arc<Vec<Reference>>,
    clients: usize,
    args: &Args,
    failures: &Arc<AtomicU64>,
) -> StepResult {
    let failures_before = failures.load(Ordering::Relaxed);
    let server = Server::bind(
        model.clone(),
        "127.0.0.1:0",
        ServerConfig {
            queue_bound: args.queue_bound,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();
    let handle = server.spawn();

    let interval = Duration::from_millis(args.interval_ms);
    let barrier = Arc::new(Barrier::new(clients + 1));
    let requests = args.requests;
    let mut threads = Vec::with_capacity(clients);
    for client_id in 0..clients {
        let references = references.clone();
        let failures = failures.clone();
        let barrier = barrier.clone();
        threads.push(std::thread::spawn(move || -> (Vec<u64>, usize) {
            let stream = std::net::TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .expect("read timeout");
            stream
                .set_write_timeout(Some(Duration::from_secs(60)))
                .expect("write timeout");
            let mut reader_stream = stream.try_clone().expect("clone for reader");

            barrier.wait();
            let start = Instant::now();

            // The reader sees the i-th reply answer the i-th request —
            // the server's per-connection in-order reply guarantee.
            let reader = {
                let references = references.clone();
                let failures = failures.clone();
                std::thread::spawn(move || -> (Vec<u64>, usize) {
                    let mut latencies = Vec::with_capacity(requests);
                    let mut busy = 0usize;
                    for r in 0..requests {
                        let scheduled = start + interval * r as u32;
                        let payload = match read_frame(&mut reader_stream) {
                            Ok(p) => p,
                            Err(e) => {
                                eprintln!("client {client_id} reply {r}: {e}");
                                failures.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        };
                        match Response::from_frame(&payload) {
                            Ok(Response::Busy { .. }) => busy += 1,
                            Ok(Response::Predict(reply)) => {
                                latencies.push(scheduled.elapsed().as_nanos() as u64);
                                let reference =
                                    &references[program_index(client_id, r, references.len())];
                                let bits = reply.bit_probs.as_deref().unwrap_or_default();
                                let serial = &reference.probs;
                                let identical = bits.len() == serial.rows()
                                    && bits.iter().enumerate().all(|(row, got)| {
                                        got.iter()
                                            .zip(serial.row(row))
                                            .all(|(a, b)| a.to_bits() == b.to_bits())
                                    });
                                if !identical {
                                    eprintln!(
                                        "client {client_id} reply {r}: batched result diverges \
                                         from serial ({} vs {} rows)",
                                        bits.len(),
                                        serial.rows()
                                    );
                                    failures.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Ok(other) => {
                                eprintln!("client {client_id} reply {r}: unexpected {other:?}");
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("client {client_id} reply {r}: {e}");
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    (latencies, busy)
                })
            };

            // Open-loop sender: arrivals at start + r * interval, never
            // gated on replies.
            let mut sender_stream = stream;
            for r in 0..requests {
                let target = start + interval * r as u32;
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                let reference = &references[program_index(client_id, r, references.len())];
                let request = Request::Predict {
                    spec: ProgramSpec::Suite {
                        name: reference.name.to_string(),
                        seed: EXPERIMENT_SEED,
                    },
                    stride: STRIDE as u32,
                    top_k: 10,
                    want_bits: true,
                };
                if let Err(e) = write_frame(&mut sender_stream, &request.to_frame()) {
                    eprintln!("client {client_id} request {r}: {e}");
                    failures.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            reader.join().expect("reader thread")
        }));
    }

    barrier.wait();
    let wall_start = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    let mut busy = 0usize;
    for t in threads {
        let (client_latencies, client_busy) = t.join().expect("client thread");
        latencies.extend(client_latencies);
        busy += client_busy;
    }
    let wall = wall_start.elapsed();

    let mut control = Client::connect(addr).expect("connect for stats");
    control.ping().expect("server healthy after step");
    control.shutdown_server().expect("shutdown");
    let stats = handle.join().expect("server run");

    latencies.sort_unstable();
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e6
    };
    StepResult {
        clients,
        sent: clients * requests,
        answered: latencies.len(),
        busy,
        failures: failures.load(Ordering::Relaxed) - failures_before,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        mean_ms,
        req_per_s: latencies.len() as f64 / wall.as_secs_f64(),
        stats,
    }
}

fn main() {
    let args = parse_args();
    // Deterministically initialised weights: accuracy is irrelevant to a
    // load test, but the forward-pass cost matches a trained model of the
    // same architecture, and determinism is what the bit-identity check
    // needs.
    let model =
        GraphSage::try_new(FEATURE_DIM, &SageConfig::default()).expect("valid model config");

    eprintln!("computing serial references for the suite...");
    let references: Vec<Reference> = suite(EXPERIMENT_SEED)
        .into_iter()
        .map(|b| {
            let cdfg = Cdfg::build(b.program(), &CdfgConfig { bit_stride: STRIDE });
            let features = Matrix::from_vec(cdfg.node_count(), FEATURE_DIM, cdfg.feature_matrix());
            Reference {
                name: b.name,
                probs: model.predict_proba(&features, cdfg.preds_csr()),
            }
        })
        .collect();
    let references = Arc::new(references);
    let committed = std::fs::read_to_string(&args.out).ok();

    let failures = Arc::new(AtomicU64::new(0));
    let mut steps: Vec<StepResult> = Vec::with_capacity(args.steps.len());
    println!(
        "clients\tsent\tanswered\tbusy\tp50_ms\tp99_ms\tmean_ms\treq_per_s\tpeak_batch\t\
         queue_depth_max\tstall_evictions"
    );
    for &clients in &args.steps {
        eprintln!(
            "step: {clients} open-loop clients x {} requests, {} ms apart (queue bound {})",
            args.requests, args.interval_ms, args.queue_bound
        );
        let step = run_step(&model, &references, clients, &args, &failures);
        println!(
            "{}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.1}\t{}\t{}\t{}",
            step.clients,
            step.sent,
            step.answered,
            step.busy,
            step.p50_ms,
            step.p99_ms,
            step.mean_ms,
            step.req_per_s,
            step.stats.peak_batch,
            step.stats.queue_depth_max,
            step.stats.stall_evictions
        );
        steps.push(step);
    }

    let step_json: Vec<String> = steps
        .iter()
        .map(|s| {
            format!(
                "    {{\n      \"clients\": {},\n      \"sent\": {},\n      \
                 \"answered\": {},\n      \"busy\": {},\n      \"failures\": {},\n      \
                 \"p50_ms\": {:.6},\n      \"p99_ms\": {:.6},\n      \"mean_ms\": {:.6},\n      \
                 \"req_per_s\": {:.3},\n      \"batches\": {},\n      \"peak_batch\": {},\n      \
                 \"cache_hits\": {},\n      \"cache_misses\": {},\n      \
                 \"busy_rejections\": {},\n      \"stall_evictions\": {},\n      \
                 \"queue_depth_max\": {}\n    }}",
                s.clients,
                s.sent,
                s.answered,
                s.busy,
                s.failures,
                s.p50_ms,
                s.p99_ms,
                s.mean_ms,
                s.req_per_s,
                s.stats.batches,
                s.stats.peak_batch,
                s.stats.cache_hits,
                s.stats.cache_misses,
                s.stats.busy_rejections,
                s.stats.stall_evictions,
                s.stats.queue_depth_max
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"stride\": {},\n  \"requests_per_client\": {},\n  \"interval_ms\": {},\n  \
         \"queue_bound\": {},\n  \"steps\": [\n{}\n  ]\n}}\n",
        STRIDE,
        args.requests,
        args.interval_ms,
        args.queue_bound,
        step_json.join(",\n")
    );

    // Satellite visibility: compare the lowest step's p99 against the
    // committed file before overwriting it.
    if let (Some(old_json), Some(first)) = (&committed, steps.first()) {
        if let Some(old_p99) = committed_p99_ms(old_json, first.clients) {
            if first.p99_ms > old_p99 {
                eprintln!(
                    "regression note: p99 at {} clients is {:.3} ms, worse than the committed \
                     {:.3} ms",
                    first.clients, first.p99_ms, old_p99
                );
            }
        }
    }

    std::fs::write(&args.out, json).expect("write results");
    eprintln!("wrote {}", args.out);

    let failed = failures.load(Ordering::Relaxed);
    assert_eq!(failed, 0, "{failed} dropped or corrupted responses");
}
