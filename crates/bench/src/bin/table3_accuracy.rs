//! Table III — bit-node classification accuracy of GLAIVE vs MLP-BIT per
//! benchmark, under the round-robin n−1 regime with the two held-out
//! validation programs (inversek2j, lu).
//!
//! Paper shape: GLAIVE ≥ MLP-BIT on data-sensitive benchmarks (clear
//! margins on Radix and Ctaes), comparable on control-sensitive ones, and
//! high accuracy on the *unseen* validation programs demonstrating
//! transferability.

use glaive_bench_suite::{Category, Split};

fn main() -> std::process::ExitCode {
    glaive_bench::run_experiment(|| {
        let (eval, _) = glaive_bench::standard_evaluation()?;
        println!("# Table III: GLAIVE vs MLP-BIT bit-classification accuracy");
        println!("benchmark\tcategory\tsplit\tGLAIVE\tMLP-BIT");
        let rows = eval.accuracy_rows();
        for r in &rows {
            println!(
                "{}\t{}\t{}\t{:.3}\t{:.3}",
                r.benchmark,
                r.category.tag(),
                match r.split {
                    Split::TrainTest => "TT",
                    Split::Validation => "V",
                },
                r.glaive,
                r.mlp_bit
            );
        }
        for cat in [Category::Data, Category::Control] {
            let sel: Vec<_> = rows.iter().filter(|r| r.category == cat).collect();
            let g: f64 = sel.iter().map(|r| r.glaive).sum::<f64>() / sel.len() as f64;
            let m: f64 = sel.iter().map(|r| r.mlp_bit).sum::<f64>() / sel.len() as f64;
            println!(
                "# {cat:?} average: GLAIVE={g:.3} MLP-BIT={m:.3} (GLAIVE {:+.2}% vs MLP)",
                (g - m) / m * 100.0
            );
        }

        Ok(())
    })
}
