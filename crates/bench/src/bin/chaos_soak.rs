//! Chaos soak for the network edges (`BENCH_7.json`).
//!
//! Runs the two distributed subsystems under aggressive seeded fault
//! injection ([`glaive_wire::ChaosTransport`]) and verifies the defining
//! robustness property end-to-end:
//!
//! 1. **Campaign soak** — a coordinator plus a fleet of chaos-wrapped
//!    workers (delays, short reads/writes, byte corruption, hard
//!    disconnects on every connection) must merge a `GroundTruth`
//!    **byte-identical** to a serial single-process run.
//! 2. **Serve soak** — chaos-wrapped [`ResilientClient`]s hammering a
//!    model server must receive replies **bit-identical** to serial
//!    inference; corrupted frames are caught by checksums and retried,
//!    never silently served.
//!
//! The survived-failure tallies (retries, reconnects, injected faults by
//! kind) are reported next to the identity verdicts, written as flat JSON
//! to `BENCH_7.json` (override with `--out PATH`) and printed as TSV. The
//! run fails (non-zero exit) if either identity check fails or if the
//! chaos layer injected nothing (a vacuous soak proves nothing).
//!
//! The fault schedule is a pure function of the seed (`--seed N`, default
//! below, or `GLAIVE_CHAOS_SEED`), so a failing run replays exactly.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use glaive_bench::EXPERIMENT_SEED;
use glaive_bench_suite::suite;
use glaive_campaign::{run_worker_with, Coordinator, FabricConfig, WorkerOptions, WorkerReport};
use glaive_cdfg::{Cdfg, CdfgConfig, FEATURE_DIM};
use glaive_faultsim::{Campaign, CampaignConfig, RunControl};
use glaive_gnn::{GraphSage, SageConfig};
use glaive_nn::Matrix;
use glaive_serve::{ClientReport, ProgramSpec, ResilientClient, Server, ServerConfig};
use glaive_wire::{ChaosConfig, ChaosPlan, ChaosReport, RetryPolicy};

/// Default master seed; any failure replays exactly under it.
const SOAK_SEED: u64 = 0xC4A0_5EED_0007;

/// Per-byte fault rate for the campaign fleet. `GLVCMP01` frames are
/// small (a chunk completion is ~1 KiB), so a few thousand ppm still
/// lets most frames through while forcing steady retries.
const CAMPAIGN_FAULT_PPM: u32 = 1_200;

/// Per-byte fault rate for the serve clients. Predict replies carry the
/// full per-node probability matrix (tens of KiB), so the rate is lower
/// for a comparable per-frame survival probability.
const SERVE_FAULT_PPM: u32 = 200;

/// Patience for every retry loop in the soak: generous enough that an
/// unlucky schedule cannot starve the run, bounded so a real hang fails
/// loudly instead of wedging CI.
const PATIENCE: Duration = Duration::from_secs(120);

struct Args {
    seed: u64,
    workers: usize,
    clients: usize,
    requests: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: ChaosConfig::from_env().map_or(SOAK_SEED, |c| c.seed),
        workers: 3,
        clients: 4,
        requests: 6,
        out: "BENCH_7.json".to_string(),
    };
    if glaive_bench::quick_requested() {
        args.clients = 2;
        args.requests = 3;
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--workers" => {
                args.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs a number");
            }
            "--clients" => {
                args.clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a number");
            }
            "--requests" => {
                args.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--quick" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

struct CampaignSoak {
    identical: bool,
    chunks: u64,
    retries: u64,
    reconnects: u64,
    chaos: ChaosReport,
}

/// Serial campaign vs. a chaos-wrapped worker fleet over real TCP.
fn campaign_soak(args: &Args) -> CampaignSoak {
    let bench = &suite(EXPERIMENT_SEED)[0];
    let config = CampaignConfig::quick();
    let serial = Campaign::try_new(bench.program(), &bench.init_mem, config)
        .expect("valid campaign config")
        .run();

    let plan = ChaosPlan::new(ChaosConfig::new(args.seed).with_fault_ppm(CAMPAIGN_FAULT_PPM));
    // Small chunks: more round trips, more frames for the chaos layer to
    // maul, more lease requeues to absorb.
    let fabric = FabricConfig {
        chunk_size: 16,
        ..FabricConfig::default()
    };
    let coordinator = Coordinator::try_new(bench.program(), &bench.init_mem, config, fabric)
        .expect("valid fabric config");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();

    let finished = AtomicBool::new(false);
    let (truth, reports) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.workers)
            .map(|i| {
                let addr = addr.clone();
                let options = WorkerOptions {
                    retry: RetryPolicy::patient(PATIENCE),
                    chaos: Some(plan.clone()),
                    stream_base: (i as u64) << 32,
                    ..WorkerOptions::default()
                };
                let finished = &finished;
                scope.spawn(move || {
                    let report =
                        run_worker_with(&addr, &format!("chaos-{i}"), Some(finished), options);
                    report.unwrap_or_else(|e| panic!("chaos worker {i} gave up: {e}"))
                })
            })
            .collect();
        let truth = coordinator
            .run(listener, &RunControl::new())
            .expect("chaos campaign merges");
        // Unblock stragglers still in a reconnect backoff against the
        // now-closed listener.
        finished.store(true, Ordering::Relaxed);
        let reports: Vec<WorkerReport> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect();
        (truth, reports)
    });

    CampaignSoak {
        identical: truth.to_bytes() == serial.to_bytes(),
        chunks: reports.iter().map(|r| r.chunks).sum(),
        retries: reports.iter().map(|r| r.retries).sum(),
        reconnects: reports.iter().map(|r| r.reconnects).sum(),
        chaos: plan.report(),
    }
}

struct ServeSoak {
    identical: bool,
    replies: u64,
    report: ClientReport,
    chaos: ChaosReport,
}

/// Serial inference vs. chaos-wrapped resilient clients over real TCP.
fn serve_soak(args: &Args) -> ServeSoak {
    let model =
        GraphSage::try_new(FEATURE_DIM, &SageConfig::default()).expect("valid model config");
    let stride = 8usize;
    let bench = &suite(EXPERIMENT_SEED)[0];
    let cdfg = Cdfg::build(bench.program(), &CdfgConfig { bit_stride: stride });
    let features = Matrix::from_vec(cdfg.node_count(), FEATURE_DIM, cdfg.feature_matrix());
    let reference = model.predict_proba(&features, cdfg.preds_csr());

    let server = Server::bind(model, "127.0.0.1:0", ServerConfig::default()).expect("bind server");
    let addr = server.local_addr();
    let handle = server.spawn();

    let plan = ChaosPlan::new(ChaosConfig::new(args.seed ^ 1).with_fault_ppm(SERVE_FAULT_PPM));
    let (identical, replies, report) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|i| {
                let plan = plan.clone();
                let reference = &reference;
                let name = bench.name;
                scope.spawn(move || {
                    let mut client =
                        ResilientClient::new(addr.to_string(), RetryPolicy::patient(PATIENCE))
                            .with_chaos(plan, (i as u64) << 32);
                    let mut identical = true;
                    for _ in 0..args.requests {
                        let spec = ProgramSpec::Suite {
                            name: name.to_string(),
                            seed: EXPERIMENT_SEED,
                        };
                        let reply = client
                            .predict(&spec, stride as u32, 10, true)
                            .expect("resilient predict survives chaos");
                        let bits = reply.bit_probs.as_deref().unwrap_or_default();
                        identical &= bits.len() == reference.rows()
                            && bits.iter().enumerate().all(|(row, got)| {
                                got.iter()
                                    .zip(reference.row(row))
                                    .all(|(a, b)| a.to_bits() == b.to_bits())
                            });
                    }
                    (identical, client.report())
                })
            })
            .collect();
        let mut identical = true;
        let mut total = ClientReport::default();
        for h in handles {
            let (ok, report) = h.join().expect("client thread");
            identical &= ok;
            total.retries += report.retries;
            total.busy_responses += report.busy_responses;
            total.reconnects += report.reconnects;
        }
        (identical, (args.clients * args.requests) as u64, total)
    });

    // Plain (un-chaosed) control connection for the shutdown.
    let mut control = glaive_serve::Client::connect(addr).expect("connect for shutdown");
    control.shutdown_server().expect("shutdown");
    handle.join().expect("server run");

    ServeSoak {
        identical,
        replies,
        report,
        chaos: plan.report(),
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "chaos soak: seed {:#018x}, {} workers, {} clients x {} requests",
        args.seed, args.workers, args.clients, args.requests
    );

    let campaign = campaign_soak(&args);
    eprintln!(
        "campaign: identical={} ({} chunks, {} retries, {} reconnects, {} faults injected)",
        campaign.identical,
        campaign.chunks,
        campaign.retries,
        campaign.reconnects,
        campaign.chaos.total()
    );
    let serve = serve_soak(&args);
    eprintln!(
        "serve: identical={} ({} replies, {} retries, {} reconnects, {} faults injected)",
        serve.identical,
        serve.replies,
        serve.report.retries,
        serve.report.reconnects,
        serve.chaos.total()
    );

    println!("metric\tvalue");
    println!("seed\t{:#018x}", args.seed);
    println!("campaign_identical\t{}", campaign.identical);
    println!("campaign_chunks\t{}", campaign.chunks);
    println!("campaign_retries\t{}", campaign.retries);
    println!("campaign_reconnects\t{}", campaign.reconnects);
    println!("campaign_faults\t{}", campaign.chaos.total());
    println!("serve_identical\t{}", serve.identical);
    println!("serve_replies\t{}", serve.replies);
    println!("serve_retries\t{}", serve.report.retries);
    println!("serve_busy_responses\t{}", serve.report.busy_responses);
    println!("serve_reconnects\t{}", serve.report.reconnects);
    println!("serve_faults\t{}", serve.chaos.total());

    let json = format!(
        "{{\n  \"seed\": {},\n  \"campaign\": {{\n    \"identical\": {},\n    \
         \"workers\": {},\n    \"chunks\": {},\n    \"retries\": {},\n    \
         \"reconnects\": {},\n    \"delays\": {},\n    \"short_ops\": {},\n    \
         \"corruptions\": {},\n    \"disconnects\": {}\n  }},\n  \"serve\": {{\n    \
         \"identical\": {},\n    \"clients\": {},\n    \"replies\": {},\n    \
         \"retries\": {},\n    \"busy_responses\": {},\n    \"reconnects\": {},\n    \
         \"delays\": {},\n    \"short_ops\": {},\n    \"corruptions\": {},\n    \
         \"disconnects\": {}\n  }}\n}}\n",
        args.seed,
        campaign.identical,
        args.workers,
        campaign.chunks,
        campaign.retries,
        campaign.reconnects,
        campaign.chaos.delays,
        campaign.chaos.short_ops,
        campaign.chaos.corruptions,
        campaign.chaos.disconnects,
        serve.identical,
        args.clients,
        serve.replies,
        serve.report.retries,
        serve.report.busy_responses,
        serve.report.reconnects,
        serve.chaos.delays,
        serve.chaos.short_ops,
        serve.chaos.corruptions,
        serve.chaos.disconnects,
    );
    std::fs::write(&args.out, json).expect("write results");
    eprintln!("wrote {}", args.out);

    assert!(campaign.identical, "chaos campaign diverged from serial");
    assert!(serve.identical, "chaos serve replies diverged from serial");
    assert!(
        campaign.chaos.total() + serve.chaos.total() > 0,
        "the chaos layer injected nothing; the soak is vacuous"
    );
}
