//! All paper artefacts from a single trained evaluation: Table II,
//! Fig. 2, Table III, Fig. 4, Fig. 5a and Fig. 5b in one run (training the
//! round-robin model sets once instead of once per binary).
//!
//! Run with: `cargo run -p glaive-bench --bin paper_results --release`

use glaive::experiments::{paper_budgets, CoverageCurve};
use glaive::Method;
use glaive_bench_suite::{Category, Split};

const DATA_ORDER: [&str; 6] = ["blackscholes", "fft", "swaptions", "radix", "ctaes", "lu"];
const CONTROL_ORDER: [&str; 6] = [
    "dijkstra",
    "streamcluster",
    "jmeint",
    "astar",
    "sobel",
    "inversek2j",
];

fn main() -> std::process::ExitCode {
    glaive_bench::run_experiment(|| {
        let (eval, config) = glaive_bench::standard_evaluation()?;

        // ---- Table II ----
        println!("\n==== Table II: datasets ====");
        println!("benchmark\tcategory\tsplit\tBL\tIL");
        for d in eval.suite() {
            println!(
                "{}\t{}\t{}\t{}\t{}",
                d.bench.name,
                d.bench.category.tag(),
                match d.bench.split {
                    Split::TrainTest => "TT",
                    Split::Validation => "V",
                },
                d.bit_datapoints(),
                d.instr_datapoints()
            );
        }

        // ---- Fig. 2 ----
        println!("\n==== Fig. 2: vulnerability distributions ====");
        println!("benchmark\tpure_masked\tpure_sdc\tpure_crash\tmixed");
        let mut mixed_sum = 0.0;
        for (name, _, v) in eval.distribution_rows() {
            println!(
                "{name}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
                v.pure_masked, v.pure_sdc, v.pure_crash, v.mixed
            );
            mixed_sum += v.mixed;
        }
        println!(
            "# average mixed: {:.4} (paper: 0.5188)",
            mixed_sum / eval.suite().len() as f64
        );

        // ---- Table III ----
        println!("\n==== Table III: accuracy (GLAIVE vs MLP-BIT) ====");
        println!("benchmark\tcategory\tsplit\tGLAIVE\tMLP-BIT");
        let rows = eval.accuracy_rows();
        for r in &rows {
            println!(
                "{}\t{}\t{}\t{:.3}\t{:.3}",
                r.benchmark,
                r.category.tag(),
                match r.split {
                    Split::TrainTest => "TT",
                    Split::Validation => "V",
                },
                r.glaive,
                r.mlp_bit
            );
        }
        for cat in [Category::Data, Category::Control] {
            let sel: Vec<_> = rows.iter().filter(|r| r.category == cat).collect();
            let g: f64 = sel.iter().map(|r| r.glaive).sum::<f64>() / sel.len() as f64;
            let m: f64 = sel.iter().map(|r| r.mlp_bit).sum::<f64>() / sel.len() as f64;
            println!(
                "# {cat:?} avg: GLAIVE={g:.3} MLP-BIT={m:.3} ({:+.2}%)",
                (g - m) / m * 100.0
            );
        }

        // ---- Fig. 4 ----
        println!("\n==== Fig. 4: top-K coverage ====");
        let ks = paper_budgets();
        let curves = eval.coverage_curves(&ks);
        let series = |title: &str, sel: &[&CoverageCurve]| {
            println!("-- {title} --");
            print!("K%");
            for m in Method::ALL {
                print!("\t{}", m.name());
            }
            println!();
            for (i, &k) in ks.iter().enumerate() {
                print!("{k}");
                for m in Method::ALL {
                    let pts: Vec<f64> = sel
                        .iter()
                        .filter(|c| c.method == m)
                        .map(|c| c.points[i].1)
                        .collect();
                    print!("\t{:.3}", pts.iter().sum::<f64>() / pts.len() as f64);
                }
                println!();
            }
        };
        let radix: Vec<&CoverageCurve> = curves.iter().filter(|c| c.benchmark == "radix").collect();
        series("(a) Radix", &radix);
        let swap: Vec<&CoverageCurve> = curves
            .iter()
            .filter(|c| c.benchmark == "swaptions")
            .collect();
        series("(b) Swaptions", &swap);
        let ctrl: Vec<&CoverageCurve> = curves
            .iter()
            .filter(|c| c.category == Category::Control)
            .collect();
        series("(c) Control-sensitive average", &ctrl);
        println!("-- mean coverage over all budgets and benchmarks --");
        for m in Method::ALL {
            let sel: Vec<f64> = curves
                .iter()
                .filter(|c| c.method == m)
                .map(CoverageCurve::mean_coverage)
                .collect();
            println!(
                "{}\t{:.4}",
                m.name(),
                sel.iter().sum::<f64>() / sel.len() as f64
            );
        }

        // ---- Fig. 5a ----
        println!("\n==== Fig. 5a: program vulnerability error ====");
        println!("label\tbenchmark\tM1:GLAIVE\tM2:MLP-BIT\tM3:SVM-INST\tM4:RF-INST");
        let pv_rows = eval.pv_error_rows();
        for (order, tag) in [(DATA_ORDER, 'D'), (CONTROL_ORDER, 'C')] {
            let mut sums = [0.0f64; 4];
            for (i, name) in order.iter().enumerate() {
                let r = pv_rows
                    .iter()
                    .find(|r| r.benchmark == *name)
                    .expect("row exists");
                println!(
                    "{tag}{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                    i + 1,
                    name,
                    r.errors[0],
                    r.errors[1],
                    r.errors[2],
                    r.errors[3]
                );
                for (s, e) in sums.iter_mut().zip(r.errors) {
                    *s += e;
                }
            }
            let a = sums.map(|s| s / 6.0);
            println!(
                "# {tag} avg: M1={:.3} M2={:.3} M3={:.3} M4={:.3}",
                a[0], a[1], a[2], a[3]
            );
        }

        // ---- Fig. 5b ----
        println!("\n==== Fig. 5b: speedup over FI (log10) ====");
        println!("label\tbenchmark\tFI_s\tM1\tM2\tM3\tM4");
        let mut glaive_speedups = Vec::new();
        for (order, tag) in [(DATA_ORDER, 'D'), (CONTROL_ORDER, 'C')] {
            for (i, name) in order.iter().enumerate() {
                let report = eval.runtime_report(name, &config)?;
                let sp = report.speedups();
                glaive_speedups.push(sp[0]);
                println!(
                    "{tag}{}\t{}\t{:.3}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
                    i + 1,
                    name,
                    report.fi_seconds,
                    sp[0].log10(),
                    sp[1].log10(),
                    sp[2].log10(),
                    sp[3].log10()
                );
            }
        }
        let geo = (glaive_speedups.iter().map(|s| s.ln()).sum::<f64>()
            / glaive_speedups.len() as f64)
            .exp();
        println!("# GLAIVE geometric-mean speedup: {geo:.0}x (paper: average 221x)");

        Ok(())
    })
}
