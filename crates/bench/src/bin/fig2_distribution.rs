//! Fig. 2 — vulnerability distributions of the benchmarks: fraction of
//! instructions whose sampled bits are all-Masked / all-SDC / all-Crash
//! versus *mixed*, per benchmark.
//!
//! Paper shape: a substantial fraction of instructions (up to 87.8%, on
//! average 51.88% in the paper) has mixed bit-level outcomes, motivating
//! bit-level features.

fn main() -> std::process::ExitCode {
    glaive_bench::run_experiment(|| {
        let (suite, config) = glaive_bench::standard_suite()?;
        println!(
            "# Fig. 2: vulnerability distributions (bit stride {})",
            config.bit_stride
        );
        println!("benchmark\tcategory\tinstructions\tpure_masked\tpure_sdc\tpure_crash\tmixed");
        let mut mixed_sum = 0.0;
        let mut mixed_max: (f64, &str) = (0.0, "");
        for d in &suite {
            let v = glaive::stats::vulnerability_distribution(d);
            println!(
                "{}\t{}\t{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
                d.bench.name,
                d.bench.category.tag(),
                v.instructions,
                v.pure_masked,
                v.pure_sdc,
                v.pure_crash,
                v.mixed
            );
            mixed_sum += v.mixed;
            if v.mixed > mixed_max.0 {
                mixed_max = (v.mixed, d.bench.name);
            }
        }
        println!(
            "# average mixed fraction: {:.4} (paper: 0.5188); max: {:.4} on {} (paper: 0.878)",
            mixed_sum / suite.len() as f64,
            mixed_max.0,
            mixed_max.1
        );

        Ok(())
    })
}
