//! Fig. 4 — top-K coverage for varying protection budget K (5%..100% in
//! steps of 5) for all four methods:
//!
//! * (a) Radix (data-sensitive),
//! * (b) Swaptions (data-sensitive),
//! * (c) average over the control-sensitive benchmarks,
//!
//! plus the full per-benchmark curves.
//!
//! Paper shape: bit-level methods (GLAIVE, MLP-BIT) dominate
//! instruction-level regressors below K ≈ 70%; GLAIVE averages ~90% top-K
//! coverage in the paper's testbed.

use glaive::experiments::{paper_budgets, CoverageCurve};
use glaive::Method;
use glaive_bench_suite::Category;

fn print_series(title: &str, curves: &[&CoverageCurve], ks: &[f64]) {
    println!("## {title}");
    print!("K%");
    for m in Method::ALL {
        print!("\t{}", m.name());
    }
    println!();
    for (i, &k) in ks.iter().enumerate() {
        print!("{k}");
        for m in Method::ALL {
            // Average over the selected curves for this method.
            let sel: Vec<f64> = curves
                .iter()
                .filter(|c| c.method == m)
                .map(|c| c.points[i].1)
                .collect();
            let avg = sel.iter().sum::<f64>() / sel.len() as f64;
            print!("\t{avg:.3}");
        }
        println!();
    }
}

fn main() -> std::process::ExitCode {
    glaive_bench::run_experiment(|| {
        let (eval, _) = glaive_bench::standard_evaluation()?;
        let ks = paper_budgets();
        let curves = eval.coverage_curves(&ks);

        println!("# Fig. 4: top-K coverage vs protection budget");
        let radix: Vec<&CoverageCurve> = curves.iter().filter(|c| c.benchmark == "radix").collect();
        print_series("(a) Radix", &radix, &ks);
        let swaptions: Vec<&CoverageCurve> = curves
            .iter()
            .filter(|c| c.benchmark == "swaptions")
            .collect();
        print_series("(b) Swaptions", &swaptions, &ks);
        let control: Vec<&CoverageCurve> = curves
            .iter()
            .filter(|c| c.category == Category::Control)
            .collect();
        print_series("(c) Control-sensitive average", &control, &ks);

        println!("## Mean coverage over all budgets and benchmarks");
        for m in Method::ALL {
            let sel: Vec<f64> = curves
                .iter()
                .filter(|c| c.method == m)
                .map(CoverageCurve::mean_coverage)
                .collect();
            println!(
                "{}\t{:.4}",
                m.name(),
                sel.iter().sum::<f64>() / sel.len() as f64
            );
        }
        println!("# paper: GLAIVE averages 90.23% coverage, up to 21.3%/23.18% above RF/SVM");

        Ok(())
    })
}
