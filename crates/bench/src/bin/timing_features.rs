//! Timing-feature ablation experiment (`BENCH_9.json`).
//!
//! Trains GLAIVE twice on the Table-II train/test benchmarks — once on the
//! static CDFG feature matrix, once with the three dynamic timing columns
//! (normalised issue cycle, residency share, stall share) appended behind
//! `PipelineConfig::timing_features` — and scores both models' instruction
//! vulnerability rankings on the held-out validation programs (inversek2j,
//! lu): Spearman ρ against the FI ground truth plus top-10%/top-20%
//! protection-set overlap.
//!
//! Each validation benchmark is also scored against the
//! *residency-weighted* FI ranking (`ranking_key × mean residency /
//! total cycles`, see `GroundTruth::try_residency_weighted_vulnerability`)
//! — the AVF-style view where long-lived corrupt values matter more. There
//! is no paper number to match, so the JSON records the measurement; only
//! sanity floors (finite metrics, non-empty campaigns) are enforced.
//!
//! Flags: `--out PATH` (default `BENCH_9.json`), `--quick` (or
//! `GLAIVE_QUICK=1`) for a subsampled smoke run, `--no-cache` to bypass
//! the artifact cache.

use std::fmt::Write as _;

use glaive::metrics::{spearman, top_k_overlap};
use glaive::{
    golden_timing_profile, residency_from_profile, train_models, BenchData, Error, Method,
    Pipeline, PipelineConfig,
};
use glaive_bench::{cache_disabled, run_experiment, EXPERIMENT_SEED};
use glaive_bench_suite::Split;

struct Args {
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_9.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--quick" | "--no-cache" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

struct BenchRow {
    name: &'static str,
    covered: usize,
    spearman: f64,
    top10: f64,
    top20: f64,
    /// Spearman ρ against the residency-weighted FI ranking.
    weighted_spearman: f64,
}

/// Prepares the suite under `config` (sharing the FI artifact cache with
/// the other variant — timing features are an observer, not a campaign
/// parameter, so both variants join onto identical ground truth).
fn prepared_suite(config: PipelineConfig) -> Result<Vec<BenchData>, Error> {
    let mut builder = Pipeline::builder(config);
    if !cache_disabled() {
        builder = builder.default_cache();
    }
    let pipeline = builder.build()?;
    let mut report = pipeline.prepare_suite_supervised(EXPERIMENT_SEED);
    if let Some(summary) = report.failure_summary() {
        eprint!("{summary}");
    }
    report.check_quorum(config.quorum)?;
    Ok(report.take_prepared())
}

/// Trains GLAIVE on the train/test split and scores its ranking on every
/// validation benchmark.
fn evaluate_variant(config: PipelineConfig, label: &str) -> Result<Vec<BenchRow>, Error> {
    eprintln!(
        "[{label}] preparing suite (seed {EXPERIMENT_SEED}, bit stride {}, timing features {})...",
        config.bit_stride, config.timing_features
    );
    let suite = prepared_suite(config)?;
    let train: Vec<&BenchData> = suite
        .iter()
        .filter(|d| d.bench.split == Split::TrainTest)
        .collect();
    eprintln!("[{label}] training GLAIVE on {} benchmarks...", train.len());
    let models = train_models(&train, &config);

    let mut rows = Vec::new();
    for d in suite.iter().filter(|d| d.bench.split == Split::Validation) {
        let predicted = models.estimate(Method::Glaive, d);
        // The residency-weighted FI ranking, from the validation program's
        // own golden-run profile.
        let profile = golden_timing_profile(&d.bench);
        let weighted = d
            .truth
            .clone()
            .with_residency(residency_from_profile(&profile))
            .expect("profile is shaped like the program")
            .try_residency_weighted_vulnerability()
            .expect("residency attached");

        let mut truth_scores = Vec::new();
        let mut weighted_scores = Vec::new();
        let mut pred_scores = Vec::new();
        for (i, pc) in d.covered_pcs().into_iter().enumerate() {
            if let Some(p) = predicted[pc] {
                truth_scores.push(d.fi_tuples[pc].expect("covered").ranking_key());
                debug_assert_eq!(weighted[i].0, pc);
                weighted_scores.push(weighted[i].1);
                pred_scores.push(p.ranking_key());
            }
        }
        let n = truth_scores.len();
        assert!(n > 0, "{}: campaign covered nothing", d.bench.name);
        let k10 = (n as f64 * 0.10).ceil() as usize;
        let k20 = (n as f64 * 0.20).ceil() as usize;
        let row = BenchRow {
            name: d.bench.name,
            covered: n,
            spearman: spearman(&truth_scores, &pred_scores),
            top10: top_k_overlap(&truth_scores, &pred_scores, k10),
            top20: top_k_overlap(&truth_scores, &pred_scores, k20),
            weighted_spearman: spearman(&weighted_scores, &pred_scores),
        };
        assert!(
            row.spearman.is_finite()
                && row.top10.is_finite()
                && row.top20.is_finite()
                && row.weighted_spearman.is_finite(),
            "{}: non-finite ranking metrics",
            row.name
        );
        rows.push(row);
    }
    Ok(rows)
}

fn mean(rows: &[BenchRow], f: impl Fn(&BenchRow) -> f64) -> f64 {
    rows.iter().map(f).sum::<f64>() / rows.len() as f64
}

fn rows_json(rows: &[BenchRow]) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            out,
            "      {{\"name\": \"{}\", \"covered\": {}, \"spearman\": {:.6}, \
             \"top10_overlap\": {:.6}, \"top20_overlap\": {:.6}, \
             \"weighted_spearman\": {:.6}}}{sep}",
            r.name, r.covered, r.spearman, r.top10, r.top20, r.weighted_spearman
        )
        .expect("write to string");
    }
    out
}

fn main() -> std::process::ExitCode {
    run_experiment(|| {
        let args = parse_args();
        let base = glaive_bench::experiment_config();
        let timed_config = base
            .to_builder()
            .timing_features(true)
            .build()
            .expect("base config stays valid");

        let static_rows = evaluate_variant(base, "static")?;
        let timed_rows = evaluate_variant(timed_config, "timing")?;

        println!("variant\tbench\tcovered\tspearman\ttop10\ttop20\tweighted_rho");
        for (label, rows) in [("static", &static_rows), ("timing", &timed_rows)] {
            for r in rows {
                println!(
                    "{label}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
                    r.name, r.covered, r.spearman, r.top10, r.top20, r.weighted_spearman
                );
            }
        }
        let delta = mean(&timed_rows, |r| r.spearman) - mean(&static_rows, |r| r.spearman);
        println!("delta_mean_spearman\t{delta:.3}");

        let json = format!(
            "{{\n  \"seed\": {EXPERIMENT_SEED},\n  \"bit_stride\": {},\n  \
             \"instances_per_site\": {},\n  \"eval_split\": \"validation\",\n  \
             \"delta_mean_spearman\": {delta:.6},\n  \"variants\": {{\n    \
             \"static\": {{\n      \"mean_spearman\": {:.6},\n      \
             \"mean_top10_overlap\": {:.6},\n      \"mean_top20_overlap\": {:.6},\n      \
             \"mean_weighted_spearman\": {:.6},\n      \"benchmarks\": [\n{}    ]\n    }},\n    \
             \"timing\": {{\n      \"mean_spearman\": {:.6},\n      \
             \"mean_top10_overlap\": {:.6},\n      \"mean_top20_overlap\": {:.6},\n      \
             \"mean_weighted_spearman\": {:.6},\n      \"benchmarks\": [\n{}    ]\n    }}\n  }}\n}}\n",
            base.bit_stride,
            base.instances_per_site,
            mean(&static_rows, |r| r.spearman),
            mean(&static_rows, |r| r.top10),
            mean(&static_rows, |r| r.top20),
            mean(&static_rows, |r| r.weighted_spearman),
            rows_json(&static_rows),
            mean(&timed_rows, |r| r.spearman),
            mean(&timed_rows, |r| r.top10),
            mean(&timed_rows, |r| r.top20),
            mean(&timed_rows, |r| r.weighted_spearman),
            rows_json(&timed_rows),
        );
        std::fs::write(&args.out, json).expect("write results");
        eprintln!("wrote {}", args.out);
        Ok(())
    })
}
