//! Fig. 5b — instruction-vulnerability-estimation speedup of each method
//! over the fault-injection baseline, reported as log10(speedup) like the
//! paper's log-scale plot.
//!
//! The FI baseline re-runs the full campaign (which is itself parallel,
//! matching the paper's 16-way-parallel FI baseline); each method's time is
//! its inference over the already-extracted features with pre-trained
//! models, as in the paper.
//!
//! Paper shape: all ML methods gain 2–3 orders of magnitude; GLAIVE is
//! slower than MLP-BIT (graph aggregation costs more) and up to an order
//! slower than RF/SVM, but still ≫ FI (average 221× in the paper).

//! Pass `--json <path>` to additionally write the run's per-stage wall
//! times (CDFG build, FI campaign, training, inference) as a JSON record;
//! set `GLAIVE_BASELINE_S` to embed a reference total for comparison.

use std::time::Instant;

use glaive::telemetry::Stage;
use glaive::Method;
use glaive_bench::timing::{json_path_arg, StageTimes};

const DATA_ORDER: [&str; 6] = ["blackscholes", "fft", "swaptions", "radix", "ctaes", "lu"];
const CONTROL_ORDER: [&str; 6] = [
    "dijkstra",
    "streamcluster",
    "jmeint",
    "astar",
    "sobel",
    "inversek2j",
];

fn main() -> std::process::ExitCode {
    glaive_bench::run_experiment(|| {
        let started = Instant::now();
        let (eval, config, recorder) = glaive_bench::standard_evaluation_timed()?;
        println!("# Fig. 5b: speedup over fault injection (log10)");
        println!("label\tbenchmark\tFI_s\tM1_log10\tM2_log10\tM3_log10\tM4_log10");
        let mut glaive_speedups = Vec::new();
        let mut inference_s = 0.0;
        for (order, tag) in [(DATA_ORDER, 'D'), (CONTROL_ORDER, 'C')] {
            for (i, name) in order.iter().enumerate() {
                let report = eval.runtime_report(name, &config)?;
                let sp = report.speedups();
                glaive_speedups.push(sp[0]);
                inference_s += report.method_seconds.iter().sum::<f64>();
                println!(
                    "{tag}{}\t{}\t{:.3}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
                    i + 1,
                    name,
                    report.fi_seconds,
                    sp[0].log10(),
                    sp[1].log10(),
                    sp[2].log10(),
                    sp[3].log10()
                );
            }
        }
        let geo =
            glaive_speedups.iter().map(|s| s.ln()).sum::<f64>() / glaive_speedups.len() as f64;
        println!(
            "# GLAIVE geometric-mean speedup over FI: {:.0}x (paper: average 221x); methods: {}",
            geo.exp(),
            Method::ALL.map(|m| m.name()).join(", ")
        );

        if let Some(path) = json_path_arg(std::env::args()) {
            let times = StageTimes {
                cdfg_build_s: recorder.stage_total(Stage::GraphBuild).as_secs_f64(),
                fi_campaign_s: recorder.stage_total(Stage::Campaign).as_secs_f64(),
                train_s: recorder.stage_total(Stage::Training).as_secs_f64(),
                // The pipeline emits no Evaluation-stage spans; the per-method
                // inference times measured by `runtime_report` are the real
                // inference cost of this binary.
                inference_s,
                total_s: started.elapsed().as_secs_f64(),
                baseline_total_s: std::env::var("GLAIVE_BASELINE_S")
                    .ok()
                    .and_then(|s| s.parse().ok()),
            };
            times
                .write(&path)
                .map_err(|e| glaive::Error::Cache(format!("writing {path}: {e}")))?;
            eprintln!("wrote stage timings to {path}");
        }

        Ok(())
    })
}
