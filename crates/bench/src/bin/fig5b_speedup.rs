//! Fig. 5b — instruction-vulnerability-estimation speedup of each method
//! over the fault-injection baseline, reported as log10(speedup) like the
//! paper's log-scale plot.
//!
//! The FI baseline re-runs the full campaign (which is itself parallel,
//! matching the paper's 16-way-parallel FI baseline); each method's time is
//! its inference over the already-extracted features with pre-trained
//! models, as in the paper.
//!
//! Paper shape: all ML methods gain 2–3 orders of magnitude; GLAIVE is
//! slower than MLP-BIT (graph aggregation costs more) and up to an order
//! slower than RF/SVM, but still ≫ FI (average 221× in the paper).

use glaive::Method;

const DATA_ORDER: [&str; 6] = ["blackscholes", "fft", "swaptions", "radix", "ctaes", "lu"];
const CONTROL_ORDER: [&str; 6] = [
    "dijkstra",
    "streamcluster",
    "jmeint",
    "astar",
    "sobel",
    "inversek2j",
];

fn main() -> std::process::ExitCode {
    glaive_bench::run_experiment(|| {
        let (eval, config) = glaive_bench::standard_evaluation()?;
        println!("# Fig. 5b: speedup over fault injection (log10)");
        println!("label\tbenchmark\tFI_s\tM1_log10\tM2_log10\tM3_log10\tM4_log10");
        let mut glaive_speedups = Vec::new();
        for (order, tag) in [(DATA_ORDER, 'D'), (CONTROL_ORDER, 'C')] {
            for (i, name) in order.iter().enumerate() {
                let report = eval.runtime_report(name, &config)?;
                let sp = report.speedups();
                glaive_speedups.push(sp[0]);
                println!(
                    "{tag}{}\t{}\t{:.3}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
                    i + 1,
                    name,
                    report.fi_seconds,
                    sp[0].log10(),
                    sp[1].log10(),
                    sp[2].log10(),
                    sp[3].log10()
                );
            }
        }
        let geo =
            glaive_speedups.iter().map(|s| s.ln()).sum::<f64>() / glaive_speedups.len() as f64;
        println!(
            "# GLAIVE geometric-mean speedup over FI: {:.0}x (paper: average 221x); methods: {}",
            geo.exp(),
            Method::ALL.map(|m| m.name()).join(", ")
        );

        Ok(())
    })
}
