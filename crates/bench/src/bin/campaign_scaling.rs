//! Distributed campaign scaling benchmark (`BENCH_5.json`).
//!
//! Runs the fault-injection campaign for a slice of the suite three ways
//! — the serial in-process [`Campaign`], then the `glaive-campaign`
//! fabric with 1, 2 and 4 **worker processes** — timing each and
//! **hard-asserting bit-identity**: every distributed `GroundTruth` must
//! serialise to exactly the serial campaign's bytes, worker count
//! notwithstanding. The run fails (non-zero exit) on any divergence.
//!
//! Workers are real OS processes (`glaive-cli campaign worker` siblings of
//! this binary) rather than in-process threads, so the fleet competes for
//! CPUs exactly like a production deployment and the scaling numbers mean
//! what they claim. When the CLI binary cannot be found next to this one
//! (e.g. a bench-only build), the run falls back to in-process worker
//! threads and records `"worker_mode": "threads"` in the JSON.
//!
//! Speedup is reported as 1-worker fabric time over N-worker fabric time
//! (isolating sharding from protocol overhead; the serial baseline is
//! also recorded). The ≥1.6× four-worker expectation is asserted on any
//! machine with ≥2 CPUs — four single-threaded worker processes on two
//! cores still finish ≈2× faster than one — with `cpus` in the JSON so
//! readers can judge the numbers.
//!
//! Flags: `--out PATH` (default `BENCH_5.json`), `--quick` (or
//! `GLAIVE_QUICK=1`) for a subsampled smoke run.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use glaive_bench::{quick_requested, EXPERIMENT_SEED};
use glaive_bench_suite::{suite, Benchmark};
use glaive_campaign::{run_distributed, Coordinator, FabricConfig};
use glaive_faultsim::{Campaign, CampaignConfig, GroundTruth, RunControl};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

struct Args {
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_5.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--quick" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Locates the `glaive-cli` binary built alongside this bench binary
/// (cargo places both in `target/<profile>/`; test/bench binaries live one
/// level deeper in `deps/`).
fn find_cli() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    let cli = dir.join(format!("glaive-cli{}", std::env::consts::EXE_SUFFIX));
    cli.is_file().then_some(cli)
}

/// A fleet of real `glaive-cli campaign worker` processes attached to a
/// coordinator listener; killed (not just waited on) if the coordinator
/// fails, so a panicking run cannot leak children.
struct WorkerFleet {
    children: Vec<Child>,
}

impl WorkerFleet {
    fn spawn(cli: &PathBuf, addr: &str, workers: usize) -> WorkerFleet {
        let children = (0..workers)
            .map(|i| {
                Command::new(cli)
                    .args([
                        "campaign",
                        "worker",
                        "--connect",
                        addr,
                        "--name",
                        &format!("proc-{i}"),
                    ])
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::piped())
                    .spawn()
                    .expect("spawn glaive-cli campaign worker")
            })
            .collect();
        WorkerFleet { children }
    }

    /// Waits for every worker to exit cleanly, surfacing its stderr if not.
    fn join(mut self) {
        for mut child in self.children.drain(..) {
            let status = child.wait().expect("wait for worker process");
            if !status.success() {
                let mut err = String::new();
                if let Some(stderr) = child.stderr.take() {
                    for line in BufReader::new(stderr).lines().map_while(Result::ok) {
                        err.push_str(&line);
                        err.push('\n');
                    }
                }
                panic!("worker process failed ({status}): {err}");
            }
        }
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// One distributed campaign with `workers` real worker processes.
fn run_with_processes(
    cli: &PathBuf,
    bench: &Benchmark,
    config: CampaignConfig,
    fabric: FabricConfig,
    workers: usize,
) -> GroundTruth {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind coordinator listener");
    let addr = listener
        .local_addr()
        .expect("coordinator listener address")
        .to_string();
    let fleet = WorkerFleet::spawn(cli, &addr, workers);
    let truth = Coordinator::try_new(bench.program(), &bench.init_mem, config, fabric)
        .expect("valid fabric config")
        .run(listener, &RunControl::new())
        .expect("fabric completes");
    fleet.join();
    truth
}

struct BenchRow {
    name: &'static str,
    injections: usize,
    serial: Duration,
    fabric: [Duration; WORKER_COUNTS.len()],
}

fn main() {
    let args = parse_args();
    let campaign_config = glaive_bench::experiment_config().campaign();
    let fabric = FabricConfig {
        chunk_size: 32,
        ..FabricConfig::default()
    };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cli = find_cli();
    let worker_mode = if cli.is_some() {
        "processes"
    } else {
        "threads"
    };
    if cli.is_none() {
        eprintln!(
            "note: glaive-cli not found next to this binary; falling back to worker threads \
             (build it with `cargo build --release -p glaive-cli` for process workers)"
        );
    }
    let names: &[&str] = if quick_requested() {
        &["dijkstra", "sobel"]
    } else {
        &["dijkstra", "sobel", "fft", "blackscholes"]
    };
    let benches: Vec<_> = suite(EXPERIMENT_SEED)
        .into_iter()
        .filter(|b| names.contains(&b.name))
        .collect();

    let mut rows = Vec::new();
    for b in &benches {
        eprintln!("{}: serial campaign...", b.name);
        let t0 = Instant::now();
        let serial: GroundTruth = Campaign::try_new(b.program(), &b.init_mem, campaign_config)
            .expect("valid config")
            .run();
        let serial_time = t0.elapsed();
        let serial_bytes = serial.to_bytes();

        let mut fabric_times = [Duration::ZERO; WORKER_COUNTS.len()];
        for (slot, &workers) in WORKER_COUNTS.iter().enumerate() {
            eprintln!("{}: fabric with {workers} {worker_mode}...", b.name);
            let t0 = Instant::now();
            let distributed = match &cli {
                Some(cli) => run_with_processes(cli, b, campaign_config, fabric, workers),
                None => run_distributed(
                    b.program(),
                    &b.init_mem,
                    campaign_config,
                    fabric,
                    workers,
                    &RunControl::new(),
                )
                .expect("fabric completes"),
            };
            fabric_times[slot] = t0.elapsed();
            assert_eq!(
                distributed.to_bytes(),
                serial_bytes,
                "{}: {workers}-worker fabric diverged from the serial campaign",
                b.name
            );
        }
        rows.push(BenchRow {
            name: b.name,
            injections: serial.total_injections(),
            serial: serial_time,
            fabric: fabric_times,
        });
    }

    let total_1: f64 = rows.iter().map(|r| r.fabric[0].as_secs_f64()).sum();
    let total_2: f64 = rows.iter().map(|r| r.fabric[1].as_secs_f64()).sum();
    let total_4: f64 = rows.iter().map(|r| r.fabric[2].as_secs_f64()).sum();
    let speedup_2 = total_1 / total_2.max(f64::EPSILON);
    let speedup_4 = total_1 / total_4.max(f64::EPSILON);

    println!("benchmark\tinjections\tserial_ms\tw1_ms\tw2_ms\tw4_ms");
    for r in &rows {
        println!(
            "{}\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            r.name,
            r.injections,
            r.serial.as_secs_f64() * 1e3,
            r.fabric[0].as_secs_f64() * 1e3,
            r.fabric[1].as_secs_f64() * 1e3,
            r.fabric[2].as_secs_f64() * 1e3,
        );
    }
    println!("cpus\t{cpus}");
    println!("worker_mode\t{worker_mode}");
    println!("speedup_2w\t{speedup_2:.2}");
    println!("speedup_4w\t{speedup_4:.2}");

    let mut bench_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            bench_json,
            "    {{\"name\": \"{}\", \"injections\": {}, \"serial_s\": {:.6}, \
             \"workers_1_s\": {:.6}, \"workers_2_s\": {:.6}, \"workers_4_s\": {:.6}}}{sep}",
            r.name,
            r.injections,
            r.serial.as_secs_f64(),
            r.fabric[0].as_secs_f64(),
            r.fabric[1].as_secs_f64(),
            r.fabric[2].as_secs_f64(),
        )
        .expect("write to string");
    }
    let json = format!(
        "{{\n  \"cpus\": {cpus},\n  \"worker_mode\": \"{worker_mode}\",\n  \"chunk_size\": {},\n  \
         \"bit_identical\": true,\n  \
         \"speedup_2w\": {speedup_2:.3},\n  \"speedup_4w\": {speedup_4:.3},\n  \
         \"benchmarks\": [\n{bench_json}  ]\n}}\n",
        fabric.chunk_size
    );
    std::fs::write(&args.out, json).expect("write results");
    eprintln!("wrote {}", args.out);

    // Scaling is a property of the machine as much as the fabric: on a
    // single-core host the fleet time-slices one CPU and no speedup is
    // physically possible. With real worker processes, two cores already
    // suffice for the 4-worker fleet to beat one worker by well over 1.6×,
    // so the expectation binds on any multi-core host.
    if cpus >= 2 {
        assert!(
            speedup_4 >= 1.6,
            "4-worker speedup {speedup_4:.2} below 1.6x on a {cpus}-CPU host"
        );
    } else {
        eprintln!("note: {cpus} CPU(s) available; speedup assertion requires >= 2");
    }
}
