//! Distributed campaign scaling benchmark (`BENCH_5.json`).
//!
//! Runs the fault-injection campaign for a slice of the suite three ways
//! — the serial in-process [`Campaign`], then the `glaive-campaign`
//! fabric with 1, 2 and 4 in-process workers — timing each and
//! **hard-asserting bit-identity**: every distributed `GroundTruth` must
//! serialise to exactly the serial campaign's bytes, worker count
//! notwithstanding. The run fails (non-zero exit) on any divergence.
//!
//! Speedup is reported as 1-worker fabric time over N-worker fabric time
//! (isolating sharding from protocol overhead; the serial baseline is
//! also recorded). The ≥1.6× four-worker expectation is asserted only
//! when the machine actually has ≥4 CPUs — on smaller hosts the numbers
//! are still recorded, with `cpus` in the JSON so readers can judge them.
//!
//! Flags: `--out PATH` (default `BENCH_5.json`), `--quick` (or
//! `GLAIVE_QUICK=1`) for a subsampled smoke run.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use glaive_bench::{quick_requested, EXPERIMENT_SEED};
use glaive_bench_suite::suite;
use glaive_campaign::{run_distributed, FabricConfig};
use glaive_faultsim::{Campaign, GroundTruth, RunControl};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

struct Args {
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_5.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--quick" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

struct BenchRow {
    name: &'static str,
    injections: usize,
    serial: Duration,
    fabric: [Duration; WORKER_COUNTS.len()],
}

fn main() {
    let args = parse_args();
    let campaign_config = glaive_bench::experiment_config().campaign();
    let fabric = FabricConfig {
        chunk_size: 32,
        ..FabricConfig::default()
    };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let names: &[&str] = if quick_requested() {
        &["dijkstra", "sobel"]
    } else {
        &["dijkstra", "sobel", "fft", "blackscholes"]
    };
    let benches: Vec<_> = suite(EXPERIMENT_SEED)
        .into_iter()
        .filter(|b| names.contains(&b.name))
        .collect();

    let mut rows = Vec::new();
    for b in &benches {
        eprintln!("{}: serial campaign...", b.name);
        let t0 = Instant::now();
        let serial: GroundTruth = Campaign::new(b.program(), &b.init_mem, campaign_config).run();
        let serial_time = t0.elapsed();
        let serial_bytes = serial.to_bytes();

        let mut fabric_times = [Duration::ZERO; WORKER_COUNTS.len()];
        for (slot, &workers) in WORKER_COUNTS.iter().enumerate() {
            eprintln!("{}: fabric with {workers} worker(s)...", b.name);
            let t0 = Instant::now();
            let distributed = run_distributed(
                b.program(),
                &b.init_mem,
                campaign_config,
                fabric,
                workers,
                &RunControl::new(),
            )
            .expect("fabric completes");
            fabric_times[slot] = t0.elapsed();
            assert_eq!(
                distributed.to_bytes(),
                serial_bytes,
                "{}: {workers}-worker fabric diverged from the serial campaign",
                b.name
            );
        }
        rows.push(BenchRow {
            name: b.name,
            injections: serial.total_injections(),
            serial: serial_time,
            fabric: fabric_times,
        });
    }

    let total_1: f64 = rows.iter().map(|r| r.fabric[0].as_secs_f64()).sum();
    let total_2: f64 = rows.iter().map(|r| r.fabric[1].as_secs_f64()).sum();
    let total_4: f64 = rows.iter().map(|r| r.fabric[2].as_secs_f64()).sum();
    let speedup_2 = total_1 / total_2.max(f64::EPSILON);
    let speedup_4 = total_1 / total_4.max(f64::EPSILON);

    println!("benchmark\tinjections\tserial_ms\tw1_ms\tw2_ms\tw4_ms");
    for r in &rows {
        println!(
            "{}\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            r.name,
            r.injections,
            r.serial.as_secs_f64() * 1e3,
            r.fabric[0].as_secs_f64() * 1e3,
            r.fabric[1].as_secs_f64() * 1e3,
            r.fabric[2].as_secs_f64() * 1e3,
        );
    }
    println!("cpus\t{cpus}");
    println!("speedup_2w\t{speedup_2:.2}");
    println!("speedup_4w\t{speedup_4:.2}");

    let mut bench_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            bench_json,
            "    {{\"name\": \"{}\", \"injections\": {}, \"serial_s\": {:.6}, \
             \"workers_1_s\": {:.6}, \"workers_2_s\": {:.6}, \"workers_4_s\": {:.6}}}{sep}",
            r.name,
            r.injections,
            r.serial.as_secs_f64(),
            r.fabric[0].as_secs_f64(),
            r.fabric[1].as_secs_f64(),
            r.fabric[2].as_secs_f64(),
        )
        .expect("write to string");
    }
    let json = format!(
        "{{\n  \"cpus\": {cpus},\n  \"chunk_size\": {},\n  \"bit_identical\": true,\n  \
         \"speedup_2w\": {speedup_2:.3},\n  \"speedup_4w\": {speedup_4:.3},\n  \
         \"benchmarks\": [\n{bench_json}  ]\n}}\n",
        fabric.chunk_size
    );
    std::fs::write(&args.out, json).expect("write results");
    eprintln!("wrote {}", args.out);

    // Scaling is a property of the machine as much as the fabric: on a
    // single-core host the 4-worker fleet time-slices one CPU and no
    // speedup is physically possible, so the expectation only binds where
    // the hardware can express it.
    if cpus >= 4 {
        assert!(
            speedup_4 >= 1.6,
            "4-worker speedup {speedup_4:.2} below 1.6x on a {cpus}-CPU host"
        );
    } else {
        eprintln!("note: {cpus} CPU(s) available; speedup assertion requires >= 4");
    }
}
