//! Throughput microbench for the dense training kernels, plus the
//! thread-count bit-identity check that guards the data-parallel trainer.
//!
//! Measures GFLOP/s for each `glaive-nn` matrix kernel (`matmul`,
//! `transpose_matmul`, `matmul_transpose`, and the fused `matmul_concat`)
//! over training-representative shapes, trains a small multi-graph task at
//! 1/2/4/8 threads and byte-compares the resulting models, and — unless
//! `--smoke` — runs the standard evaluation to record the wall-clock
//! training time of the full 12-split round-robin.
//!
//! Output is a JSON record (`--out <path>`, else stdout):
//!
//! ```json
//! {
//!   "kernels": [{"kernel": "matmul", "m": 3160, "k": 298, "n": 16,
//!                "gflops": 3.1}, ...],
//!   "threads_checked": [1, 2, 4, 8],
//!   "identical": true,
//!   "train_s": 4.2
//! }
//! ```
//!
//! `--smoke` shrinks shapes and budgets and skips the evaluation run, for
//! CI gates; `--quick`/`GLAIVE_QUICK` and `--no-cache`/`GLAIVE_NO_CACHE`
//! select the evaluation configuration as in every experiment binary.
//! A committed snapshot lives in `BENCH_8.json` at the repo root.

use std::fmt::Write as _;
use std::time::Duration;

use glaive::telemetry::Stage;
use glaive_bench::timing::{bench, Settings};
use glaive_gnn::{GraphSage, SageConfig, TrainGraph};
use glaive_graph::{CsrGraph, EdgeKind};
use glaive_nn::{DetRng, Matrix};

/// One measured kernel invocation.
struct KernelRun {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    gflops: f64,
}

fn random_matrix(rng: &mut DetRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0))
}

/// Benchmarks all four kernels at `m x k x n`, appending to `runs`.
fn bench_shape(runs: &mut Vec<KernelRun>, settings: Settings, m: usize, k: usize, n: usize) {
    let mut rng = DetRng::new(0x6b65726e);
    let a = random_matrix(&mut rng, m, k);
    let b = random_matrix(&mut rng, k, n);
    let bt = random_matrix(&mut rng, n, k);
    let c = random_matrix(&mut rng, m, n);
    let half = k / 2;
    let (al, ar) = (
        random_matrix(&mut rng, m, half),
        random_matrix(&mut rng, m, k - half),
    );
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let mut record = |kernel, min_s: f64| {
        runs.push(KernelRun {
            kernel,
            m,
            k,
            n,
            gflops: flops / min_s.max(1e-12) / 1e9,
        });
    };
    let mm = bench("matmul", settings, || {
        std::hint::black_box(a.matmul(&b));
    });
    record("matmul", mm.min_s);
    let tmm = bench("transpose_matmul", settings, || {
        std::hint::black_box(a.transpose_matmul(&c));
    });
    record("transpose_matmul", tmm.min_s);
    let mmt = bench("matmul_transpose", settings, || {
        std::hint::black_box(a.matmul_transpose(&bt));
    });
    record("matmul_transpose", mmt.min_s);
    let fused = bench("matmul_concat", settings, || {
        std::hint::black_box(al.matmul_concat(&ar, &b));
    });
    record("matmul_concat", fused.min_s);
}

/// Builds a small synthetic labelled graph (mirrors the trainer's own
/// determinism tests) for the thread-identity check.
fn synthetic_task(seed: u64) -> (Matrix, CsrGraph, Vec<usize>, Vec<bool>) {
    let n = 40usize;
    let mut rng = DetRng::new(seed);
    let feats = Matrix::from_fn(n, 5, |_, _| rng.uniform(-1.0, 1.0));
    let mut edges = Vec::new();
    for v in 1..n {
        let mut preds: Vec<u32> = (0..1 + rng.next_below(7.min(v)))
            .map(|_| rng.next_below(v) as u32)
            .collect();
        preds.sort_unstable();
        preds.dedup();
        edges.extend(preds.into_iter().map(|p| (v as u32, p, EdgeKind::Data)));
    }
    let graph = CsrGraph::from_edges(n, edges);
    let labels = (0..n).map(|v| v % 2).collect();
    let mask = (0..n).map(|v| v % 4 != 0).collect();
    (feats, graph, labels, mask)
}

/// Trains a 4-graph task at each thread count and returns whether every
/// run produced byte-identical weights and bit-identical losses.
fn threads_identical(counts: &[usize]) -> bool {
    let tasks: Vec<_> = (0..4u64).map(|s| synthetic_task(97 + s)).collect();
    let graphs: Vec<TrainGraph<'_>> = tasks
        .iter()
        .map(|(f, g, l, m)| TrainGraph {
            features: f,
            graph: g,
            labels: l,
            mask: m,
        })
        .collect();
    let config = SageConfig {
        hidden: 8,
        layers: 2,
        classes: 2,
        sample_size: 4,
        lr: 0.02,
        epochs: 6,
        seed: 13,
    };
    let mut reference: Option<(Vec<u32>, Vec<u8>)> = None;
    for &threads in counts {
        let mut model = GraphSage::try_new(5, &config).expect("valid model config");
        let stats = model.train_with_threads(&graphs, threads);
        let losses: Vec<u32> = stats.epoch_losses.iter().map(|l| l.to_bits()).collect();
        let bytes = model.to_bytes();
        match &reference {
            None => reference = Some((losses, bytes)),
            Some((want_losses, want_bytes)) => {
                if &losses != want_losses || &bytes != want_bytes {
                    return false;
                }
            }
        }
    }
    true
}

fn to_json(runs: &[KernelRun], counts: &[usize], identical: bool, train_s: Option<f64>) -> String {
    let mut out = String::from("{\n  \"kernels\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"gflops\": {:.3}}}{comma}",
            r.kernel, r.m, r.k, r.n, r.gflops
        )
        .unwrap();
    }
    out.push_str("  ],\n");
    let list: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    writeln!(out, "  \"threads_checked\": [{}],", list.join(", ")).unwrap();
    write!(out, "  \"identical\": {identical}").unwrap();
    if let Some(s) = train_s {
        write!(out, ",\n  \"train_s\": {s:.3}").unwrap();
    }
    out.push_str("\n}\n");
    out
}

fn main() -> std::process::ExitCode {
    glaive_bench::run_experiment(|| {
        let args: Vec<String> = std::env::args().collect();
        let smoke = args.iter().any(|a| a == "--smoke");
        let out_path = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned());

        // Training-representative shapes: the GNN forward/backward on the
        // largest quick-mode graph (n=3160, concat dim 2*149, hidden 16),
        // the MLP on the stacked bit dataset (8252x149, hidden 24), a
        // larger batch at hidden 64, and a square reference point.
        let shapes: &[(usize, usize, usize)] = if smoke {
            &[(64, 37, 8), (33, 17, 5)]
        } else {
            &[
                (3160, 298, 16),
                (8252, 149, 24),
                (15000, 294, 64),
                (512, 512, 512),
            ]
        };
        let settings = if smoke {
            Settings {
                budget: Duration::from_millis(40),
                max_iters: 3,
            }
        } else {
            Settings {
                budget: Duration::from_millis(600),
                max_iters: 200,
            }
        };
        let mut runs = Vec::new();
        for &(m, k, n) in shapes {
            eprintln!("benchmarking {m}x{k}x{n}...");
            bench_shape(&mut runs, settings, m, k, n);
        }

        let counts = [1usize, 2, 4, 8];
        eprintln!("checking thread-count bit-identity at {counts:?}...");
        let identical = threads_identical(&counts);

        let train_s = if smoke {
            None
        } else {
            eprintln!("timing round-robin training...");
            let (_eval, _config, recorder) = glaive_bench::standard_evaluation_timed()?;
            Some(recorder.stage_total(Stage::Training).as_secs_f64())
        };

        let json = to_json(&runs, &counts, identical, train_s);
        match out_path {
            Some(path) => {
                std::fs::write(&path, &json)
                    .map_err(|e| glaive::Error::Cache(format!("writing {path}: {e}")))?;
                eprintln!("wrote {path}");
            }
            None => print!("{json}"),
        }
        if identical {
            Ok(())
        } else {
            Err(glaive::Error::Cache(
                "thread-count identity check failed".into(),
            ))
        }
    })
}
