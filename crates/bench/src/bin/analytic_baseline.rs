//! Extension experiment: the Trident/CIAP-style analytical model (paper
//! §I, §VI — "analytical models are inaccurate") evaluated with the same
//! metrics as the learned estimators.
//!
//! The analytical model needs no fault injections and no training, so it is
//! essentially free — this binary quantifies what that costs in accuracy:
//! compare its program-vulnerability error and top-K coverage against the
//! GLAIVE/MLP/RF/SVM columns printed by `fig5a_pv_error` / `fig4_coverage`.

use glaive::analytic::AnalyticModel;
use glaive::experiments::paper_budgets;
use glaive::metrics;

fn main() -> std::process::ExitCode {
    glaive_bench::run_experiment(|| {
        let (suite, _) = glaive_bench::standard_suite()?;
        let ks = paper_budgets();
        println!("# Analytical-model baseline (no FI, no training)");
        println!("benchmark\tcategory\tpv_error\tmean_topK_coverage");
        let mut pve_sum = 0.0;
        let mut cov_sum = 0.0;
        for d in &suite {
            let model = AnalyticModel::for_bench(d);
            let pve = metrics::program_vulnerability_error(model.tuples(), d);
            let cov: f64 = ks
                .iter()
                .map(|&k| metrics::top_k_coverage(model.tuples(), d, k))
                .sum::<f64>()
                / ks.len() as f64;
            println!(
                "{}\t{}\t{:.3}\t{:.3}",
                d.bench.name,
                d.bench.category.tag(),
                pve,
                cov
            );
            pve_sum += pve;
            cov_sum += cov;
        }
        println!(
            "# averages: pv_error={:.3} coverage={:.3} (compare with fig5a/fig4 outputs)",
            pve_sum / suite.len() as f64,
            cov_sum / suite.len() as f64
        );

        Ok(())
    })
}
