//! Ablation studies for the design decisions called out in DESIGN.md §5:
//!
//! 1. **Aggregator** — predecessor-only MEAN (paper Eq. 2) vs vanilla
//!    all-neighbour GraphSAGE (Eq. 1): the paper's core model change.
//! 2. **Bit-level vs word-level** — the paper's central empirical claim:
//!    `bit_stride = 64` collapses each operand to a single node, removing
//!    the bit-position signal.
//! 3. **Neighbour sample size** — the paper fixes 50; the sweep shows the
//!    sensitivity.
//!
//! Run on the data-sensitive category (where the paper's deltas are
//! largest) to keep runtime manageable.

use glaive::experiments::Evaluation;
use glaive::metrics::bit_accuracy;
use glaive::{prepare_suite, BenchData, Error, Method, PipelineConfig};
use glaive_bench::EXPERIMENT_SEED;
use glaive_bench_suite::Category;

fn data_suite(config: &PipelineConfig) -> Vec<BenchData> {
    prepare_suite(EXPERIMENT_SEED, config)
        .into_iter()
        .filter(|d| d.bench.category == Category::Data)
        .collect()
}

fn mean_accuracy(eval: &Evaluation, vanilla: bool) -> Result<f64, Error> {
    let suite = eval.suite();
    let mut sum = 0.0;
    for d in suite {
        let models = eval.models_for(d.bench.name)?;
        let preds = if vanilla {
            models.vanilla_bit_predictions(d).expect("vanilla trained")
        } else {
            models.bit_predictions(Method::Glaive, d)?
        };
        sum += bit_accuracy(&preds, d);
    }
    Ok(sum / suite.len() as f64)
}

fn main() -> std::process::ExitCode {
    glaive_bench::run_experiment(|| {
        let base = glaive_bench::experiment_config();

        // 1. Aggregator ablation.
        eprintln!("[1/3] aggregator ablation (predecessor vs all-neighbour)...");
        let mut config = base;
        config.train_vanilla = true;
        let eval = Evaluation::new(data_suite(&config), &config)?;
        println!("# Ablation 1: aggregation direction (data-sensitive mean accuracy)");
        println!("predecessor_mean\t{:.4}", mean_accuracy(&eval, false)?);
        println!("all_neighbour_mean\t{:.4}", mean_accuracy(&eval, true)?);

        // 2. Bit-level vs word-level representations, scored against the SAME
        //    FI ground truth (campaign stride stays at the base setting; only
        //    the graph the models see is coarsened to one node per operand).
        eprintln!("[2/3] bit-level vs word-level graphs...");
        println!("# Ablation 2: graph granularity (data-sensitive mean GLAIVE PV error / mean top-K coverage)");
        for graph_stride in [base.bit_stride, 64] {
            let suite: Vec<BenchData> = glaive::prepare_suite(EXPERIMENT_SEED, &base)
                .into_iter()
                .filter(|d| d.bench.category == Category::Data)
                .map(|d| glaive::prepare_benchmark_with_graph_stride(d.bench, &base, graph_stride))
                .collect();
            let eval = Evaluation::new(suite, &base)?;
            let n = eval.suite().len() as f64;
            let pve: f64 = eval
                .pv_error_rows()
                .iter()
                .map(|r| r.errors[0])
                .sum::<f64>()
                / n;
            let ks = glaive::experiments::paper_budgets();
            let cov: f64 = eval
                .coverage_curves(&ks)
                .iter()
                .filter(|c| c.method == Method::Glaive)
                .map(|c| c.mean_coverage())
                .sum::<f64>()
                / n;
            let label = if graph_stride == 64 {
                "word-level"
            } else {
                "bit-level"
            };
            println!("{label}(graph_stride={graph_stride})\t{pve:.4}\t{cov:.4}");
        }

        // 3. Neighbour sample size.
        eprintln!("[3/3] neighbour sample size sweep...");
        println!("# Ablation 3: neighbour sample size (data-sensitive mean accuracy)");
        for sample in [5usize, 15, 50] {
            let mut config = base;
            config.sage.sample_size = sample;
            let eval = Evaluation::new(data_suite(&config), &config)?;
            println!("sample={sample}\t{:.4}", mean_accuracy(&eval, false)?);
        }

        Ok(())
    })
}
