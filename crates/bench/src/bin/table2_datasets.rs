//! Table II — experimental benchmarks with dataset split: bit-level (BL)
//! and instruction-level (IL) datapoint counts per benchmark, with category
//! and train-test/validation membership.
//!
//! Absolute counts are smaller than the paper's (inputs are scaled down and
//! bit positions subsampled; see DESIGN.md §1) — the composition (6 control
//! + 6 data, one validation program per category) matches Table II exactly.

use glaive_bench_suite::Split;

fn main() -> std::process::ExitCode {
    glaive_bench::run_experiment(|| {
        let (suite, config) = glaive_bench::standard_suite()?;
        println!(
            "# Table II: datasets (bit stride {}, {} instances/site)",
            config.bit_stride, config.instances_per_site
        );
        println!("benchmark\tcategory\tsplit\tBL\tIL\tstatic_instrs\tdyn_instrs");
        for d in &suite {
            println!(
                "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                d.bench.name,
                d.bench.category.tag(),
                match d.bench.split {
                    Split::TrainTest => "TT",
                    Split::Validation => "V",
                },
                d.bit_datapoints(),
                d.instr_datapoints(),
                d.bench.program().len(),
                d.truth.golden().dyn_instrs,
            );
        }
        let bl: usize = suite.iter().map(|d| d.bit_datapoints()).sum();
        let il: usize = suite.iter().map(|d| d.instr_datapoints()).sum();
        println!("# totals: BL={bl} IL={il}");

        Ok(())
    })
}
