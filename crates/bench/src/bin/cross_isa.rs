//! Cross-ISA transfer experiment (`BENCH_6.json`).
//!
//! Trains a GLAIVE GraphSAGE on the ISA-A train/test benchmarks, then
//! scores the ISA-B kernel suite — programs of a different machine, with a
//! different encoding, register discipline and branch vocabulary — using
//! nothing but the shared portable CDFG feature space. Each ISA-B kernel
//! also gets its own exhaustive-ish FI campaign as ground truth, and the
//! experiment reports how well the *transferred* model ranks ISA-B
//! instructions: Spearman ρ between predicted and FI instruction
//! vulnerability, plus top-10%/top-20% overlap of the protection sets.
//!
//! This goes beyond the paper's unseen-*program* transfer (Table III's
//! validation column) to unseen-*machine* transfer; there is no paper
//! number to match, so the JSON records the measurement rather than
//! asserting a threshold — only sanity floors (finite metrics, non-empty
//! campaigns) are enforced.
//!
//! Flags: `--out PATH` (default `BENCH_6.json`), `--quick` (or
//! `GLAIVE_QUICK=1`) for a subsampled smoke run.

use std::fmt::Write as _;

use glaive::metrics::{spearman, top_k_overlap};
use glaive::{aggregate_bit_probs, train_models, PipelineConfig};
use glaive_bench::EXPERIMENT_SEED;
use glaive_bench_suite::{rv_suite, RvKernel, Split};
use glaive_cdfg::{Cdfg, FEATURE_DIM};
use glaive_faultsim::Campaign;
use glaive_nn::Matrix;

struct Args {
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_6.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--quick" => {}
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

struct KernelRow {
    name: &'static str,
    instrs: usize,
    covered: usize,
    injections: usize,
    spearman: f64,
    top10: f64,
    top20: f64,
}

/// Scores one ISA-B kernel with the ISA-A-trained model against its own FI
/// ground truth, over the instructions the campaign covered.
fn evaluate_kernel(
    kernel: &RvKernel,
    model: &glaive_gnn::GraphSage,
    config: &PipelineConfig,
) -> KernelRow {
    let truth = Campaign::try_new(&kernel.program, &kernel.init_mem, config.campaign())
        .expect("experiment campaign config is validated")
        .run();
    let fi = truth
        .try_instruction_vulnerability()
        .expect("campaign produced records");

    let cdfg = Cdfg::build(&kernel.program, &config.cdfg());
    let features = Matrix::from_vec(cdfg.node_count(), FEATURE_DIM, cdfg.feature_matrix());
    let probs = model.predict_proba(&features, cdfg.preds_csr());
    let predicted = aggregate_bit_probs(&cdfg, kernel.program.len(), &probs);

    // Pair up scores over FI-covered instructions the model also scored
    // (operand-less instructions have no graph nodes on either side).
    let mut truth_scores = Vec::with_capacity(fi.len());
    let mut pred_scores = Vec::with_capacity(fi.len());
    for iv in &fi {
        if let Some(Some(p)) = predicted.get(iv.pc) {
            truth_scores.push(iv.tuple.ranking_key());
            pred_scores.push(p.ranking_key());
        }
    }
    let n = truth_scores.len();
    let k10 = (n as f64 * 0.10).ceil() as usize;
    let k20 = (n as f64 * 0.20).ceil() as usize;
    KernelRow {
        name: kernel.name,
        instrs: kernel.program.len(),
        covered: n,
        injections: truth.total_injections(),
        spearman: spearman(&truth_scores, &pred_scores),
        top10: top_k_overlap(&truth_scores, &pred_scores, k10),
        top20: top_k_overlap(&truth_scores, &pred_scores, k20),
    }
}

fn main() {
    let args = parse_args();
    let config = glaive_bench::experiment_config();

    eprintln!(
        "preparing ISA-A suite (seed {EXPERIMENT_SEED}, bit stride {}, {} instances/site)...",
        config.bit_stride, config.instances_per_site
    );
    let suite = glaive::prepare_suite(EXPERIMENT_SEED, &config);
    let train: Vec<_> = suite
        .iter()
        .filter(|d| d.bench.split == Split::TrainTest)
        .collect();
    eprintln!("training GLAIVE on {} ISA-A benchmarks...", train.len());
    let models = train_models(&train, &config);
    let model = models.glaive_model();

    let kernels = rv_suite(EXPERIMENT_SEED);
    let mut rows = Vec::new();
    for k in &kernels {
        eprintln!("{}: ISA-B campaign + transfer scoring...", k.name);
        let row = evaluate_kernel(k, model, &config);
        assert!(row.covered > 0, "{}: campaign covered nothing", row.name);
        assert!(
            row.spearman.is_finite() && row.top10.is_finite() && row.top20.is_finite(),
            "{}: non-finite ranking metrics",
            row.name
        );
        rows.push(row);
    }

    let n = rows.len() as f64;
    let mean_rho: f64 = rows.iter().map(|r| r.spearman).sum::<f64>() / n;
    let mean_top10: f64 = rows.iter().map(|r| r.top10).sum::<f64>() / n;
    let mean_top20: f64 = rows.iter().map(|r| r.top20).sum::<f64>() / n;

    println!("kernel\tinstrs\tcovered\tinjections\tspearman\ttop10\ttop20");
    for r in &rows {
        println!(
            "{}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}",
            r.name, r.instrs, r.covered, r.injections, r.spearman, r.top10, r.top20
        );
    }
    println!("mean\t-\t-\t-\t{mean_rho:.3}\t{mean_top10:.3}\t{mean_top20:.3}");

    let mut kernel_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            kernel_json,
            "    {{\"name\": \"{}\", \"instrs\": {}, \"covered\": {}, \"injections\": {}, \
             \"spearman\": {:.6}, \"top10_overlap\": {:.6}, \"top20_overlap\": {:.6}}}{sep}",
            r.name, r.instrs, r.covered, r.injections, r.spearman, r.top10, r.top20
        )
        .expect("write to string");
    }
    let json = format!(
        "{{\n  \"train_isa\": \"glaive\",\n  \"eval_isa\": \"rv\",\n  \"seed\": {EXPERIMENT_SEED},\n  \
         \"bit_stride\": {},\n  \"instances_per_site\": {},\n  \
         \"mean_spearman\": {mean_rho:.6},\n  \"mean_top10_overlap\": {mean_top10:.6},\n  \
         \"mean_top20_overlap\": {mean_top20:.6},\n  \"kernels\": [\n{kernel_json}  ]\n}}\n",
        config.bit_stride, config.instances_per_site
    );
    std::fs::write(&args.out, json).expect("write results");
    eprintln!("wrote {}", args.out);
}
