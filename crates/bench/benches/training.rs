//! Timing bench: GNN training cost per epoch — the one-off cost GLAIVE
//! pays to amortise FI campaigns across programs (§V-D discussion).

use glaive::{prepare_benchmark, PipelineConfig};
use glaive_bench::timing::{bench, report, Settings};
use glaive_gnn::{GraphSage, SageConfig, TrainGraph};

fn main() {
    let config = PipelineConfig::quick_test();
    let data = prepare_benchmark(glaive_bench_suite::control::dijkstra::build(7), &config);
    let graph = TrainGraph {
        features: &data.features,
        graph: &data.preds,
        labels: &data.labels,
        mask: &data.mask,
    };
    let sage = SageConfig {
        epochs: 1,
        ..config.sage
    };

    let results = vec![bench("graphsage_epoch_dijkstra", Settings::heavy(), || {
        let mut model =
            GraphSage::try_new(glaive_cdfg::FEATURE_DIM, &sage).expect("valid model config");
        std::hint::black_box(model.train(&[graph]).final_loss());
    })];
    report(&results);
}
