//! Criterion bench: per-method estimation cost (the ML side of Fig. 5b).
//! Models are trained once in setup; the measured region is inference over
//! an unseen benchmark — GLAIVE is expected to be slower than MLP-BIT and
//! the instruction-level regressors, but orders of magnitude faster than
//! the FI campaign measured in `fi_campaign.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use glaive::{prepare_benchmark, train_models, Method, PipelineConfig};

fn inference(c: &mut Criterion) {
    let config = PipelineConfig::quick_test();
    let train = prepare_benchmark(glaive_bench_suite::data::fft::build(7), &config);
    let test = prepare_benchmark(glaive_bench_suite::data::radix::build(7), &config);
    let models = train_models(&[&train], &config);

    let mut group = c.benchmark_group("inference_radix");
    for method in Method::ALL {
        group.bench_function(method.name(), |b| {
            b.iter(|| std::hint::black_box(models.estimate(method, &test)))
        });
    }
    group.finish();
}

criterion_group!(benches, inference);
criterion_main!(benches);
