//! Timing bench: per-method estimation cost (the ML side of Fig. 5b).
//! Models are trained once in setup; the measured region is inference over
//! an unseen benchmark — GLAIVE is expected to be slower than MLP-BIT and
//! the instruction-level regressors, but orders of magnitude faster than
//! the FI campaign measured in `fi_campaign.rs`.

use glaive::{prepare_benchmark, train_models, Method, PipelineConfig};
use glaive_bench::timing::{bench, report, Settings};

fn main() {
    let config = PipelineConfig::quick_test();
    let train = prepare_benchmark(glaive_bench_suite::data::fft::build(7), &config);
    let test = prepare_benchmark(glaive_bench_suite::data::radix::build(7), &config);
    let models = train_models(&[&train], &config);

    let mut results = Vec::new();
    for method in Method::ALL {
        results.push(bench(
            &format!("inference_radix/{}", method.name()),
            Settings::default(),
            || {
                std::hint::black_box(models.estimate(method, &test));
            },
        ));
    }
    report(&results);
}
