//! Timing bench: the fault-injection baseline of Fig. 5b — wall-clock
//! cost of a full bit-level FI campaign per benchmark. Compare against
//! `inference.rs` to obtain the speedup the paper reports.

use glaive_bench::timing::{bench, report, Settings};
use glaive_faultsim::{Campaign, CampaignConfig};

fn main() {
    let mut results = Vec::new();
    for bench_prog in [
        glaive_bench_suite::control::dijkstra::build(7),
        glaive_bench_suite::data::radix::build(7),
        glaive_bench_suite::data::swaptions::build(7),
    ] {
        let config = CampaignConfig {
            bit_stride: 8,
            instances_per_site: 2,
            ..CampaignConfig::default()
        };
        results.push(bench(
            &format!("fi_campaign/{}", bench_prog.name),
            Settings::heavy(),
            || {
                let truth = Campaign::try_new(bench_prog.program(), &bench_prog.init_mem, config)
                    .expect("valid config")
                    .run();
                std::hint::black_box(truth.total_injections());
            },
        ));
    }
    report(&results);
}
