//! Criterion bench: the fault-injection baseline of Fig. 5b — wall-clock
//! cost of a full bit-level FI campaign per benchmark. Compare against
//! `inference.rs` to obtain the speedup the paper reports.

use criterion::{criterion_group, criterion_main, Criterion};
use glaive_faultsim::{Campaign, CampaignConfig};

fn fi_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("fi_campaign");
    group.sample_size(10);
    for bench in [
        glaive_bench_suite::control::dijkstra::build(7),
        glaive_bench_suite::data::radix::build(7),
        glaive_bench_suite::data::swaptions::build(7),
    ] {
        let config = CampaignConfig {
            bit_stride: 8,
            instances_per_site: 2,
            ..CampaignConfig::default()
        };
        group.bench_function(bench.name, |b| {
            b.iter(|| {
                let truth = Campaign::new(bench.program(), &bench.init_mem, config).run();
                std::hint::black_box(truth.total_injections())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fi_campaign);
criterion_main!(benches);
