//! Timing bench: pipeline component costs — golden simulation, bit-level
//! CDFG construction (Fig. 3's graph extraction), and Table-I feature
//! matrix extraction.

use glaive_bench::timing::{bench, report, Settings};
use glaive_cdfg::{Cdfg, CdfgConfig};
use glaive_sim::{run, ExecConfig};

fn main() {
    let bench_prog = glaive_bench_suite::control::dijkstra::build(7);
    let cfg = CdfgConfig { bit_stride: 8 };

    let mut results = Vec::new();
    results.push(bench("golden_run_dijkstra", Settings::default(), || {
        std::hint::black_box(run(
            bench_prog.program(),
            &bench_prog.init_mem,
            &ExecConfig::default(),
        ));
    }));
    results.push(bench("cdfg_build_dijkstra", Settings::default(), || {
        std::hint::black_box(Cdfg::build(bench_prog.program(), &cfg));
    }));
    let graph = Cdfg::build(bench_prog.program(), &cfg);
    results.push(bench(
        "feature_matrix_dijkstra",
        Settings::default(),
        || {
            std::hint::black_box(graph.feature_matrix());
        },
    ));
    report(&results);
}
