//! Criterion bench: pipeline component costs — golden simulation, bit-level
//! CDFG construction (Fig. 3's graph extraction), and Table-I feature
//! matrix extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use glaive_cdfg::{Cdfg, CdfgConfig};
use glaive_sim::{run, ExecConfig};

fn pipeline(c: &mut Criterion) {
    let bench = glaive_bench_suite::control::dijkstra::build(7);
    let cfg = CdfgConfig { bit_stride: 8 };

    c.bench_function("golden_run_dijkstra", |b| {
        b.iter(|| {
            std::hint::black_box(run(
                bench.program(),
                &bench.init_mem,
                &ExecConfig::default(),
            ))
        })
    });
    c.bench_function("cdfg_build_dijkstra", |b| {
        b.iter(|| std::hint::black_box(Cdfg::build(bench.program(), &cfg)))
    });
    let graph = Cdfg::build(bench.program(), &cfg);
    c.bench_function("feature_matrix_dijkstra", |b| {
        b.iter(|| std::hint::black_box(graph.feature_matrix()))
    });
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
