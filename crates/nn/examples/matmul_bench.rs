//! Developer utility: micro-benchmarks the three matmul kernels at the
//! shapes GraphSAGE training actually uses.
//!
//! Run with: `cargo run -p glaive-nn --release --example matmul_bench`

use glaive_nn::Matrix;
use std::time::Instant;

fn main() {
    println!("threads: {:?}", std::thread::available_parallelism());
    // Layer-1 shape from a real training: z = 15k x 294 (half sparse), w = 294 x 64.
    let n = 15000;
    let d = 294;
    let h = 64;
    let z = Matrix::from_fn(n, d, |r, c| {
        if c < d / 2 {
            if (r * 7 + c) % 25 == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            ((r + c) % 13) as f32 / 13.0
        }
    });
    let w = Matrix::from_fn(d, h, |r, c| ((r * 3 + c) % 7) as f32 / 7.0 - 0.5);
    let t = Instant::now();
    for _ in 0..10 {
        std::hint::black_box(z.matmul(&w));
    }
    println!("matmul x10: {:.3}s", t.elapsed().as_secs_f64());

    let dy = Matrix::from_fn(n, h, |r, c| ((r + 2 * c) % 9) as f32 / 9.0);
    let t = Instant::now();
    for _ in 0..10 {
        std::hint::black_box(z.transpose_matmul(&dy));
    }
    println!("transpose_matmul x10: {:.3}s", t.elapsed().as_secs_f64());

    let t = Instant::now();
    for _ in 0..10 {
        std::hint::black_box(dy.matmul_transpose(&w));
    }
    println!("matmul_transpose x10: {:.3}s", t.elapsed().as_secs_f64());
}
