/// Adam optimizer with externally owned parameters.
///
/// One `Adam` instance holds first/second-moment state for a fixed number of
/// parameters; layers update disjoint slices of that state via
/// [`Adam::step_slice`] using their parameter offset, then call
/// [`Adam::advance`] once per optimisation step.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: i32,
}

impl Adam {
    /// Creates an optimizer with the paper's defaults (`β₁ = 0.9`,
    /// `β₂ = 0.999`) for `param_count` parameters.
    pub fn new(lr: f32, param_count: usize) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; param_count],
            v: vec![0.0; param_count],
            t: 1,
        }
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates `params` in place from `grads`, using optimizer state
    /// starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the slice extends beyond the optimizer's state.
    pub fn step_slice(&mut self, params: &mut [f32], grads: &[f32], offset: usize) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        assert!(
            offset + params.len() <= self.m.len(),
            "optimizer state too small"
        );
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (i, (p, &g)) in params.iter_mut().zip(grads).enumerate() {
            let k = offset + i;
            self.m[k] = self.beta1 * self.m[k] + (1.0 - self.beta1) * g;
            self.v[k] = self.beta2 * self.v[k] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[k] / bc1;
            let vhat = self.v[k] / bc2;
            *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Advances the shared timestep; call once after all slices of one
    /// optimisation step have been updated.
    pub fn advance(&mut self) {
        self.t += 1;
    }
}

/// Plain stochastic gradient descent (used by the SVR baseline).
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates `params -= lr · grads` in place.
    pub fn step(&self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        for (p, g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adam minimises a simple quadratic.
    #[test]
    fn adam_minimises_quadratic() {
        let mut opt = Adam::new(0.1, 2);
        let mut params = vec![3.0f32, -2.0];
        for _ in 0..300 {
            // f = (p0 - 1)^2 + (p1 + 1)^2
            let grads = vec![2.0 * (params[0] - 1.0), 2.0 * (params[1] + 1.0)];
            opt.step_slice(&mut params, &grads, 0);
            opt.advance();
        }
        assert!((params[0] - 1.0).abs() < 1e-2, "p0 = {}", params[0]);
        assert!((params[1] + 1.0).abs() < 1e-2, "p1 = {}", params[1]);
    }

    /// Disjoint slices behave like one big parameter vector.
    #[test]
    fn slice_offsets_are_independent() {
        let mut whole = Adam::new(0.05, 4);
        let mut sliced = Adam::new(0.05, 4);
        let mut pw = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut ps = pw.clone();
        let g = vec![0.5f32, -0.25, 1.0, -1.0];
        for _ in 0..10 {
            whole.step_slice(&mut pw, &g, 0);
            whole.advance();
            sliced.step_slice(&mut ps[..2], &g[..2], 0);
            sliced.step_slice(&mut ps[2..], &g[2..], 2);
            sliced.advance();
        }
        assert_eq!(pw, ps);
    }

    #[test]
    fn sgd_step() {
        let opt = Sgd::new(0.5);
        let mut p = vec![1.0f32, -1.0];
        opt.step(&mut p, &[2.0, -2.0]);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "state too small")]
    fn oversized_slice_panics() {
        let mut opt = Adam::new(0.1, 2);
        let mut p = vec![0.0f32; 3];
        let g = vec![0.0f32; 3];
        opt.step_slice(&mut p, &g, 0);
    }
}
