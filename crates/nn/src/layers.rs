use crate::matrix::Matrix;
use crate::optim::Adam;
use crate::rng::DetRng;

/// A fully connected layer `y = x·W + b` with explicit backward pass.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
}

/// Gradients produced by [`Linear::backward`].
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// `∂L/∂W` (same shape as the weights).
    pub w: Matrix,
    /// `∂L/∂b`.
    pub b: Vec<f32>,
}

impl Linear {
    /// Glorot/Xavier-uniform initialised layer mapping `in_dim → out_dim`.
    pub fn glorot(in_dim: usize, out_dim: usize, rng: &mut DetRng) -> Linear {
        let limit = (6.0 / (in_dim + out_dim) as f32).sqrt();
        Linear {
            w: Matrix::from_fn(in_dim, out_dim, |_, _| rng.uniform(-limit, limit)),
            b: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Total number of trainable parameters (for optimizer state sizing).
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Reassembles a layer from its parts (used by model deserialisation).
    ///
    /// # Panics
    ///
    /// Panics if the bias length does not match the weight matrix width.
    pub fn from_parts(w: Matrix, b: Vec<f32>) -> Linear {
        assert_eq!(w.cols(), b.len(), "bias/weight width mismatch");
        Linear { w, b }
    }

    /// Forward pass `x·W + b`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, b) in row.iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        y
    }

    /// Backward pass: given the layer input `x` and `∂L/∂y`, returns
    /// `(∂L/∂x, gradients)`.
    pub fn backward(&self, x: &Matrix, grad_out: &Matrix) -> (Matrix, LinearGrads) {
        let grad_w = x.transpose_matmul(grad_out);
        let mut grad_b = vec![0.0f32; self.b.len()];
        for r in 0..grad_out.rows() {
            for (gb, g) in grad_b.iter_mut().zip(grad_out.row(r)) {
                *gb += g;
            }
        }
        let grad_x = grad_out.matmul_transpose(&self.w);
        (
            grad_x,
            LinearGrads {
                w: grad_w,
                b: grad_b,
            },
        )
    }

    /// Fused forward pass `[left ‖ right]·W + b` without materialising
    /// the concatenated input — bit-identical to
    /// `self.forward(&left.hconcat(right))`.
    pub fn forward_concat(&self, left: &Matrix, right: &Matrix) -> Matrix {
        let mut y = left.matmul_concat(right, &self.w);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, b) in row.iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        y
    }

    /// Parameter gradients of the fused concat forward — the
    /// [`Linear::backward_concat`] weight/bias terms without the input
    /// gradients, for layers whose inputs are not differentiated (the
    /// first GraphSAGE layer's raw features).
    pub fn grads_concat(&self, left: &Matrix, right: &Matrix, grad_out: &Matrix) -> LinearGrads {
        let grad_w = left.transpose_matmul_concat(right, grad_out);
        let mut grad_b = vec![0.0f32; self.b.len()];
        for r in 0..grad_out.rows() {
            for (gb, g) in grad_b.iter_mut().zip(grad_out.row(r)) {
                *gb += g;
            }
        }
        LinearGrads {
            w: grad_w,
            b: grad_b,
        }
    }

    /// Backward of the fused concat forward: returns the input gradients
    /// for each half plus the parameter gradients, bit-identical to
    /// running [`Linear::backward`] on the materialised concatenation and
    /// splitting `∂L/∂x` afterwards.
    pub fn backward_concat(
        &self,
        left: &Matrix,
        right: &Matrix,
        grad_out: &Matrix,
    ) -> (Matrix, Matrix, LinearGrads) {
        let grads = self.grads_concat(left, right, grad_out);
        let dl = left.cols();
        let grad_left = grad_out.matmul(&self.w.transpose_rows(0, dl));
        let grad_right = grad_out.matmul(&self.w.transpose_rows(dl, self.w.rows()));
        (grad_left, grad_right, grads)
    }

    /// Applies gradients through an optimizer whose state covers
    /// [`Linear::param_count`] parameters (weights first, then bias).
    pub fn apply(&mut self, opt: &mut Adam, grads: &LinearGrads) {
        let nw = self.w.rows() * self.w.cols();
        opt.step_slice(self.w.data_mut(), grads.w.data(), 0);
        opt.step_slice(&mut self.b, &grads.b, nw);
        opt.advance();
    }
}

/// Element-wise ReLU.
pub fn relu(x: &Matrix) -> Matrix {
    let mut y = x.clone();
    for v in y.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    y
}

/// Backward of ReLU: gradient masked by the sign of the pre-activation.
pub fn relu_backward(pre_activation: &Matrix, grad_out: &Matrix) -> Matrix {
    assert_eq!(pre_activation.rows(), grad_out.rows(), "shape mismatch");
    assert_eq!(pre_activation.cols(), grad_out.cols(), "shape mismatch");
    let mut g = grad_out.clone();
    for (gv, &pv) in g.data_mut().iter_mut().zip(pre_activation.data()) {
        if pv <= 0.0 {
            *gv = 0.0;
        }
    }
    g
}

/// Row-wise softmax.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut p = logits.clone();
    for r in 0..p.rows() {
        let row = p.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    p
}

/// Mean softmax cross-entropy over (optionally masked) rows.
///
/// `labels[r]` is the class index of row `r`; rows where `mask` is `false`
/// contribute neither loss nor gradient (used to skip unlabelled CDFG
/// nodes). Returns `(mean_loss, ∂L/∂logits)`.
///
/// # Panics
///
/// Panics if no row is active.
pub fn softmax_cross_entropy(
    logits: &Matrix,
    labels: &[usize],
    mask: Option<&[bool]>,
) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    if let Some(m) = mask {
        assert_eq!(m.len(), labels.len(), "one mask bit per row");
    }
    let active = mask.map_or(labels.len(), |m| m.iter().filter(|&&b| b).count());
    assert!(
        active > 0,
        "softmax cross entropy needs at least one active row"
    );
    let probs = softmax_rows(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for r in 0..logits.rows() {
        let on = mask.is_none_or(|m| m[r]);
        if !on {
            grad.row_mut(r).fill(0.0);
            continue;
        }
        let p = probs[(r, labels[r])].max(1e-12);
        loss -= p.ln();
        grad[(r, labels[r])] -= 1.0;
    }
    let scale = 1.0 / active as f32;
    grad.scale(scale);
    (loss * scale, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_backward() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let y = relu(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = relu_backward(&x, &Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let p = softmax_rows(&m);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p[(0, 2)] > p[(0, 1)]);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_vec(2, 2, vec![10.0, -10.0, -10.0, 10.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1], None);
        assert!(loss < 1e-3);
        assert!(grad.data().iter().all(|g| g.abs() < 1e-3));
    }

    #[test]
    fn masked_rows_contribute_nothing() {
        let logits = Matrix::from_vec(2, 2, vec![0.0, 0.0, 5.0, -5.0]);
        let (loss_all, _) = softmax_cross_entropy(&logits, &[0, 0], None);
        let (loss_masked, grad) = softmax_cross_entropy(&logits, &[0, 0], Some(&[true, false]));
        assert!(loss_masked > 0.0);
        assert_ne!(loss_all, loss_masked);
        assert_eq!(grad.row(1), &[0.0, 0.0]);
    }

    /// Numerical gradient check of the full linear + softmax-CE pipeline.
    #[test]
    fn linear_gradients_match_numerical() {
        let mut rng = DetRng::new(7);
        let layer = Linear::glorot(3, 2, &mut rng);
        let x = Matrix::from_fn(4, 3, |_, _| rng.uniform(-1.0, 1.0));
        let labels = vec![0usize, 1, 0, 1];

        let logits = layer.forward(&x);
        let (_, grad_logits) = softmax_cross_entropy(&logits, &labels, None);
        let (grad_x, grads) = layer.backward(&x, &grad_logits);

        let eps = 1e-3f32;
        // Check a handful of weight entries.
        for &(r, c) in &[(0usize, 0usize), (1, 1), (2, 0)] {
            let mut lp = layer.clone();
            lp.w[(r, c)] += eps;
            let (loss_p, _) = softmax_cross_entropy(&lp.forward(&x), &labels, None);
            let mut lm = layer.clone();
            lm.w[(r, c)] -= eps;
            let (loss_m, _) = softmax_cross_entropy(&lm.forward(&x), &labels, None);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            let analytic = grads.w[(r, c)];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "dW[{r},{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check an input entry.
        for &(r, c) in &[(0usize, 0usize), (3, 2)] {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let (loss_p, _) = softmax_cross_entropy(&layer.forward(&xp), &labels, None);
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            let (loss_m, _) = softmax_cross_entropy(&layer.forward(&xm), &labels, None);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            let analytic = grad_x[(r, c)];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "dX[{r},{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Bias gradient.
        let mut lp = layer.clone();
        lp.b[0] += eps;
        let (loss_p, _) = softmax_cross_entropy(&lp.forward(&x), &labels, None);
        let mut lm = layer.clone();
        lm.b[0] -= eps;
        let (loss_m, _) = softmax_cross_entropy(&lm.forward(&x), &labels, None);
        let numeric = (loss_p - loss_m) / (2.0 * eps);
        assert!((numeric - grads.b[0]).abs() < 1e-2);
    }

    /// The fused concat forward/backward is bit-identical to materialising
    /// the concatenation (forward, input gradients via `hsplit`, and
    /// parameter gradients alike).
    #[test]
    fn concat_paths_match_materialised_concat_bitwise() {
        let mut rng = DetRng::new(11);
        for &(n, dl, dr, h) in &[(5usize, 3usize, 4usize, 2usize), (1, 1, 7, 3), (8, 6, 1, 5)] {
            let layer = Linear::glorot(dl + dr, h, &mut rng);
            let left = Matrix::from_fn(n, dl, |_, _| rng.uniform(-1.0, 1.0));
            let right = Matrix::from_fn(n, dr, |_, _| rng.uniform(-1.0, 1.0));
            let grad_out = Matrix::from_fn(n, h, |_, _| rng.uniform(-1.0, 1.0));
            let z = left.hconcat(&right);

            let fused = layer.forward_concat(&left, &right);
            let unfused = layer.forward(&z);
            assert_eq!(fused.data(), unfused.data(), "forward {n}x[{dl}|{dr}]");
            for (a, b) in fused.data().iter().zip(unfused.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }

            let (dz, grads) = layer.backward(&z, &grad_out);
            let (want_l, want_r) = dz.hsplit(dl);
            let (got_l, got_r, got_grads) = layer.backward_concat(&left, &right, &grad_out);
            for (a, b) in got_l.data().iter().zip(want_l.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "d_left {n}x[{dl}|{dr}]");
            }
            for (a, b) in got_r.data().iter().zip(want_r.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "d_right {n}x[{dl}|{dr}]");
            }
            for (a, b) in got_grads.w.data().iter().zip(grads.w.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "dW {n}x[{dl}|{dr}]");
            }
            assert_eq!(got_grads.b, grads.b);

            let grads_only = layer.grads_concat(&left, &right, &grad_out);
            assert_eq!(grads_only.w.data(), got_grads.w.data());
            assert_eq!(grads_only.b, got_grads.b);
        }
    }

    #[test]
    #[should_panic(expected = "at least one active row")]
    fn all_masked_panics() {
        let logits = Matrix::zeros(1, 2);
        softmax_cross_entropy(&logits, &[0], Some(&[false]));
    }
}
