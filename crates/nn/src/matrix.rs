use std::fmt;
use std::ops::{Index, IndexMut};
use std::sync::OnceLock;

/// A dense row-major `f32` matrix.
///
/// The multiply kernels ([`Matrix::matmul`], [`Matrix::transpose_matmul`],
/// [`Matrix::matmul_transpose`] and the fused `*_concat` variants) are
/// cache-blocked and register-tiled but keep a **fixed accumulation order
/// per output element** — `k`-ascending for `matmul`, input-row-ascending
/// for `transpose_matmul` — so their results are bit-identical to the
/// straightforward scalar loops at any block size and any thread count
/// (see DESIGN.md §16).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Output rows sharing one streamed `b` row in the register-tiled kernels.
/// Grouping rows amortises the `b` traffic without touching the per-element
/// accumulation order, so it is a pure tuning constant.
const MR: usize = 4;

/// The `k`-panel length of the blocked kernels: `matmul` accumulates one
/// panel of `b` rows across all output rows before moving to the next, and
/// `transpose_matmul` processes its output in panels of this many rows.
/// Panels partition work without reordering any per-element accumulation,
/// so the value (env `GLAIVE_MATMUL_KC`, default 512) only affects speed.
fn k_block() -> usize {
    static KC: OnceLock<usize> = OnceLock::new();
    *KC.get_or_init(|| {
        std::env::var("GLAIVE_MATMUL_KC")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&v| v >= MR)
            .unwrap_or(512)
    })
}

/// Thread budget for the row-partitioned kernels: `GLAIVE_NN_THREADS` if
/// set (useful to exercise or pin the fan-out on any machine), otherwise
/// the available parallelism.
fn tuned_threads() -> usize {
    static T: OnceLock<usize> = OnceLock::new();
    *T.get_or_init(|| {
        std::env::var("GLAIVE_NN_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&v| v >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a generator `f(row, col)` in a single pass —
    /// each element is written exactly once, with no zero-fill prepass.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer — the inverse
    /// of [`Matrix::from_vec`], so callers that stage data into a matrix
    /// (e.g. a batched-inference workspace) can reclaim the allocation and
    /// reuse its capacity for the next batch.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (`n×d · d×h → n×h`).
    ///
    /// Each output element accumulates over ascending `k` regardless of
    /// blocking or threading, so the result is bit-identical to the naive
    /// `i k j` triple loop.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions differ");
        matmul_impl(self, None, other)
    }

    /// Fused `[self ‖ right] · other` without materialising the
    /// concatenation (`n×dₗ ‖ n×dᵣ · (dₗ+dᵣ)×h → n×h`).
    ///
    /// The virtual `k` dimension runs over `self`'s columns then `right`'s,
    /// the same order [`Matrix::hconcat`] lays them out in, so the result
    /// is bit-identical to `self.hconcat(right).matmul(other)`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ or the combined width does not
    /// match `other`'s row count.
    pub fn matmul_concat(&self, right: &Matrix, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, right.rows, "row counts differ");
        assert_eq!(
            self.cols + right.cols,
            other.rows,
            "inner dimensions differ"
        );
        matmul_impl(self, Some(right), other)
    }

    /// The transpose `selfᵀ` (`n×d → d×n`), built in a single pass.
    pub fn transpose(&self) -> Matrix {
        self.transpose_rows(0, self.rows)
    }

    /// The transpose of the row block `self[r0..r1]`
    /// (`(r1−r0)×d → d×(r1−r0)`) — lets a caller multiply against a
    /// contiguous slice of a weight matrix without copying the rest.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn transpose_rows(&self, r0: usize, r1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        let n = r1 - r0;
        let mut data = Vec::with_capacity(self.cols * n);
        for c in 0..self.cols {
            for r in r0..r1 {
                data.push(self.data[r * self.cols + c]);
            }
        }
        Matrix {
            rows: self.cols,
            cols: n,
            data,
        }
    }

    /// `selfᵀ · other` (`n×d ᵀ · n×h → d×h`), used for weight gradients.
    ///
    /// Output element `(k, j)` accumulates `self[i, k] · other[i, j]` over
    /// ascending `i` in every code path — panels split the *output* rows
    /// and the register tile adds its `MR` input rows sequentially — so
    /// blocked, serial and threaded runs are all bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts differ");
        let (d, h) = (self.cols, other.cols);
        let mut out = Matrix::zeros(d, h);
        if d == 0 || h == 0 || self.rows == 0 {
            return out;
        }
        parallel_row_chunks(d, h, self.rows, &mut out.data, |k0, chunk| {
            tmm_chunk(self, other, k0, chunk);
        });
        out
    }

    /// Fused `[self ‖ right]ᵀ · other` without materialising the
    /// concatenation: rows `0..dₗ` of the result are `selfᵀ·other`, rows
    /// `dₗ..` are `rightᵀ·other`, each accumulated in the same ascending
    /// input-row order as the unfused kernel — bit-identical to
    /// `self.hconcat(right).transpose_matmul(other)`.
    ///
    /// # Panics
    ///
    /// Panics if any row count differs from `other`'s.
    pub fn transpose_matmul_concat(&self, right: &Matrix, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts differ");
        assert_eq!(right.rows, other.rows, "row counts differ");
        let top = self.transpose_matmul(other);
        let bottom = right.transpose_matmul(other);
        let mut data = top.data;
        data.extend_from_slice(&bottom.data);
        Matrix {
            rows: self.cols + right.cols,
            cols: other.cols,
            data,
        }
    }

    /// `self · otherᵀ` (`n×h · d×h ᵀ → n×d`), used for input gradients.
    ///
    /// Implemented as `self · (otherᵀ)` through the k-ascending [`matmul`]
    /// kernel: each output element is a dot product accumulated in the same
    /// order either way, but the row-major kernel vectorises where a
    /// per-element scalar reduction cannot, and `other` (a weight matrix at
    /// every call site) is small next to the multiply itself.
    ///
    /// [`matmul`]: Matrix::matmul
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "column counts differ");
        self.matmul(&other.transpose())
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts differ");
        let mut data = Vec::with_capacity(self.rows * (self.cols + other.cols));
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix::from_vec(self.rows, self.cols + other.cols, data)
    }

    /// Splits `[left | right]` back into its halves (inverse of
    /// [`Matrix::hconcat`]).
    pub fn hsplit(&self, left_cols: usize) -> (Matrix, Matrix) {
        assert!(left_cols <= self.cols, "split point beyond width");
        let right_cols = self.cols - left_cols;
        let mut l = Vec::with_capacity(self.rows * left_cols);
        let mut r = Vec::with_capacity(self.rows * right_cols);
        for i in 0..self.rows {
            let row = self.row(i);
            l.extend_from_slice(&row[..left_cols]);
            r.extend_from_slice(&row[left_cols..]);
        }
        (
            Matrix::from_vec(self.rows, left_cols, l),
            Matrix::from_vec(self.rows, right_cols, r),
        )
    }

    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise scaling.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Index of the maximum entry in each row (first index on ties).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }
}

/// Whether a row-partitioned kernel is worth fanning out over threads —
/// exposed to the kernels so they can pick a different serial strategy
/// when the answer is no.
fn should_parallelise(rows: usize, cols: usize, inner: usize) -> bool {
    const PARALLEL_THRESHOLD: usize = 1 << 22;
    let work = rows.saturating_mul(cols).saturating_mul(inner.max(1));
    work >= PARALLEL_THRESHOLD && tuned_threads() > 1 && rows >= 2
}

/// Runs `f(first_row, chunk)` over contiguous row blocks of `out`, fanning
/// out over scoped threads when the work is large enough to amortise
/// spawning. Each output row is owned by exactly one invocation and every
/// kernel accumulates with a chunk-independent per-element order, so the
/// results are bit-identical for any thread count (including one).
fn parallel_row_chunks(
    rows: usize,
    cols: usize,
    inner: usize,
    out: &mut [f32],
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if !should_parallelise(rows, cols, inner) {
        f(0, out);
        return;
    }
    let per = rows.div_ceil(tuned_threads());
    std::thread::scope(|scope| {
        for (c, chunk) in out.chunks_mut(per * cols).enumerate() {
            let f = &f;
            scope.spawn(move || f(c * per, chunk));
        }
    });
}

/// `[left ‖ right?] · b` into a fresh matrix, row-partitioned over threads.
fn matmul_impl(left: &Matrix, right: Option<&Matrix>, b: &Matrix) -> Matrix {
    let (rows, h) = (left.rows, b.cols);
    let mut out = Matrix::zeros(rows, h);
    if rows == 0 || h == 0 || b.rows == 0 {
        return out;
    }
    parallel_row_chunks(rows, h, b.rows, &mut out.data, |start, chunk| {
        matmul_chunk(left, right, b, start, chunk);
    });
    out
}

/// The blocked `matmul` kernel over output rows `start..start+chunk/h`.
///
/// Loop order is k-panel → MR-row tile → k → j: panels of `b` rows stay
/// cache-hot while the tile amortises each `b` row across `MR` outputs.
/// For a fixed output element the `k` updates arrive panel-ascending and
/// in-panel-ascending — i.e. plain ascending `k` — with the left source's
/// columns before the right's, exactly like a materialised concatenation.
fn matmul_chunk(
    left: &Matrix,
    right: Option<&Matrix>,
    b: &Matrix,
    start: usize,
    chunk: &mut [f32],
) {
    let h = b.cols;
    let dl = left.cols;
    let d = b.rows;
    let kc = k_block();
    let mut kb = 0;
    while kb < d {
        let ke = (kb + kc).min(d);
        let mut tiles = chunk.chunks_exact_mut(MR * h);
        let mut i = start;
        for tile in tiles.by_ref() {
            let (r0, rest) = tile.split_at_mut(h);
            let (r1, rest) = rest.split_at_mut(h);
            let (r2, r3) = rest.split_at_mut(h);
            if kb < dl {
                let e = ke.min(dl);
                tile_segment(
                    r0,
                    r1,
                    r2,
                    r3,
                    &left.row(i)[kb..e],
                    &left.row(i + 1)[kb..e],
                    &left.row(i + 2)[kb..e],
                    &left.row(i + 3)[kb..e],
                    b,
                    kb,
                );
            }
            if let Some(rm) = right {
                if ke > dl {
                    let s = kb.max(dl);
                    tile_segment(
                        r0,
                        r1,
                        r2,
                        r3,
                        &rm.row(i)[s - dl..ke - dl],
                        &rm.row(i + 1)[s - dl..ke - dl],
                        &rm.row(i + 2)[s - dl..ke - dl],
                        &rm.row(i + 3)[s - dl..ke - dl],
                        b,
                        s,
                    );
                }
            }
            i += MR;
        }
        for row_out in tiles.into_remainder().chunks_mut(h) {
            if kb < dl {
                row_segment(row_out, &left.row(i)[kb..ke.min(dl)], b, kb);
            }
            if let Some(rm) = right {
                if ke > dl {
                    let s = kb.max(dl);
                    row_segment(row_out, &rm.row(i)[s - dl..ke - dl], b, s);
                }
            }
            i += 1;
        }
        kb = ke;
    }
}

/// One `MR`-row tile over one contiguous `k` segment: `a0..a3` hold the
/// tile rows' `a` values for `k = k0..k0+len`, `b` supplies rows
/// `k0..k0+len`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn tile_segment(
    r0: &mut [f32],
    r1: &mut [f32],
    r2: &mut [f32],
    r3: &mut [f32],
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    b: &Matrix,
    k0: usize,
) {
    for (t, (((&a0v, &a1v), &a2v), &a3v)) in a0.iter().zip(a1).zip(a2).zip(a3).enumerate() {
        // Zero `a` values skip their row (features are sparse); the skip
        // cannot change bits because a `+0.0` accumulator never turns
        // negative-zero under addition. One-hot feature blocks make the
        // all-four-zero case by far the most common, so test it first with
        // a single sign-stripped bit test.
        if (a0v.to_bits() | a1v.to_bits() | a2v.to_bits() | a3v.to_bits()) << 1 == 0 {
            continue;
        }
        let bv = b.row(k0 + t);
        if a0v != 0.0 && a1v != 0.0 && a2v != 0.0 && a3v != 0.0 {
            let n = bv.len();
            let (r0, r1, r2, r3) = (&mut r0[..n], &mut r1[..n], &mut r2[..n], &mut r3[..n]);
            for j in 0..n {
                r0[j] += a0v * bv[j];
                r1[j] += a1v * bv[j];
                r2[j] += a2v * bv[j];
                r3[j] += a3v * bv[j];
            }
        } else {
            axpy(r0, a0v, bv);
            axpy(r1, a1v, bv);
            axpy(r2, a2v, bv);
            axpy(r3, a3v, bv);
        }
    }
}

/// Single-row tail of [`tile_segment`].
#[inline]
fn row_segment(out: &mut [f32], a: &[f32], b: &Matrix, k0: usize) {
    for (t, &av) in a.iter().enumerate() {
        axpy(out, av, b.row(k0 + t));
    }
}

/// `out += a · b`, skipping the no-op when `a` is zero.
#[inline]
fn axpy(out: &mut [f32], a: f32, b: &[f32]) {
    if a == 0.0 {
        return;
    }
    for (o, &v) in out.iter_mut().zip(b) {
        *o += a * v;
    }
}

/// The blocked `transpose_matmul` kernel for output rows (i.e. `a`
/// columns) `k0..k0+chunk/h`: panels of output rows stay cache-hot while
/// register tiles of `MR` input rows are added **sequentially in ascending
/// input order**, preserving the rank-1-update accumulation order of the
/// scalar kernel.
fn tmm_chunk(a: &Matrix, b: &Matrix, k0: usize, chunk: &mut [f32]) {
    let h = b.cols;
    let kc = k_block();
    let rows = chunk.len() / h;
    let n = a.rows;
    let mut p = 0;
    while p < rows {
        let pe = (p + kc).min(rows);
        let panel = &mut chunk[p * h..pe * h];
        let ks = k0 + p;
        let mut i = 0;
        while i + MR <= n {
            let (a0, a1, a2, a3) = (a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3));
            let (b0, b1, b2, b3) = (b.row(i), b.row(i + 1), b.row(i + 2), b.row(i + 3));
            for (t, out_row) in panel.chunks_mut(h).enumerate() {
                let k = ks + t;
                axpy4_seq(out_row, a0[k], b0, a1[k], b1, a2[k], b2, a3[k], b3);
            }
            i += MR;
        }
        while i < n {
            let ar = a.row(i);
            let br = b.row(i);
            for (t, out_row) in panel.chunks_mut(h).enumerate() {
                axpy(out_row, ar[ks + t], br);
            }
            i += 1;
        }
        p = pe;
    }
}

/// Four sequential rank-1 contributions into one output row, in argument
/// order — `out[j]` receives `a0·b0[j]`, then `a1·b1[j]`, … as four
/// separate additions, never a reassociated sum.
#[allow(clippy::too_many_arguments)]
#[inline]
fn axpy4_seq(
    out: &mut [f32],
    a0: f32,
    b0: &[f32],
    a1: f32,
    b1: &[f32],
    a2: f32,
    b2: &[f32],
    a3: f32,
    b3: &[f32],
) {
    // Sparse tiles (one-hot feature columns) are usually all zero: strip
    // the sign bits and skip the whole tile with one test. Bit-exact for
    // the same reason the per-value skips below are.
    if (a0.to_bits() | a1.to_bits() | a2.to_bits() | a3.to_bits()) << 1 == 0 {
        return;
    }
    if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
        let n = out.len();
        let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
        for j in 0..n {
            let mut v = out[j];
            v += a0 * b0[j];
            v += a1 * b1[j];
            v += a2 * b2[j];
            v += a3 * b3[j];
            out[j] = v;
        }
    } else {
        axpy(out, a0, b0);
        axpy(out, a1, b1);
        axpy(out, a2, b2);
        axpy(out, a3, b3);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ------------------------------------------------------------------
    // Differential oracles: the pre-rewrite scalar kernels, kept verbatim.
    // The blocked kernels promise *exact* (bitwise) equality with these —
    // their accumulation order per output element is identical, so no ULP
    // bound is needed anywhere in this suite.
    // ------------------------------------------------------------------

    /// The scalar `i k j` kernel this crate shipped before the blocked
    /// rewrite (including the zero-`a` skip).
    #[allow(clippy::needless_range_loop)] // kept verbatim as the oracle
    fn oracle_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.rows);
        let mut out = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for (k, &av) in a.row(i).iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                for j in 0..b.cols {
                    out.data[i * b.cols + j] += av * brow[j];
                }
            }
        }
        out
    }

    /// The scalar rank-1-update `transpose_matmul` (ascending input rows).
    fn oracle_transpose_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows, b.rows);
        let mut out = Matrix::zeros(a.cols, b.cols);
        for i in 0..a.rows {
            let brow = b.row(i);
            for (k, &av) in a.row(i).iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (o, &bv) in out.data[k * b.cols..(k + 1) * b.cols].iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    fn oracle_transpose(a: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols, a.rows);
        for r in 0..a.rows {
            for c in 0..a.cols {
                out.data[c * a.rows + r] = a.data[r * a.cols + c];
            }
        }
        out
    }

    /// Deterministic awkward test values: small integers with exact zeros
    /// and a sprinkling of negative zeros, so the suite would catch a
    /// kernel that mishandles the zero-skip's sign semantics.
    fn probe(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let v = ((r * 31 + c * 17 + salt * 7) % 7) as f32 - 3.0;
            if (r + c + salt).is_multiple_of(11) {
                -0.0
            } else {
                v
            }
        })
    }

    /// Bitwise equality — `==` on floats would treat `-0.0` and `0.0` as
    /// equal and hide sign regressions.
    fn assert_bits_eq(got: &Matrix, want: &Matrix, what: &str) {
        assert_eq!((got.rows, got.cols), (want.rows, want.cols), "{what}");
        for (i, (g, w)) in got.data.iter().zip(&want.data).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{what}: element {i} {g:?} vs {w:?}"
            );
        }
    }

    /// Shapes chosen to straddle every blocking boundary: degenerate rows
    /// and columns, 1×N and N×1, primes, and dims around the MR=4 tile.
    const DIMS: [usize; 8] = [0, 1, 2, 3, 5, 8, 13, 31];

    #[test]
    fn blocked_kernels_match_scalar_oracles_bitwise() {
        for &m in &DIMS {
            for &k in &DIMS {
                for &n in &DIMS {
                    let a = probe(m, k, 1);
                    let b = probe(k, n, 2);
                    assert_bits_eq(
                        &a.matmul(&b),
                        &oracle_matmul(&a, &b),
                        &format!("matmul {m}x{k}x{n}"),
                    );
                    let c = probe(m, n, 3);
                    assert_bits_eq(
                        &a.transpose_matmul(&c),
                        &oracle_transpose_matmul(&a, &c),
                        &format!("transpose_matmul {m}x{k}x{n}"),
                    );
                    let d = probe(n, k, 4);
                    assert_bits_eq(
                        &a.matmul_transpose(&d),
                        &oracle_matmul(&a, &oracle_transpose(&d)),
                        &format!("matmul_transpose {m}x{k}x{n}"),
                    );
                }
            }
        }
    }

    /// Inner dims straddling the k-panel size, so at least one panel
    /// boundary falls strictly inside the accumulation.
    #[test]
    fn kernels_are_bitwise_stable_across_k_panel_boundaries() {
        let kc = k_block();
        for k in [kc - 1, kc, kc + 1, 2 * kc + 3] {
            let a = probe(5, k, 5);
            let b = probe(k, 9, 6);
            assert_bits_eq(&a.matmul(&b), &oracle_matmul(&a, &b), &format!("k={k}"));
            let big = probe(k, 5, 7);
            let c = probe(k, 9, 8);
            assert_bits_eq(
                &big.transpose_matmul(&c),
                &oracle_transpose_matmul(&big, &c),
                &format!("tmm rows={k}"),
            );
        }
    }

    /// The fused concat kernels are bitwise equal to materialising the
    /// concatenation first — including degenerate halves.
    #[test]
    fn fused_concat_kernels_match_unfused_bitwise() {
        for &m in &DIMS {
            for &dl in &[0usize, 1, 3, 8, 13] {
                for &dr in &[0usize, 1, 2, 5, 31] {
                    let left = probe(m, dl, 9);
                    let right = probe(m, dr, 10);
                    let z = left.hconcat(&right);
                    let w = probe(dl + dr, 7, 11);
                    assert_bits_eq(
                        &left.matmul_concat(&right, &w),
                        &z.matmul(&w),
                        &format!("matmul_concat {m}x[{dl}|{dr}]"),
                    );
                    let g = probe(m, 7, 12);
                    assert_bits_eq(
                        &left.transpose_matmul_concat(&right, &g),
                        &z.transpose_matmul(&g),
                        &format!("transpose_matmul_concat {m}x[{dl}|{dr}]"),
                    );
                }
            }
        }
    }

    /// Row-chunked execution (what each worker thread runs) is bitwise
    /// identical to the single-chunk call for any chunk boundary — the
    /// property the thread fan-out relies on, tested directly so it holds
    /// even on single-core machines where the fan-out never engages.
    #[test]
    fn chunked_execution_matches_serial_at_any_boundary() {
        let a = probe(23, 37, 13);
        let b = probe(37, 19, 14);
        let whole = a.matmul(&b);
        for chunk_rows in [1usize, 2, 3, 5, 8, 23] {
            let mut out = Matrix::zeros(23, 19);
            let cols = 19;
            for (c, chunk) in out.data.chunks_mut(chunk_rows * cols).enumerate() {
                matmul_chunk(&a, None, &b, c * chunk_rows, chunk);
            }
            assert_bits_eq(&out, &whole, &format!("matmul chunks of {chunk_rows}"));
        }
        let g = probe(23, 19, 15);
        let tm_whole = a.transpose_matmul(&g);
        for chunk_rows in [1usize, 2, 4, 7, 37] {
            let mut out = Matrix::zeros(37, 19);
            let cols = 19;
            for (c, chunk) in out.data.chunks_mut(chunk_rows * cols).enumerate() {
                tmm_chunk(&a, &g, c * chunk_rows, chunk);
            }
            assert_bits_eq(&out, &tm_whole, &format!("tmm chunks of {chunk_rows}"));
        }
    }

    /// Regression coverage for 0-row/0-col shapes across every op (the old
    /// `parallel_rows` helper panicked on zero-width outputs).
    #[test]
    fn zero_dimension_shapes_are_handled_everywhere() {
        let empty_rows = Matrix::from_fn(0, 3, |_, _| unreachable!());
        let empty_cols = Matrix::from_fn(3, 0, |_, _| unreachable!());
        assert_eq!(empty_rows.data().len(), 0);
        assert_eq!(empty_cols.data().len(), 0);

        // n×0 · 0×h, 0×d · d×h, n×d · d×0.
        let out = empty_cols.matmul(&Matrix::zeros(0, 4));
        assert_eq!((out.rows(), out.cols()), (3, 4));
        assert!(out.data().iter().all(|&v| v == 0.0));
        let out = empty_rows.matmul(&Matrix::zeros(3, 4));
        assert_eq!((out.rows(), out.cols()), (0, 4));
        let a = probe(3, 4, 16);
        let out = a.matmul(&Matrix::zeros(4, 0));
        assert_eq!((out.rows(), out.cols()), (3, 0));

        // Transpose-variants on the same degenerate shapes.
        assert_eq!(empty_cols.transpose_matmul(&a).rows(), 0);
        assert_eq!(empty_rows.transpose_matmul(&Matrix::zeros(0, 2)).rows(), 3);
        assert_eq!(a.matmul_transpose(&Matrix::zeros(0, 4)).cols(), 0);

        // Concats, splits, transpose, reductions.
        let cat = empty_cols.hconcat(&probe(3, 2, 17));
        assert_eq!((cat.rows(), cat.cols()), (3, 2));
        let (l, r) = cat.hsplit(0);
        assert_eq!((l.cols(), r.cols()), (0, 2));
        assert_eq!(empty_rows.transpose().cols(), 0);
        assert_eq!(empty_cols.transpose().rows(), 0);
        let mut e = Matrix::zeros(0, 5);
        e.add_assign(&Matrix::zeros(0, 5));
        e.scale(2.0);
        assert_eq!(e.argmax_rows().len(), 0);
        assert_eq!(empty_rows.argmax_rows().len(), 0);

        // Fused kernels with one empty half.
        let left = probe(3, 0, 18);
        let right = probe(3, 4, 19);
        let w = probe(4, 2, 20);
        assert_bits_eq(
            &left.matmul_concat(&right, &w),
            &right.matmul(&w),
            "empty left half",
        );
        assert_bits_eq(
            &right.matmul_concat(&left, &probe(4, 2, 20)),
            &right.matmul(&w),
            "empty right half",
        );
    }

    /// `from_fn` visits elements in row-major order exactly once.
    #[test]
    fn from_fn_is_single_pass_row_major() {
        let mut calls = Vec::new();
        let m = Matrix::from_fn(2, 3, |r, c| {
            calls.push((r, c));
            (r * 3 + c) as f32
        });
        assert_eq!(calls, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
        assert_eq!(m.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn transpose_rows_takes_a_row_slice() {
        let a = probe(5, 3, 21);
        let t = a.transpose_rows(1, 4);
        assert_eq!((t.rows(), t.cols()), (3, 3));
        for r in 1..4 {
            for c in 0..3 {
                assert_eq!(t[(c, r - 1)].to_bits(), a[(r, c)].to_bits());
            }
        }
        assert_bits_eq(&a.transpose_rows(0, 5), &oracle_transpose(&a), "full");
        assert_eq!(a.transpose_rows(2, 2).cols(), 0);
    }

    // ------------------------------------------------------------------
    // Pre-existing behaviour tests.
    // ------------------------------------------------------------------

    #[test]
    fn matmul_small_known_answer() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 0.5, -1.0, 2.0]);
        let at_b = a.transpose_matmul(&b);
        // aᵀ is 3x2; aᵀ·b is 3x2.
        let at = Matrix::from_vec(3, 2, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(at_b.data(), at.matmul(&b).data());
    }

    #[test]
    fn matmul_transpose_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        let got = a.matmul_transpose(&b);
        let bt = Matrix::from_fn(3, 4, |r, c| b[(c, r)]);
        assert_eq!(got.data(), a.matmul(&bt).data());
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 3, vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        let cat = a.hconcat(&b);
        assert_eq!(cat.cols(), 5);
        assert_eq!(cat.row(1), &[3.0, 4.0, 8.0, 9.0, 10.0]);
        let (l, r) = cat.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn argmax_rows_uses_total_order() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.5, 2.0, -1.0, 2.0]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
    }

    /// Matrices big enough to take the threaded path agree with a naive
    /// triple loop (and are therefore identical to the serial kernel).
    #[test]
    fn parallel_matmul_matches_naive() {
        let n = 80;
        let d = 96;
        let h = 70;
        let a = Matrix::from_fn(n, d, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(d, h, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let got = a.matmul(&b);
        let mut naive = Matrix::zeros(n, h);
        for i in 0..n {
            for k in 0..d {
                for j in 0..h {
                    naive[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        assert_eq!(got.data(), naive.data());

        // And the transpose variants on the same operands.
        let tm = a.transpose_matmul(&got);
        let mut naive_tm = Matrix::zeros(d, h);
        for i in 0..n {
            for k in 0..d {
                for j in 0..h {
                    naive_tm[(k, j)] += a[(i, k)] * got[(i, j)];
                }
            }
        }
        // transpose_matmul accumulates ascending input rows per element,
        // which matches this accumulation order per output row.
        assert_eq!(tm.data(), naive_tm.data());

        let mt = got.matmul_transpose(&got);
        assert_eq!((mt.rows(), mt.cols()), (n, n));
        // Gram matrix: entry (i, j) is the dot product of rows i and j.
        let dot = |i: usize, j: usize| -> f32 {
            got.row(i).iter().zip(got.row(j)).map(|(a, b)| a * b).sum()
        };
        assert_eq!(mt[(0, 0)], dot(0, 0));
        assert_eq!(mt[(3, 41)], dot(3, 41));
        assert_eq!(mt[(n - 1, n - 1)], dot(n - 1, n - 1));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        a.matmul(&b);
    }
}
