use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f32` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer — the inverse
    /// of [`Matrix::from_vec`], so callers that stage data into a matrix
    /// (e.g. a batched-inference workspace) can reclaim the allocation and
    /// reuse its capacity for the next batch.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (`n×d · d×h → n×h`).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions differ");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let kernel = |i: usize, out_row: &mut [f32]| {
            let a_row = self.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        };
        parallel_rows(self.rows, other.cols, self.cols, &mut out.data, kernel);
        out
    }

    /// The transpose `selfᵀ` (`n×d → d×n`).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// `selfᵀ · other` (`n×d ᵀ · n×h → d×h`), used for weight gradients.
    ///
    /// Output element `(k, j)` accumulates `self[i, k] · other[i, j]` over
    /// ascending `i` in both code paths below, so serial and parallel runs
    /// are bit-identical.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts differ");
        let mut out = Matrix::zeros(self.cols, other.cols);
        if !should_parallelise(self.cols, other.cols, self.rows) {
            // Single pass over the input rows: each row `i` of `self` adds
            // the rank-1 update `self[i]ᵀ ⊗ other[i]` into the (small)
            // output, with contiguous reads and a vectorisable inner loop —
            // unlike a per-output-row kernel, which walks a strided column
            // of `self` once per output row.
            for i in 0..self.rows {
                let b_row = other.row(i);
                for (k, &a) in self.row(i).iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut out.data[k * other.cols..(k + 1) * other.cols];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
            return out;
        }
        // Parallelised over output rows k: each thread owns a k-range and
        // scans every input row, so no accumulation races.
        let kernel = |k: usize, out_row: &mut [f32]| {
            for i in 0..self.rows {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };
        parallel_rows(self.cols, other.cols, self.rows, &mut out.data, kernel);
        out
    }

    /// `self · otherᵀ` (`n×h · d×h ᵀ → n×d`), used for input gradients.
    ///
    /// Implemented as `self · (otherᵀ)` through the k-ascending [`matmul`]
    /// kernel: each output element is a dot product accumulated in the same
    /// order either way, but the row-major kernel vectorises where a
    /// per-element scalar reduction cannot, and `other` (a weight matrix at
    /// every call site) is small next to the multiply itself.
    ///
    /// [`matmul`]: Matrix::matmul
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "column counts differ");
        self.matmul(&other.transpose())
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts differ");
        let mut data = Vec::with_capacity(self.rows * (self.cols + other.cols));
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix::from_vec(self.rows, self.cols + other.cols, data)
    }

    /// Splits `[left | right]` back into its halves (inverse of
    /// [`Matrix::hconcat`]).
    pub fn hsplit(&self, left_cols: usize) -> (Matrix, Matrix) {
        assert!(left_cols <= self.cols, "split point beyond width");
        let right_cols = self.cols - left_cols;
        let mut l = Vec::with_capacity(self.rows * left_cols);
        let mut r = Vec::with_capacity(self.rows * right_cols);
        for i in 0..self.rows {
            let row = self.row(i);
            l.extend_from_slice(&row[..left_cols]);
            r.extend_from_slice(&row[left_cols..]);
        }
        (
            Matrix::from_vec(self.rows, left_cols, l),
            Matrix::from_vec(self.rows, right_cols, r),
        )
    }

    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise scaling.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Index of the maximum entry in each row (first index on ties).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }
}

/// Runs `kernel(row_index, output_row)` for every output row, fanning out
/// over threads when the work is large enough to amortise spawning. Each
/// output row is written by exactly one thread with the same inner loop
/// order as the serial code, so results are bit-identical either way.
/// Whether a kernel of this shape is worth fanning out over threads — the
/// same gate [`parallel_rows`] applies, exposed so callers can pick a
/// different serial algorithm when the answer is no.
fn should_parallelise(rows: usize, cols: usize, inner: usize) -> bool {
    const PARALLEL_THRESHOLD: usize = 1 << 22;
    let work = rows.saturating_mul(cols).saturating_mul(inner.max(1));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    work >= PARALLEL_THRESHOLD && threads > 1 && rows >= 2
}

fn parallel_rows(
    rows: usize,
    cols: usize,
    inner: usize,
    out: &mut [f32],
    kernel: impl Fn(usize, &mut [f32]) + Sync,
) {
    if !should_parallelise(rows, cols, inner) {
        for (i, out_row) in out.chunks_mut(cols).enumerate() {
            kernel(i, out_row);
        }
        return;
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let per_chunk = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (c, chunk) in out.chunks_mut(per_chunk * cols).enumerate() {
            let kernel = &kernel;
            scope.spawn(move || {
                for (r, out_row) in chunk.chunks_mut(cols).enumerate() {
                    kernel(c * per_chunk + r, out_row);
                }
            });
        }
    });
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_answer() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 0.5, -1.0, 2.0]);
        let at_b = a.transpose_matmul(&b);
        // aᵀ is 3x2; aᵀ·b is 3x2.
        let at = Matrix::from_vec(3, 2, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(at_b.data(), at.matmul(&b).data());
    }

    #[test]
    fn matmul_transpose_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        let got = a.matmul_transpose(&b);
        let bt = Matrix::from_fn(3, 4, |r, c| b[(c, r)]);
        assert_eq!(got.data(), a.matmul(&bt).data());
    }

    #[test]
    fn hconcat_hsplit_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 3, vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        let cat = a.hconcat(&b);
        assert_eq!(cat.cols(), 5);
        assert_eq!(cat.row(1), &[3.0, 4.0, 8.0, 9.0, 10.0]);
        let (l, r) = cat.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn argmax_rows_uses_total_order() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.5, 2.0, -1.0, 2.0]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
    }

    /// Matrices big enough to take the threaded path agree with a naive
    /// triple loop (and are therefore identical to the serial kernel).
    #[test]
    fn parallel_matmul_matches_naive() {
        let n = 80;
        let d = 96;
        let h = 70;
        let a = Matrix::from_fn(n, d, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(d, h, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let got = a.matmul(&b);
        let mut naive = Matrix::zeros(n, h);
        for i in 0..n {
            for k in 0..d {
                for j in 0..h {
                    naive[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        assert_eq!(got.data(), naive.data());

        // And the transpose variants on the same operands.
        let tm = a.transpose_matmul(&got);
        let mut naive_tm = Matrix::zeros(d, h);
        for i in 0..n {
            for k in 0..d {
                for j in 0..h {
                    naive_tm[(k, j)] += a[(i, k)] * got[(i, j)];
                }
            }
        }
        // transpose_matmul parallel kernel iterates i innermost per k, which
        // matches this accumulation order per output row.
        assert_eq!(tm.data(), naive_tm.data());

        let mt = got.matmul_transpose(&got);
        assert_eq!((mt.rows(), mt.cols()), (n, n));
        // Gram matrix: entry (i, j) is the dot product of rows i and j.
        let dot = |i: usize, j: usize| -> f32 {
            got.row(i).iter().zip(got.row(j)).map(|(a, b)| a * b).sum()
        };
        assert_eq!(mt[(0, 0)], dot(0, 0));
        assert_eq!(mt[(3, 41)], dot(3, 41));
        assert_eq!(mt[(n - 1, n - 1)], dot(n - 1, n - 1));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        a.matmul(&b);
    }
}
