/// A small deterministic PRNG (xoshiro256** core seeded via splitmix64) used
/// for weight initialisation and neighbour sampling.
///
/// Kept crate-local rather than using `rand` distributions so that
/// experiment results are bit-reproducible across `rand` versions.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        DetRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn next_below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        let u = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + u * (hi - lo)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1 = ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let u2 = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = DetRng::new(4);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
