//! Dense numeric kernel shared by the GLAIVE GNN and the baseline MLP:
//! row-major `f32` matrices, a linear layer with manual backpropagation,
//! ReLU, masked softmax cross-entropy, Adam/SGD optimizers and Glorot
//! initialisation.
//!
//! The paper trains a 3-layer GraphSAGE with hidden dimension 128 and a
//! small MLP — models small enough that explicit forward/backward functions
//! (no autograd graph) are the clearest and fastest implementation.
//!
//! # Example
//!
//! ```
//! use glaive_nn::{Matrix, Linear, Adam, softmax_cross_entropy, DetRng};
//!
//! let mut rng = DetRng::new(1);
//! let mut layer = Linear::glorot(4, 3, &mut rng);
//! let x = Matrix::from_fn(8, 4, |_, _| rng.uniform(-1.0, 1.0));
//! let labels = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
//!
//! let mut opt = Adam::new(0.05, layer.param_count());
//! let mut last = f32::MAX;
//! for _ in 0..50 {
//!     let logits = layer.forward(&x);
//!     let (loss, grad) = softmax_cross_entropy(&logits, &labels, None);
//!     let (_, grads) = layer.backward(&x, &grad);
//!     layer.apply(&mut opt, &grads);
//!     last = loss;
//! }
//! assert!(last < 1.0, "training reduced the loss, got {last}");
//! ```

mod layers;
mod matrix;
mod optim;
mod rng;

pub use layers::{relu, relu_backward, softmax_cross_entropy, softmax_rows, Linear, LinearGrads};
pub use matrix::Matrix;
pub use optim::{Adam, Sgd};
pub use rng::DetRng;
