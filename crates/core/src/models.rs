use glaive_faultsim::VulnTuple;
use glaive_gnn::{GraphSage, TrainGraph};
use glaive_ml::{MlpClassifier, RandomForest, SvrRff};
use glaive_nn::Matrix;
use glaive_sim::Outcome;

use crate::config::PipelineConfig;
use crate::data::BenchData;
use crate::error::Error;

/// The estimation methods compared throughout §V of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// M1: the augmented GraphSAGE on bit-level CDFGs.
    Glaive,
    /// M2: the bit-level MLP baseline.
    MlpBit,
    /// M3: the instruction-level SVR baseline.
    SvmInst,
    /// M4: the instruction-level random-forest baseline.
    RfInst,
}

impl Method {
    /// All methods, in the paper's M1..M4 order.
    pub const ALL: [Method; 4] = [
        Method::Glaive,
        Method::MlpBit,
        Method::SvmInst,
        Method::RfInst,
    ];

    /// The paper's short tag (M1..M4).
    pub fn tag(self) -> &'static str {
        match self {
            Method::Glaive => "M1",
            Method::MlpBit => "M2",
            Method::SvmInst => "M3",
            Method::RfInst => "M4",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Glaive => "GLAIVE",
            Method::MlpBit => "MLP-BIT",
            Method::SvmInst => "SVM-INST",
            Method::RfInst => "RF-INST",
        }
    }

    /// Whether the method consumes bit-level inputs (and therefore yields
    /// per-bit class predictions).
    pub fn is_bit_level(self) -> bool {
        matches!(self, Method::Glaive | Method::MlpBit)
    }
}

/// All four estimators trained on the same training set.
#[derive(Debug)]
pub struct Models {
    glaive: GraphSage,
    /// Vanilla GraphSAGE (all-neighbour aggregation) for the Eq.(1)-vs-(2)
    /// ablation; only trained when the config asks for it.
    vanilla: Option<GraphSage>,
    mlp: MlpClassifier,
    forest: RandomForest,
    svr: SvrRff,
}

/// Trains every estimator on the given training benchmarks.
///
/// # Panics
///
/// Panics if `train` is empty or contains no labelled data.
pub fn train_models(train: &[&BenchData], config: &PipelineConfig) -> Models {
    train_models_with(train, config, None)
}

/// Like [`train_models`], but reusing an already-trained GLAIVE GraphSAGE
/// (from the artifact cache) instead of training one. The cheap baselines
/// are always retrained — only the GNN is worth caching.
pub(crate) fn train_models_with(
    train: &[&BenchData],
    config: &PipelineConfig,
    pretrained_glaive: Option<GraphSage>,
) -> Models {
    assert!(!train.is_empty(), "training set is empty");
    // Bit-level models size themselves off the training data, not the
    // static `glaive_cdfg::FEATURE_DIM` constant — timing-featured
    // pipelines widen every feature row by TIMING_FEATURE_DIM columns.
    let feature_dim = train[0].features.cols();

    // GLAIVE: one labelled graph per benchmark, predecessor aggregation.
    let glaive = pretrained_glaive.unwrap_or_else(|| {
        let graphs: Vec<TrainGraph<'_>> = train
            .iter()
            .map(|d| TrainGraph {
                features: &d.features,
                graph: &d.preds,
                labels: &d.labels,
                mask: &d.mask,
            })
            .collect();
        let mut glaive = GraphSage::try_new(feature_dim, &config.sage).expect("valid model config");
        glaive.train_with_threads(&graphs, config.train_threads);
        glaive
    });

    // Vanilla ablation: identical except for symmetrised neighbourhoods.
    let vanilla = config.train_vanilla.then(|| {
        let vanilla_graphs: Vec<TrainGraph<'_>> = train
            .iter()
            .map(|d| TrainGraph {
                features: &d.features,
                graph: &d.all_neighbors,
                labels: &d.labels,
                mask: &d.mask,
            })
            .collect();
        let mut vanilla =
            GraphSage::try_new(feature_dim, &config.sage).expect("valid model config");
        vanilla.train_with_threads(&vanilla_graphs, config.train_threads);
        vanilla
    });

    // MLP-BIT: stack every labelled bit node of every training benchmark.
    let labelled: usize = train.iter().map(|d| d.bit_datapoints()).sum();
    assert!(labelled > 0, "no labelled bit nodes in training set");
    let mut x = Matrix::zeros(labelled, feature_dim);
    let mut y = Vec::with_capacity(labelled);
    let mut row = 0;
    for d in train {
        for (i, &m) in d.mask.iter().enumerate() {
            if m {
                x.row_mut(row).copy_from_slice(d.features.row(i));
                y.push(d.labels[i]);
                row += 1;
            }
        }
    }
    let mut mlp = MlpClassifier::try_new(feature_dim, 3, &config.mlp).expect("valid model config");
    mlp.train(&x, &y, None);

    // RF-INST / SVM-INST: instruction features → FI vulnerability tuples.
    let instr_rows: usize = train.iter().map(|d| d.instr_datapoints()).sum();
    let mut xi = Matrix::zeros(instr_rows, glaive_cdfg::INSTR_FEATURE_DIM);
    let mut yi = Matrix::zeros(instr_rows, 3);
    let mut row = 0;
    for d in train {
        for pc in d.covered_pcs() {
            xi.row_mut(row).copy_from_slice(d.instr_features.row(pc));
            let t = d.fi_tuples[pc].expect("covered");
            yi.row_mut(row)
                .copy_from_slice(&[t.crash as f32, t.sdc as f32, t.masked as f32]);
            row += 1;
        }
    }
    let forest = RandomForest::fit(&xi, &yi, &config.forest);
    let svr = SvrRff::fit(&xi, &yi, &config.svr);

    Models {
        glaive,
        vanilla,
        mlp,
        forest,
        svr,
    }
}

impl Models {
    /// The trained GLAIVE GraphSAGE (e.g. for serialisation via
    /// [`GraphSage::to_bytes`]).
    pub fn glaive_model(&self) -> &GraphSage {
        &self.glaive
    }

    /// Per-bit class predictions on `data` for a bit-level method.
    ///
    /// # Errors
    ///
    /// [`Error::NotBitLevel`] for the instruction-level regressors, which
    /// have no per-bit output (check [`Method::is_bit_level`] first).
    pub fn bit_predictions(&self, method: Method, data: &BenchData) -> Result<Vec<usize>, Error> {
        match method {
            Method::Glaive => Ok(self.glaive.predict_labels(&data.features, &data.preds)),
            Method::MlpBit => Ok(self.mlp.predict_labels(&data.features)),
            Method::RfInst | Method::SvmInst => Err(Error::NotBitLevel(method)),
        }
    }

    /// Per-bit predictions of the vanilla (all-neighbour) GraphSAGE
    /// ablation, if it was trained (`PipelineConfig::train_vanilla`).
    pub fn vanilla_bit_predictions(&self, data: &BenchData) -> Option<Vec<usize>> {
        self.vanilla
            .as_ref()
            .map(|v| v.predict_labels(&data.features, &data.all_neighbors))
    }

    /// Estimated instruction vulnerability tuples for every PC of `data`
    /// (`None` where the method has no basis to estimate — instructions
    /// without operands for bit-level methods).
    ///
    /// Bit-level methods aggregate the *bit vulnerability distribution*
    /// (paper §III-D): the instruction tuple is the mean of its bit nodes'
    /// predicted class probabilities.
    pub fn estimate(&self, method: Method, data: &BenchData) -> Vec<Option<VulnTuple>> {
        match method {
            Method::Glaive => aggregate_probs_to_instructions(
                data,
                &self.glaive.predict_proba(&data.features, &data.preds),
            ),
            Method::MlpBit => {
                aggregate_probs_to_instructions(data, &self.mlp.predict_proba(&data.features))
            }
            Method::RfInst => regressed_tuples(&self.forest.predict(&data.instr_features)),
            Method::SvmInst => regressed_tuples(&self.svr.predict(&data.instr_features)),
        }
    }
}

/// Paper §III-D: instruction vulnerability from a model's bit
/// vulnerability distribution — the mean class-probability vector over the
/// instruction's bit nodes (`I_C = N_C / N_U` in expectation).
///
/// `bit_probs` is one class-probability row per CDFG node (the output of
/// [`GraphSage::predict_proba`](glaive_gnn::GraphSage::predict_proba) or
/// an MLP's per-bit probabilities); `program_len` sizes the result, one
/// entry per PC, `None` where the program has no graph nodes (operand-less
/// instructions). Shared by the pipeline estimators, the CLI `apply`
/// command and the `glaive-serve` model server.
pub fn aggregate_bit_probs(
    cdfg: &glaive_cdfg::Cdfg,
    program_len: usize,
    bit_probs: &Matrix,
) -> Vec<Option<VulnTuple>> {
    let mut sums = vec![[0.0f64; 3]; program_len];
    let mut counts = vec![0u64; program_len];
    for (id, node) in cdfg.nodes().iter().enumerate() {
        let row = bit_probs.row(id);
        for (acc, &p) in sums[node.pc].iter_mut().zip(row) {
            *acc += p as f64;
        }
        counts[node.pc] += 1;
    }
    sums.into_iter()
        .zip(counts)
        .map(|(s, c)| {
            if c == 0 {
                None
            } else {
                Some(VulnTuple {
                    crash: s[Outcome::Crash.label()] / c as f64,
                    sdc: s[Outcome::Sdc.label()] / c as f64,
                    masked: s[Outcome::Masked.label()] / c as f64,
                })
            }
        })
        .collect()
}

fn aggregate_probs_to_instructions(data: &BenchData, bit_probs: &Matrix) -> Vec<Option<VulnTuple>> {
    aggregate_bit_probs(&data.cdfg, data.bench.program().len(), bit_probs)
}

/// Clamps and renormalises raw regressor outputs into valid tuples.
fn regressed_tuples(pred: &Matrix) -> Vec<Option<VulnTuple>> {
    (0..pred.rows())
        .map(|r| {
            let row = pred.row(r);
            let crash = row[0].max(0.0) as f64;
            let sdc = row[1].max(0.0) as f64;
            let masked = row[2].max(0.0) as f64;
            let sum = crash + sdc + masked;
            Some(if sum <= 1e-12 {
                VulnTuple::MASKED
            } else {
                VulnTuple {
                    crash: crash / sum,
                    sdc: sdc / sum,
                    masked: masked / sum,
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::prepare_benchmark;
    use crate::PipelineConfig;
    use glaive_bench_suite::control::dijkstra;
    use glaive_bench_suite::data::radix;

    fn models_and_data() -> (Models, BenchData, BenchData) {
        let config = PipelineConfig::quick_test();
        let train = prepare_benchmark(dijkstra::build(1), &config);
        let test = prepare_benchmark(radix::build(1), &config);
        let models = train_models(&[&train], &config);
        (models, train, test)
    }

    #[test]
    fn estimates_cover_fi_covered_instructions() {
        let (models, train, test) = models_and_data();
        for method in Method::ALL {
            for data in [&train, &test] {
                let est = models.estimate(method, data);
                assert_eq!(est.len(), data.bench.program().len());
                for pc in data.covered_pcs() {
                    let t = est[pc].unwrap_or_else(|| {
                        panic!("{} missing estimate at covered pc {pc}", method.name())
                    });
                    assert!(
                        (t.crash + t.sdc + t.masked - 1.0).abs() < 1e-6,
                        "{} tuple not normalised",
                        method.name()
                    );
                }
            }
        }
    }

    #[test]
    fn bit_predictions_exist_only_for_bit_methods() {
        let (models, _, test) = models_and_data();
        assert!(models.bit_predictions(Method::Glaive, &test).is_ok());
        assert!(models.bit_predictions(Method::MlpBit, &test).is_ok());
        assert_eq!(
            models.bit_predictions(Method::RfInst, &test),
            Err(Error::NotBitLevel(Method::RfInst))
        );
        assert_eq!(
            models.bit_predictions(Method::SvmInst, &test),
            Err(Error::NotBitLevel(Method::SvmInst))
        );
        assert_eq!(
            models
                .vanilla_bit_predictions(&test)
                .expect("quick_test trains vanilla")
                .len(),
            test.cdfg.node_count()
        );
    }

    #[test]
    fn bit_models_train_and_estimate_at_the_timing_widened_dimension() {
        let mut config = PipelineConfig::quick_test();
        config.timing_features = true;
        config.train_vanilla = false;
        let train = prepare_benchmark(dijkstra::build(1), &config);
        assert_eq!(
            train.features.cols(),
            glaive_cdfg::FEATURE_DIM + glaive_timing::TIMING_FEATURE_DIM
        );
        let models = train_models(&[&train], &config);
        for method in [Method::Glaive, Method::MlpBit] {
            let est = models.estimate(method, &train);
            for pc in train.covered_pcs() {
                let t = est[pc].expect("covered pc estimated");
                assert!(
                    (t.crash + t.sdc + t.masked - 1.0).abs() < 1e-6,
                    "{} tuple not normalised with timing features",
                    method.name()
                );
            }
        }
    }

    #[test]
    fn method_metadata() {
        assert_eq!(Method::Glaive.tag(), "M1");
        assert_eq!(Method::RfInst.tag(), "M4");
        assert!(Method::MlpBit.is_bit_level());
        assert!(!Method::SvmInst.is_bit_level());
        assert_eq!(Method::ALL.len(), 4);
    }

    #[test]
    fn regressed_tuples_are_clamped_and_normalised() {
        let raw = Matrix::from_vec(2, 3, vec![-0.2, 0.5, 0.5, 0.0, 0.0, 0.0]);
        let t = regressed_tuples(&raw);
        let a = t[0].expect("some");
        assert_eq!(a.crash, 0.0);
        assert!((a.sdc - 0.5).abs() < 1e-9);
        let b = t[1].expect("some");
        assert_eq!(b.masked, 1.0);
    }
}
