//! An analytical error-propagation model in the spirit of Trident (Li et
//! al., DSN 2018) and CIAP (Cong & Gururaj, ICCAD 2011) — the class of
//! fast-but-inaccurate estimators the paper positions GLAIVE against
//! (§I, §VI).
//!
//! The model needs no fault injection and no learning. For each instruction
//! it combines three static/profile ingredients:
//!
//! * **Crash exposure** — the fraction of operand bits whose flip makes an
//!   address leave the data memory (memory operands) or redirects control
//!   (it approximates the division-trap and addressing behaviour of the
//!   simulator analytically).
//! * **Propagation to output** — a fixpoint over the def-use graph: the
//!   probability that a corrupted value survives each consumer's
//!   *derating* (logical masking of `and`/`or`, shift truncation,
//!   comparison collapsing, …) and eventually reaches an `out` instruction.
//! * **Execution weight** — instructions that never execute cannot fail.
//!
//! The result is an instruction vulnerability tuple ⟨crash, sdc, masked⟩
//! directly comparable with the learned estimators — and, as the paper
//! argues for analytical models generally, visibly less accurate (see the
//! `analytic_baseline` binary).

use glaive_cdfg::analysis::def_use_chains;
use glaive_faultsim::VulnTuple;
use glaive_isa::{AluOp, Instr, Program, WORD_BITS};

use crate::data::BenchData;

/// Per-consumer derating: the probability that a single corrupted bit in a
/// source operand still corrupts the result of the consuming instruction.
fn transmission_factor(instr: &Instr) -> f64 {
    match instr {
        // Logical masking: on average half the bits of the other operand
        // gate the flip.
        Instr::Alu {
            op: AluOp::And | AluOp::Or,
            ..
        }
        | Instr::AluImm {
            op: AluOp::And | AluOp::Or,
            ..
        } => 0.5,
        // Shifts truncate bits that leave the word.
        Instr::Alu {
            op: AluOp::Shl | AluOp::Shr | AluOp::Sra,
            ..
        }
        | Instr::AluImm {
            op: AluOp::Shl | AluOp::Shr | AluOp::Sra,
            ..
        } => 0.6,
        // Comparisons collapse 64 bits into one: most single-bit flips do
        // not move the operand across the comparison boundary.
        Instr::Alu {
            op: AluOp::Slt | AluOp::Sltu | AluOp::Seq,
            ..
        }
        | Instr::AluImm {
            op: AluOp::Slt | AluOp::Sltu | AluOp::Seq,
            ..
        } => 0.25,
        Instr::Fpu { op, .. } if op.is_compare() => 0.25,
        // Branches: a corrupted condition only matters when it flips the
        // taken/not-taken decision.
        Instr::Branch { .. } => 0.2,
        // Float arithmetic: low mantissa bits get absorbed by rounding.
        Instr::Fpu { .. } | Instr::FpuUnary { .. } | Instr::Cvt { .. } => 0.8,
        // Everything else transmits the corruption essentially verbatim.
        _ => 0.95,
    }
}

/// The fraction of a memory instruction's *address* bits whose flip lands
/// outside `mem_words` (and therefore traps).
fn address_crash_fraction(mem_words: usize) -> f64 {
    // Bits at positions >= log2(mem_words) escape the mapped region.
    let safe_bits = (mem_words.max(1) as f64).log2().floor();
    ((WORD_BITS as f64) - safe_bits).max(0.0) / WORD_BITS as f64
}

/// The analytical estimator. Holds per-instruction propagation
/// probabilities computed once per program.
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    tuples: Vec<Option<VulnTuple>>,
}

impl AnalyticModel {
    /// Builds the model for a program, using only static analysis plus the
    /// golden execution profile (`exec_counts`) — no fault injections.
    pub fn build(program: &Program, exec_counts: &[u64]) -> AnalyticModel {
        let n = program.len();
        let chains = def_use_chains(program);
        // consumers[pc] = instructions reading the value pc defines.
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &chains {
            consumers[e.def_pc].push(e.use_pc);
        }

        // reach[pc]: probability that a corrupted value *defined* at pc
        // reaches program output. Fixpoint over the (cyclic) def-use graph;
        // `out` instructions emit directly.
        let mut reach = vec![0.0f64; n];
        for _ in 0..50 {
            let mut changed = false;
            for pc in 0..n {
                let mut best: f64 = 0.0;
                for &c in &consumers[pc] {
                    let instr = &program.instrs()[c];
                    let t = transmission_factor(instr);
                    let downstream = match instr {
                        Instr::Out { .. } => 1.0,
                        Instr::Store { .. } => {
                            // Value flows into memory; assume it is read
                            // again with high probability (conservative).
                            0.9 * reach_of_stores(program, c, &reach)
                        }
                        Instr::Branch { .. } => 0.8, // wrong path corrupts state
                        _ => reach[c],
                    };
                    best = best.max(t * downstream);
                }
                if (best - reach[pc]).abs() > 1e-9 {
                    reach[pc] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let addr_crash = address_crash_fraction(program.mem_words());
        let tuples = program
            .instrs()
            .iter()
            .enumerate()
            .map(|(pc, instr)| {
                if exec_counts.get(pc).copied().unwrap_or(0) == 0 {
                    return None;
                }
                let operands = instr.operands();
                if operands.is_empty() {
                    return None;
                }
                // Crash: address operands of memory instructions, and the
                // control redirection of a corrupted branch target path.
                let mut crash = 0.0;
                match instr {
                    Instr::Load { .. } => crash = addr_crash / operands.len() as f64,
                    Instr::Store { .. } => crash = addr_crash / operands.len() as f64,
                    Instr::Alu {
                        op: AluOp::Div | AluOp::Rem,
                        ..
                    }
                    | Instr::AluImm {
                        op: AluOp::Div | AluOp::Rem,
                        ..
                    } => crash = 0.05,
                    _ => {}
                }
                // SDC: the defined value's reach, or for stores/outs the
                // stored/emitted value directly.
                let sdc_base = match instr {
                    Instr::Out { .. } => 1.0,
                    Instr::Store { .. } => 0.9 * reach_of_stores(program, pc, &reach),
                    Instr::Branch { .. } => 0.2,
                    _ => reach[pc],
                };
                let sdc = (sdc_base * (1.0 - crash)).clamp(0.0, 1.0 - crash);
                Some(VulnTuple {
                    crash,
                    sdc,
                    masked: (1.0 - crash - sdc).max(0.0),
                })
            })
            .collect();
        AnalyticModel { tuples }
    }

    /// Builds the model from prepared benchmark data.
    pub fn for_bench(data: &BenchData) -> AnalyticModel {
        AnalyticModel::build(data.bench.program(), &data.truth.golden().exec_counts)
    }

    /// The estimated instruction vulnerability tuples, indexed by PC.
    pub fn tuples(&self) -> &[Option<VulnTuple>] {
        &self.tuples
    }
}

/// Probability that a value stored by instruction `store_pc` reaches output
/// through some aliasing load: the max reach over the loads in its alias
/// class, discounted once.
fn reach_of_stores(program: &Program, store_pc: usize, reach: &[f64]) -> f64 {
    let Instr::Store { offset, .. } = program.instrs()[store_pc] else {
        return 0.0;
    };
    program
        .instrs()
        .iter()
        .enumerate()
        .filter_map(|(pc, i)| match i {
            Instr::Load { offset: lo, .. } if *lo == offset => Some(reach[pc]),
            _ => None,
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::data::prepare_benchmark;
    use crate::metrics;
    use glaive_isa::{Asm, Reg};

    #[test]
    fn out_instructions_are_maximally_sdc_prone() {
        let mut asm = Asm::new("t");
        asm.li(Reg(1), 1);
        asm.out(Reg(1));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let model = AnalyticModel::build(&p, &[1, 1, 1]);
        let out_tuple = model.tuples()[1].expect("out has operands");
        assert!(out_tuple.sdc > 0.9, "direct output should be SDC-dominated");
    }

    #[test]
    fn dead_values_are_masked() {
        let mut asm = Asm::new("t");
        asm.li(Reg(1), 1); // dead: never read
        asm.li(Reg(2), 2);
        asm.out(Reg(2));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let model = AnalyticModel::build(&p, &[1, 1, 1, 1]);
        let dead = model.tuples()[0].expect("li has a def");
        assert!(dead.masked > 0.9, "dead def should be masked, got {dead:?}");
        let live = model.tuples()[1].expect("li has a def");
        assert!(live.sdc > 0.8, "live def should propagate, got {live:?}");
    }

    #[test]
    fn unexecuted_instructions_have_no_tuple() {
        let mut asm = Asm::new("t");
        let end = asm.label();
        asm.jump(end);
        asm.li(Reg(1), 1); // dead code
        asm.bind(end);
        asm.halt();
        let p = asm.finish().expect("resolves");
        let model = AnalyticModel::build(&p, &[1, 0, 1]);
        assert!(model.tuples()[1].is_none());
    }

    #[test]
    fn tuples_are_valid_distributions_on_real_benchmarks() {
        let d = prepare_benchmark(
            glaive_bench_suite::control::dijkstra::build(3),
            &PipelineConfig::quick_test(),
        );
        let model = AnalyticModel::for_bench(&d);
        for t in model.tuples().iter().flatten() {
            assert!(t.crash >= 0.0 && t.sdc >= 0.0 && t.masked >= 0.0);
            assert!((t.crash + t.sdc + t.masked - 1.0).abs() < 1e-9);
        }
        // And they plug into the standard metrics.
        let err = metrics::program_vulnerability_error(model.tuples(), &d);
        assert!((0.0..=2.0).contains(&err));
        let cov = metrics::top_k_coverage(model.tuples(), &d, 30.0);
        assert!((0.0..=1.0).contains(&cov));
    }

    #[test]
    fn address_crash_fraction_shrinks_with_memory() {
        assert!(address_crash_fraction(64) > address_crash_fraction(1 << 20));
        assert!(address_crash_fraction(1) <= 1.0);
        assert!(address_crash_fraction(usize::MAX) >= 0.0);
    }
}
