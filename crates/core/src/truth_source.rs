//! Pluggable ground-truth acquisition for the pipeline.
//!
//! When the artifact cache misses, the pipeline needs a
//! [`GroundTruth`] for a benchmark. How that truth is *produced* is a
//! strategy: the default [`LocalTruthSource`] runs a supervised
//! in-process campaign (the original behaviour), while
//! `glaive-campaign` provides a distributed source that shards the same
//! campaign across a worker fleet. Because every source must be
//! bit-deterministic for a given campaign configuration, swapping one
//! for another never changes the artifacts the pipeline caches — a
//! distributed truth is byte-identical to a local one and lands under
//! the same cache key.

use glaive_bench_suite::Benchmark;
use glaive_faultsim::{Campaign, CampaignConfig, CampaignError, GroundTruth, RunControl};

use crate::error::Error;
use crate::telemetry::Stage;

/// A strategy for producing fault-injection ground truth on a cache
/// miss.
///
/// Implementations must honour `ctrl` like
/// [`Campaign::run_supervised`] does — progress callbacks, cooperative
/// cancellation, deadlines, and GLVCKPT1 checkpointing — and must be
/// bit-deterministic: the same benchmark and configuration always yield
/// a byte-identical [`GroundTruth`], so sources are interchangeable
/// under the artifact cache.
pub trait TruthSource: Send + Sync {
    /// Computes the ground truth for `bench` under `config`.
    ///
    /// # Errors
    ///
    /// [`Error::Interrupted`] when `ctrl` stopped the campaign (any
    /// configured checkpoint sink holds a resumable snapshot), or
    /// [`Error::StageFailed`] for every other campaign failure.
    fn ground_truth(
        &self,
        bench: &Benchmark,
        config: CampaignConfig,
        ctrl: &RunControl<'_>,
    ) -> Result<GroundTruth, Error>;
}

/// Maps a campaign failure into the pipeline error vocabulary, keyed by
/// the benchmark it hit. Shared by every [`TruthSource`] whose
/// underlying failure is a [`CampaignError`].
pub fn campaign_error_to_pipeline(subject: &str, e: CampaignError) -> Error {
    match e {
        CampaignError::Interrupted {
            reason,
            completed,
            total,
            ..
        } => Error::Interrupted {
            subject: subject.to_string(),
            reason,
            completed,
            total,
        },
        other => Error::StageFailed {
            stage: Stage::Campaign,
            subject: subject.to_string(),
            message: other.to_string(),
        },
    }
}

/// The default source: a supervised single-process campaign
/// ([`Campaign::run_supervised`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalTruthSource;

impl TruthSource for LocalTruthSource {
    fn ground_truth(
        &self,
        bench: &Benchmark,
        config: CampaignConfig,
        ctrl: &RunControl<'_>,
    ) -> Result<GroundTruth, Error> {
        Campaign::try_new(bench.program(), &bench.init_mem, config)
            .and_then(|campaign| campaign.run_supervised(ctrl))
            .map_err(|e| campaign_error_to_pipeline(bench.name, e))
    }
}
