//! Vulnerability-distribution statistics (paper Fig. 2): how many
//! instructions have *pure* bit-level outcomes (every sampled bit Masked,
//! SDC or Crash) versus *mixed* outcomes — the paper's motivation for
//! bit-level features.

use std::collections::BTreeMap;

use glaive_sim::Outcome;

use crate::data::BenchData;

/// Fractions of FI-covered instructions by bit-outcome composition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VulnDistribution {
    /// All sampled bits Masked.
    pub pure_masked: f64,
    /// All sampled bits SDC.
    pub pure_sdc: f64,
    /// All sampled bits Crash.
    pub pure_crash: f64,
    /// At least two distinct bit outcomes.
    pub mixed: f64,
    /// Number of FI-covered instructions the fractions refer to.
    pub instructions: usize,
}

/// Computes the Fig.-2 distribution for one benchmark from its FI bit
/// labels.
pub fn vulnerability_distribution(data: &BenchData) -> VulnDistribution {
    let mut per_pc: BTreeMap<usize, [bool; 3]> = BTreeMap::new();
    for (site, outcome) in data.truth.bit_labels() {
        per_pc.entry(site.pc).or_default()[outcome.label()] = true;
    }
    let n = per_pc.len();
    let mut pure = [0usize; 3];
    let mut mixed = 0usize;
    for seen in per_pc.values() {
        let kinds = seen.iter().filter(|&&b| b).count();
        if kinds >= 2 {
            mixed += 1;
        } else {
            for o in Outcome::ALL {
                if seen[o.label()] {
                    pure[o.label()] += 1;
                }
            }
        }
    }
    let frac = |c: usize| if n == 0 { 0.0 } else { c as f64 / n as f64 };
    VulnDistribution {
        pure_masked: frac(pure[Outcome::Masked.label()]),
        pure_sdc: frac(pure[Outcome::Sdc.label()]),
        pure_crash: frac(pure[Outcome::Crash.label()]),
        mixed: frac(mixed),
        instructions: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::prepare_benchmark;
    use crate::PipelineConfig;
    use glaive_bench_suite::control::dijkstra;
    use glaive_bench_suite::data::swaptions;

    #[test]
    fn fractions_sum_to_one() {
        let d = prepare_benchmark(dijkstra::build(1), &PipelineConfig::quick_test());
        let v = vulnerability_distribution(&d);
        let sum = v.pure_masked + v.pure_sdc + v.pure_crash + v.mixed;
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(v.instructions > 0);
    }

    #[test]
    fn realistic_programs_have_mixed_instructions() {
        // The paper's Fig. 2 motivation: a substantial fraction of
        // instructions is bit-position dependent.
        let d = prepare_benchmark(swaptions::build(1), &PipelineConfig::quick_test());
        let v = vulnerability_distribution(&d);
        assert!(
            v.mixed > 0.1,
            "expected mixed instructions, got {}",
            v.mixed
        );
    }
}
