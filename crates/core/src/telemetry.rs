//! Stage telemetry for the pipeline runtime: a lightweight observer trait
//! threaded through campaign → graph build → training → evaluation, plus
//! ready-made observers (silent, stderr progress, timing recorder).
//!
//! Observers are shared across worker threads, so implementations must be
//! `Send + Sync` and cheap — the hot path calls [`Observer::progress`] from
//! inside fault-injection workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The pipeline stages reported to observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Fault-injection campaign for one benchmark.
    Campaign,
    /// Bit-level CDFG construction + feature/label join for one benchmark.
    GraphBuild,
    /// Model training for one round-robin split.
    Training,
    /// Metric evaluation / inference.
    Evaluation,
    /// One batched forward pass of the model server (`glaive-serve`);
    /// `items` counts the coalesced requests in the batch.
    Inference,
}

impl Stage {
    /// Short human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Campaign => "campaign",
            Stage::GraphBuild => "graph",
            Stage::Training => "training",
            Stage::Evaluation => "evaluation",
            Stage::Inference => "inference",
        }
    }
}

/// Receives pipeline telemetry. All methods have no-op defaults, so an
/// observer implements only what it cares about.
pub trait Observer: Send + Sync {
    /// A stage began for `subject` (a benchmark name or split signature).
    fn stage_started(&self, stage: Stage, subject: &str) {
        let _ = (stage, subject);
    }

    /// A stage finished; `items` counts its work units (injections
    /// performed, graph nodes built, models trained…).
    fn stage_finished(&self, stage: Stage, subject: &str, elapsed: Duration, items: u64) {
        let _ = (stage, subject, elapsed, items);
    }

    /// Coarse in-stage progress (`done` of `total` units).
    fn progress(&self, stage: Stage, subject: &str, done: u64, total: u64) {
        let _ = (stage, subject, done, total);
    }

    /// A stage attempt failed (a caught panic or a typed stage error).
    /// `attempt` is 1-based; the stage may be retried afterwards.
    fn stage_failed(&self, stage: Stage, subject: &str, attempt: usize, message: &str) {
        let _ = (stage, subject, attempt, message);
    }

    /// An artifact-cache lookup for `subject` resolved to a hit or a miss.
    fn cache_lookup(&self, kind: &str, subject: &str, hit: bool) {
        let _ = (kind, subject, hit);
    }
}

/// Ignores every event — the default observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Prints stage lifecycles and cache activity to stderr — the CLI's
/// `--verbose` mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrProgress;

impl Observer for StderrProgress {
    fn stage_started(&self, stage: Stage, subject: &str) {
        eprintln!("[{}] {subject}: started", stage.name());
    }

    fn stage_finished(&self, stage: Stage, subject: &str, elapsed: Duration, items: u64) {
        eprintln!(
            "[{}] {subject}: done in {:.2}s ({items} items)",
            stage.name(),
            elapsed.as_secs_f64()
        );
    }

    fn cache_lookup(&self, kind: &str, subject: &str, hit: bool) {
        eprintln!(
            "[cache] {kind} {subject}: {}",
            if hit { "hit" } else { "miss" }
        );
    }

    fn stage_failed(&self, stage: Stage, subject: &str, attempt: usize, message: &str) {
        eprintln!(
            "[{}] {subject}: attempt {attempt} failed: {message}",
            stage.name()
        );
    }
}

/// One finished stage, as recorded by [`TimingRecorder`].
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// Which stage ran.
    pub stage: Stage,
    /// Benchmark name or split signature.
    pub subject: String,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Work units processed.
    pub items: u64,
}

/// Collects per-stage wall-clock timings and cache counters, and renders
/// them as the timing summary the experiment binaries print.
#[derive(Debug, Default)]
pub struct TimingRecorder {
    timings: Mutex<Vec<StageTiming>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    failures: Mutex<Vec<(Stage, String)>>,
}

impl TimingRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> TimingRecorder {
        TimingRecorder::default()
    }

    /// Everything recorded so far, in completion order.
    pub fn timings(&self) -> Vec<StageTiming> {
        self.timings.lock().expect("timings lock").clone()
    }

    /// Total wall-clock spent in `stage` (summed across workers, so it can
    /// exceed elapsed real time under parallelism).
    pub fn stage_total(&self, stage: Stage) -> Duration {
        self.timings
            .lock()
            .expect("timings lock")
            .iter()
            .filter(|t| t.stage == stage)
            .map(|t| t.elapsed)
            .sum()
    }

    /// Failed stage attempts recorded so far, as `(stage, subject)` pairs
    /// in arrival order (retried attempts appear once each).
    pub fn failures(&self) -> Vec<(Stage, String)> {
        self.failures.lock().expect("failures lock").clone()
    }

    /// `(hits, misses)` of artifact-cache lookups.
    pub fn cache_counts(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// A multi-line timing summary: one line per stage with total time and
    /// item counts, plus the cache hit rate.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("pipeline timing summary:\n");
        for stage in [
            Stage::Campaign,
            Stage::GraphBuild,
            Stage::Training,
            Stage::Evaluation,
            Stage::Inference,
        ] {
            let (count, items) = {
                let t = self.timings.lock().expect("timings lock");
                let sel: Vec<_> = t.iter().filter(|r| r.stage == stage).collect();
                (sel.len(), sel.iter().map(|r| r.items).sum::<u64>())
            };
            if count == 0 {
                continue;
            }
            writeln!(
                out,
                "  {:<10} {:>8.2}s  ({count} runs, {items} items)",
                stage.name(),
                self.stage_total(stage).as_secs_f64()
            )
            .expect("write to string");
        }
        let (hits, misses) = self.cache_counts();
        if hits + misses > 0 {
            writeln!(out, "  cache      {hits} hits / {misses} misses").expect("write to string");
        }
        out
    }
}

impl Observer for TimingRecorder {
    fn stage_finished(&self, stage: Stage, subject: &str, elapsed: Duration, items: u64) {
        self.timings
            .lock()
            .expect("timings lock")
            .push(StageTiming {
                stage,
                subject: subject.to_string(),
                elapsed,
                items,
            });
    }

    fn cache_lookup(&self, _kind: &str, _subject: &str, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stage_failed(&self, stage: Stage, subject: &str, _attempt: usize, _message: &str) {
        self.failures
            .lock()
            .expect("failures lock")
            .push((stage, subject.to_string()));
    }
}

/// Broadcasts every event to several observers (e.g. a recorder plus
/// stderr progress).
pub struct Fanout(pub Vec<std::sync::Arc<dyn Observer>>);

impl Observer for Fanout {
    fn stage_started(&self, stage: Stage, subject: &str) {
        for o in &self.0 {
            o.stage_started(stage, subject);
        }
    }

    fn stage_finished(&self, stage: Stage, subject: &str, elapsed: Duration, items: u64) {
        for o in &self.0 {
            o.stage_finished(stage, subject, elapsed, items);
        }
    }

    fn progress(&self, stage: Stage, subject: &str, done: u64, total: u64) {
        for o in &self.0 {
            o.progress(stage, subject, done, total);
        }
    }

    fn cache_lookup(&self, kind: &str, subject: &str, hit: bool) {
        for o in &self.0 {
            o.cache_lookup(kind, subject, hit);
        }
    }

    fn stage_failed(&self, stage: Stage, subject: &str, attempt: usize, message: &str) {
        for o in &self.0 {
            o.stage_failed(stage, subject, attempt, message);
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Panics in `stage_started` for a chosen stage (optionally one
    /// subject) a bounded number of times — the deliberate-failure hook
    /// behind the panic-isolation and retry tests.
    pub(crate) struct PanicOnStart {
        pub stage: Stage,
        pub subject: Option<&'static str>,
        pub remaining: AtomicUsize,
    }

    impl Observer for PanicOnStart {
        fn stage_started(&self, stage: Stage, subject: &str) {
            if stage == self.stage
                && self.subject.is_none_or(|s| s == subject)
                && self
                    .remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                    .is_ok()
            {
                panic!("synthetic {} failure for `{subject}`", stage.name());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_timings_and_cache_counts() {
        let rec = TimingRecorder::new();
        rec.stage_finished(Stage::Campaign, "a", Duration::from_millis(100), 10);
        rec.stage_finished(Stage::Campaign, "b", Duration::from_millis(50), 5);
        rec.stage_finished(Stage::Training, "a+b", Duration::from_millis(25), 1);
        rec.cache_lookup("fi", "a", true);
        rec.cache_lookup("fi", "b", false);

        assert_eq!(rec.timings().len(), 3);
        assert_eq!(rec.stage_total(Stage::Campaign), Duration::from_millis(150));
        assert_eq!(rec.cache_counts(), (1, 1));
        let s = rec.summary();
        assert!(s.contains("campaign"), "{s}");
        assert!(s.contains("training"), "{s}");
        assert!(s.contains("1 hits / 1 misses"), "{s}");
        // Stages that never ran are omitted.
        assert!(!s.contains("evaluation"), "{s}");
    }

    #[test]
    fn fanout_reaches_every_observer() {
        let a = std::sync::Arc::new(TimingRecorder::new());
        let b = std::sync::Arc::new(TimingRecorder::new());
        let fan = Fanout(vec![a.clone(), b.clone()]);
        fan.stage_finished(Stage::GraphBuild, "x", Duration::from_millis(1), 2);
        assert_eq!(a.timings().len(), 1);
        assert_eq!(b.timings().len(), 1);
    }
}
