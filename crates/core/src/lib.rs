//! GLAIVE: graph-learning-assisted instruction vulnerability estimation —
//! the end-to-end pipeline of the DATE 2021 paper, built on the workspace
//! substrates.
//!
//! The pipeline (paper Fig. 1):
//!
//! 1. compile a benchmark to the GLAIVE ISA ([`glaive_bench_suite`]),
//! 2. extract its bit-level CDFG and Table-I node features ([`glaive_cdfg`]),
//! 3. run a bit-level fault-injection campaign for ground truth
//!    ([`glaive_faultsim`]),
//! 4. train the augmented GraphSAGE ([`glaive_gnn`]) on the labelled graphs
//!    of the *training* benchmarks,
//! 5. infer per-bit vulnerability classes on an *unseen* benchmark, and
//! 6. aggregate them into instruction vulnerability tuples ⟨I_C, I_S, I_M⟩,
//!    a protection ranking, top-K coverage and program vulnerability error.
//!
//! Baseline estimators (MLP-BIT, RF-INST, SVM-INST) and the FI oracle share
//! the same interfaces so every experiment in the paper's §V is a small
//! driver over this crate (see `glaive-bench`).
//!
//! # Example
//!
//! ```no_run
//! use glaive::{prepare_suite, train_models, Method, PipelineConfig};
//!
//! let config = PipelineConfig::quick_test();
//! let suite = prepare_suite(7, &config);
//! // Round-robin: hold out the first control-sensitive benchmark.
//! let test = &suite[0];
//! let train: Vec<_> = glaive::train_set(&suite, test).collect();
//! let models = train_models(&train, &config);
//! let est = models.estimate(Method::Glaive, test);
//! let cov = glaive::metrics::top_k_coverage(&est, test, 20.0);
//! println!("top-20% coverage: {cov:.3}");
//! ```

pub mod analytic;
mod config;
mod data;
pub mod experiments;
pub mod metrics;
mod models;
pub mod stats;

pub use config::PipelineConfig;
pub use data::{
    prepare_benchmark, prepare_benchmark_with_graph_stride, prepare_suite, train_set, BenchData,
};
pub use models::{train_models, Method, Models};

pub use glaive_faultsim::VulnTuple;
