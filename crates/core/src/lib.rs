//! GLAIVE: graph-learning-assisted instruction vulnerability estimation —
//! the end-to-end pipeline of the DATE 2021 paper, built on the workspace
//! substrates.
//!
//! The pipeline (paper Fig. 1):
//!
//! 1. compile a benchmark to the GLAIVE ISA ([`glaive_bench_suite`]),
//! 2. extract its bit-level CDFG and Table-I node features ([`glaive_cdfg`]),
//! 3. run a bit-level fault-injection campaign for ground truth
//!    ([`glaive_faultsim`]),
//! 4. train the augmented GraphSAGE ([`glaive_gnn`]) on the labelled graphs
//!    of the *training* benchmarks,
//! 5. infer per-bit vulnerability classes on an *unseen* benchmark, and
//! 6. aggregate them into instruction vulnerability tuples ⟨I_C, I_S, I_M⟩,
//!    a protection ranking, top-K coverage and program vulnerability error.
//!
//! Baseline estimators (MLP-BIT, RF-INST, SVM-INST) and the FI oracle share
//! the same interfaces so every experiment in the paper's §V is a small
//! driver over this crate (see `glaive-bench`).
//!
//! # Example
//!
//! The [`Pipeline`] runtime is the front door: it validates the
//! configuration, prepares the suite on a worker pool (serving repeat
//! campaigns from the on-disk artifact cache), trains the round-robin
//! model sets, and reports stage telemetry to any attached
//! [`telemetry::Observer`].
//!
//! ```no_run
//! # fn main() -> Result<(), glaive::Error> {
//! use glaive::{Method, Pipeline, PipelineConfig};
//!
//! let pipeline = Pipeline::builder(PipelineConfig::quick_test())
//!     .default_cache()
//!     .build()?;
//! let eval = pipeline.run(7)?;
//! // Round-robin: each benchmark is scored by models that never saw it.
//! let test = &eval.suite()[0];
//! let models = eval.models_for(test.bench.name)?;
//! let est = models.estimate(Method::Glaive, test);
//! let cov = glaive::metrics::top_k_coverage(&est, test, 20.0);
//! println!("top-20% coverage: {cov:.3}");
//! # Ok(())
//! # }
//! ```
//!
//! The free functions ([`prepare_suite`], [`train_models`], …) remain as
//! cache-less, telemetry-less conveniences over the same machinery.

pub mod analytic;
mod cache;
mod config;
mod data;
mod error;
pub mod experiments;
pub mod metrics;
mod models;
mod pipeline;
pub mod stats;
pub mod telemetry;
mod truth_source;

pub use cache::{model_key, truth_key, ArtifactCache, CacheKey};
pub use config::{PipelineConfig, PipelineConfigBuilder, QuorumPolicy};
pub use data::{
    golden_timing_profile, prepare_benchmark, prepare_benchmark_with_graph_stride, prepare_suite,
    residency_from_profile, train_set, BenchData,
};
pub use error::Error;
pub use models::{aggregate_bit_probs, train_models, Method, Models};
pub use pipeline::{BenchOutcome, Pipeline, PipelineBuilder, SuiteReport};
pub use truth_source::{campaign_error_to_pipeline, LocalTruthSource, TruthSource};

pub use glaive_faultsim::{InterruptReason, TruthError, VulnTuple};
