use glaive_bench_suite::{suite, Benchmark, Split};
use glaive_cdfg::{instruction_features, Cdfg, INSTR_FEATURE_DIM};
use glaive_faultsim::{Campaign, GroundTruth, PcResidency, Residency, VulnTuple};
use glaive_graph::CsrGraph;
use glaive_nn::Matrix;
use glaive_timing::{try_profile, InOrderCost, TimingProfile, TIMING_FEATURE_DIM};

use crate::config::PipelineConfig;

/// Everything the estimators need about one benchmark: the compiled
/// program, its bit-level CDFG, FI ground truth, and pre-extracted
/// feature/label tensors.
#[derive(Debug, Clone)]
pub struct BenchData {
    /// The benchmark (program, inputs, category, split).
    pub bench: Benchmark,
    /// Its bit-level CDFG.
    pub cdfg: Cdfg,
    /// FI campaign results (ground truth).
    pub truth: GroundTruth,
    /// `node_count × FEATURE_DIM` bit-node features — widened by
    /// `TIMING_FEATURE_DIM` dynamic columns when the pipeline config asks
    /// for timing features.
    pub features: Matrix,
    /// Ternary FI label per CDFG node (0 where unlabelled; see `mask`).
    pub labels: Vec<usize>,
    /// Whether each CDFG node has an FI label.
    pub mask: Vec<bool>,
    /// Predecessor CSR graph (GLAIVE's aggregation neighbourhood), with
    /// per-edge dependence-kind tags for edge-type ablations.
    pub preds: CsrGraph,
    /// Symmetrised CSR neighbourhood (vanilla-GraphSAGE ablation).
    pub all_neighbors: CsrGraph,
    /// `program.len() × INSTR_FEATURE_DIM` instruction features.
    pub instr_features: Matrix,
    /// FI instruction vulnerability tuple per PC (None = never injected).
    pub fi_tuples: Vec<Option<VulnTuple>>,
    /// Injections per PC (program-vulnerability weights).
    pub fi_weights: Vec<u64>,
}

impl BenchData {
    /// Number of labelled bit-level datapoints (Table II "BL").
    pub fn bit_datapoints(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }

    /// Number of FI-covered instructions (Table II "IL").
    pub fn instr_datapoints(&self) -> usize {
        self.fi_tuples.iter().flatten().count()
    }

    /// PCs with FI ground truth, in ascending order.
    pub fn covered_pcs(&self) -> Vec<usize> {
        self.fi_tuples
            .iter()
            .enumerate()
            .filter_map(|(pc, t)| t.map(|_| pc))
            .collect()
    }
}

/// Runs the FI campaign and graph extraction for one benchmark.
pub fn prepare_benchmark(bench: Benchmark, config: &PipelineConfig) -> BenchData {
    prepare_benchmark_with_graph_stride(bench, config, config.effective_graph_stride())
}

/// Like [`prepare_benchmark`] but with a graph stride decoupled from the
/// campaign stride — the fair word-vs-bit representation ablation: both
/// representations are scored against the *same* FI ground truth, the
/// coarser graph simply cannot see per-bit structure. Graph strides must be
/// multiples of the campaign stride, otherwise most labels fail to join.
pub fn prepare_benchmark_with_graph_stride(
    bench: Benchmark,
    config: &PipelineConfig,
    graph_stride: usize,
) -> BenchData {
    let truth = Campaign::try_new(bench.program(), &bench.init_mem, config.campaign())
        .expect("pipeline campaign config is validated")
        .run();
    assemble_bench_data(bench, graph_stride, config.timing_features, truth)
}

/// Profiles `bench`'s golden run under the in-order cost model — the
/// dynamic-timing source for both the per-node feature columns and the
/// residency-weighted vulnerability metric.
pub fn golden_timing_profile(bench: &Benchmark) -> TimingProfile {
    let (result, profile) = try_profile(
        bench.program(),
        &bench.init_mem,
        &bench.exec_config(),
        InOrderCost::default(),
    )
    .expect("suite benchmarks are well-formed");
    assert!(
        result.status.is_clean(),
        "{}: golden run did not halt cleanly",
        bench.name
    );
    profile
}

/// Converts a collected timing profile into the fault-injection crate's
/// residency table — the glue that lets a [`GroundTruth`] be extended with
/// [`GroundTruth::with_residency`] (and serialised with the GLVFIT01
/// residency extension) without `glaive-faultsim` depending on the timing
/// layer.
pub fn residency_from_profile(profile: &TimingProfile) -> Residency {
    Residency::new(
        profile.total_cycles,
        profile
            .per_pc
            .iter()
            .map(|t| PcResidency {
                sum: t.residency_sum,
                count: t.residency_count,
            })
            .collect(),
    )
}

/// Joins already-computed FI ground truth onto a freshly built CDFG — the
/// deterministic, cheap half of benchmark preparation. The pipeline runtime
/// calls this directly when the campaign was served from the artifact
/// cache.
pub(crate) fn assemble_bench_data(
    bench: Benchmark,
    graph_stride: usize,
    timing_features: bool,
    truth: GroundTruth,
) -> BenchData {
    let cdfg = Cdfg::build(
        bench.program(),
        &glaive_cdfg::CdfgConfig {
            bit_stride: graph_stride,
        },
    );

    let static_features = cdfg.feature_matrix();
    let features = if timing_features {
        // Widen every node row with the golden run's dynamic timing view:
        // normalised issue cycle, residency share, and stall share of the
        // node's instruction (zeros for never-executed instructions).
        let profile = golden_timing_profile(&bench);
        let dim = glaive_cdfg::FEATURE_DIM + TIMING_FEATURE_DIM;
        let mut m = Matrix::zeros(cdfg.node_count(), dim);
        for (id, node) in cdfg.nodes().iter().enumerate() {
            let row = m.row_mut(id);
            row[..glaive_cdfg::FEATURE_DIM].copy_from_slice(
                &static_features
                    [id * glaive_cdfg::FEATURE_DIM..(id + 1) * glaive_cdfg::FEATURE_DIM],
            );
            row[glaive_cdfg::FEATURE_DIM..].copy_from_slice(&profile.node_features(node.pc));
        }
        m
    } else {
        Matrix::from_vec(cdfg.node_count(), glaive_cdfg::FEATURE_DIM, static_features)
    };

    let bit_labels = truth.bit_labels();
    let mut labels = vec![0usize; cdfg.node_count()];
    let mut mask = vec![false; cdfg.node_count()];
    for (site, outcome) in &bit_labels {
        if let Some(id) = cdfg.node_id(site.pc, site.slot, site.bit) {
            labels[id as usize] = outcome.label();
            mask[id as usize] = true;
        }
    }

    // The predecessor graph is shared with the CDFG verbatim; the vanilla
    // ablation's all-neighbour view is its symmetrisation (preds ∪ succs,
    // rows stay sorted and duplicate-free).
    let preds = cdfg.preds_csr().clone();
    let all_neighbors = preds.symmetrised();

    let instr_features = Matrix::from_vec(
        bench.program().len(),
        INSTR_FEATURE_DIM,
        instruction_features(bench.program()),
    );
    let mut fi_tuples = vec![None; bench.program().len()];
    let mut fi_weights = vec![0u64; bench.program().len()];
    let instr_vuln = truth
        .try_instruction_vulnerability()
        .expect("every grouped pc has at least one record");
    for iv in instr_vuln {
        fi_tuples[iv.pc] = Some(iv.tuple);
        fi_weights[iv.pc] = iv.injections;
    }

    BenchData {
        bench,
        cdfg,
        truth,
        features,
        labels,
        mask,
        preds,
        all_neighbors,
        instr_features,
        fi_tuples,
        fi_weights,
    }
}

/// Prepares all 12 Table-II benchmarks, fanning the per-benchmark work out
/// across a scoped worker pool (see [`Pipeline`](crate::Pipeline) for the
/// cache- and telemetry-aware version).
pub fn prepare_suite(seed: u64, config: &PipelineConfig) -> Vec<BenchData> {
    crate::pipeline::prepare_benchmarks_parallel(
        suite(seed),
        config,
        None,
        &crate::telemetry::NullObserver,
        0,
    )
    .expect("suite preparation failed (see the error for the failing benchmark)")
}

/// The training set for evaluating on `test`, following the paper's regime
/// (§IV): same-category train/test benchmarks, excluding `test` itself —
/// the round-robin n−1 split for train/test members, and all five
/// same-category members for the held-out validation programs.
pub fn train_set<'a>(
    all: &'a [BenchData],
    test: &'a BenchData,
) -> impl Iterator<Item = &'a BenchData> {
    all.iter().filter(move |d| {
        d.bench.category == test.bench.category
            && d.bench.split == Split::TrainTest
            && d.bench.name != test.bench.name
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_bench_suite::control::dijkstra;

    fn quick_data() -> BenchData {
        prepare_benchmark(dijkstra::build(3), &PipelineConfig::quick_test())
    }

    #[test]
    fn labels_join_onto_graph_nodes() {
        let d = quick_data();
        assert!(d.bit_datapoints() > 0, "campaign produced labels");
        // Every label sits on an executed instruction's node.
        for (id, &m) in d.mask.iter().enumerate() {
            if m {
                let node = d.cdfg.nodes()[id];
                assert!(
                    d.truth.golden().exec_counts[node.pc] > 0,
                    "label on never-executed pc {}",
                    node.pc
                );
                assert!(d.labels[id] < 3);
            }
        }
    }

    #[test]
    fn instruction_tuples_cover_executed_instructions() {
        let d = quick_data();
        assert!(d.instr_datapoints() > 0);
        for pc in d.covered_pcs() {
            assert!(d.fi_weights[pc] > 0);
            let t = d.fi_tuples[pc].expect("covered");
            assert!((t.crash + t.sdc + t.masked - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn neighbor_lists_are_symmetrised_supersets() {
        let d = quick_data();
        assert_eq!(d.preds.node_count(), d.cdfg.node_count());
        assert_eq!(d.all_neighbors.node_count(), d.cdfg.node_count());
        for id in 0..d.preds.node_count() {
            for p in d.preds.neighbors(id) {
                assert!(d.all_neighbors.neighbors(id).contains(p));
            }
        }
        // Symmetry: u in all_neighbors[v] ⇒ v in all_neighbors[u].
        for v in 0..d.all_neighbors.node_count() {
            for &u in d.all_neighbors.neighbors(v) {
                assert!(
                    d.all_neighbors.neighbors(u as usize).contains(&(v as u32)),
                    "asymmetric neighbourhood {v} ↔ {u}"
                );
            }
        }
    }

    #[test]
    fn timing_features_widen_the_feature_matrix() {
        let bench = dijkstra::build(3);
        let plain = prepare_benchmark(bench.clone(), &PipelineConfig::quick_test());
        assert_eq!(plain.features.cols(), glaive_cdfg::FEATURE_DIM);

        let mut config = PipelineConfig::quick_test();
        config.timing_features = true;
        let timed = prepare_benchmark(bench, &config);
        assert_eq!(
            timed.features.cols(),
            glaive_cdfg::FEATURE_DIM + TIMING_FEATURE_DIM
        );
        assert_eq!(timed.features.rows(), timed.cdfg.node_count());
        // Static columns are untouched by the widening...
        for id in 0..plain.cdfg.node_count() {
            assert_eq!(
                &timed.features.row(id)[..glaive_cdfg::FEATURE_DIM],
                plain.features.row(id),
                "static features perturbed at node {id}"
            );
        }
        // ...and the dynamic columns are not all zero.
        let dynamic_mass: f32 = (0..timed.features.rows())
            .map(|id| {
                timed.features.row(id)[glaive_cdfg::FEATURE_DIM..]
                    .iter()
                    .sum::<f32>()
            })
            .sum();
        assert!(dynamic_mass > 0.0, "timing columns are identically zero");
        // The FI ground truth itself is byte-identical either way: timing
        // is an observer, not a campaign parameter.
        assert_eq!(plain.truth.to_bytes(), timed.truth.to_bytes());
    }

    #[test]
    fn residency_glue_feeds_the_weighted_vulnerability_metric() {
        let bench = dijkstra::build(3);
        let profile = golden_timing_profile(&bench);
        assert_eq!(profile.per_pc.len(), bench.program().len());
        let residency = residency_from_profile(&profile);
        assert_eq!(residency.total_cycles(), profile.total_cycles);

        let d = prepare_benchmark(bench, &PipelineConfig::quick_test());
        let truth = d.truth.clone().with_residency(residency).expect("aligned");
        let weighted = truth
            .try_residency_weighted_vulnerability()
            .expect("residency attached");
        assert_eq!(weighted.len(), d.covered_pcs().len());
        assert!(
            weighted.iter().any(|&(_, w)| w > 0.0),
            "every residency-weighted score is zero"
        );
    }

    #[test]
    fn train_set_excludes_test_and_other_category() {
        let config = PipelineConfig::quick_test();
        // Build a miniature suite: two control TT benches + one data TT.
        let all = vec![
            prepare_benchmark(glaive_bench_suite::control::dijkstra::build(1), &config),
            prepare_benchmark(glaive_bench_suite::control::sobel::build(1), &config),
            prepare_benchmark(glaive_bench_suite::data::radix::build(1), &config),
        ];
        let names: Vec<&str> = train_set(&all, &all[0]).map(|d| d.bench.name).collect();
        assert_eq!(names, vec!["sobel"]);
    }
}
