//! Content-addressed on-disk artifact cache for the expensive pipeline
//! stages: fault-injection ground truth and trained GLAIVE models.
//!
//! Artifacts are keyed by a 64-bit FNV-1a hash of everything that
//! determines their content — the program's instruction encodings, its
//! input image, and the relevant configuration fields — so a change to
//! any input (different benchmark seed, different `bit_stride`…) produces
//! a different key and the stale artifact is simply never looked up.
//! Worker-thread counts are deliberately *excluded*: parallelism does not
//! change results.
//!
//! Reads are infallible by design: a missing, truncated, corrupted or
//! version-mismatched artifact is a cache *miss* (the serialisation layers
//! in `glaive-faultsim` and `glaive-gnn` carry magic, version and checksum
//! fields to detect this), and the pipeline recomputes. Only writes can
//! fail, and the pipeline treats those as non-fatal too.

use std::path::{Path, PathBuf};

use glaive_bench_suite::Benchmark;
use glaive_faultsim::{CampaignConfig, FileCheckpoint, GroundTruth};
use glaive_gnn::GraphSage;

use crate::config::PipelineConfig;
use crate::data::BenchData;
use crate::error::Error;

/// A content hash identifying one cached artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64);

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Incremental 64-bit FNV-1a hasher.
struct Fnv(u64);

impl Fnv {
    fn new(domain: &str) -> Fnv {
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.bytes(domain.as_bytes());
        h
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(self) -> CacheKey {
        CacheKey(self.0)
    }
}

fn hash_program_content(h: &mut Fnv, bench: &Benchmark) {
    let program = bench.program();
    h.u64(program.len() as u64);
    for instr in program.instrs() {
        h.bytes(&instr.encode());
    }
    h.u64(bench.init_mem.len() as u64);
    for &w in &bench.init_mem {
        h.u64(w);
    }
}

/// The cache key of a benchmark's FI ground truth under `campaign`.
pub fn truth_key(bench: &Benchmark, campaign: &CampaignConfig) -> CacheKey {
    let mut h = Fnv::new("glaive-fi-v1");
    h.u64(campaign.bit_stride as u64);
    h.u64(campaign.instances_per_site as u64);
    h.u64(campaign.hang_factor);
    h.u64(campaign.predict_dead_defs as u64);
    hash_program_content(&mut h, bench);
    h.finish()
}

/// The cache key of the GLAIVE GraphSAGE trained on `train` under
/// `config`. Covers the model hyperparameters, the graph stride, the
/// campaign parameters that shape the labels, and each training
/// benchmark's content, in training order (order affects the weights).
/// `train_threads` is deliberately absent: any thread count produces
/// bit-identical weights. The `v2` version tag invalidates models trained
/// before multi-graph epochs switched to one merged-gradient step.
pub fn model_key(train: &[&BenchData], config: &PipelineConfig) -> CacheKey {
    let mut h = Fnv::new("glaive-model-v2");
    let s = &config.sage;
    for v in [s.hidden, s.layers, s.classes, s.sample_size, s.epochs] {
        h.u64(v as u64);
    }
    h.u64(s.lr.to_bits() as u64);
    h.u64(s.seed);
    h.u64(config.bit_stride as u64);
    h.u64(config.effective_graph_stride() as u64);
    h.u64(config.instances_per_site as u64);
    h.u64(train.len() as u64);
    for d in train {
        hash_program_content(&mut h, &d.bench);
    }
    h.finish()
}

/// An on-disk artifact cache rooted at one directory.
///
/// Files are named `<kind>-<key>.bin`; writes go through a temporary file
/// and an atomic rename so concurrent pipelines never observe torn
/// artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    dir: PathBuf,
}

impl ArtifactCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> ArtifactCache {
        ArtifactCache { dir: dir.into() }
    }

    /// The conventional cache location: `$GLAIVE_CACHE_DIR` if set, else
    /// `target/glaive-cache` when running inside a cargo workspace, else
    /// a `glaive-cache` directory under the system temp dir.
    pub fn at_default_location() -> ArtifactCache {
        if let Ok(dir) = std::env::var("GLAIVE_CACHE_DIR") {
            return ArtifactCache::new(dir);
        }
        let target = Path::new("target");
        if target.is_dir() {
            return ArtifactCache::new(target.join("glaive-cache"));
        }
        ArtifactCache::new(std::env::temp_dir().join("glaive-cache"))
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, kind: &str, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{kind}-{key}.bin"))
    }

    fn load_bytes(&self, kind: &str, key: CacheKey) -> Option<Vec<u8>> {
        std::fs::read(self.path_for(kind, key)).ok()
    }

    fn store_bytes(&self, kind: &str, key: CacheKey, bytes: &[u8]) -> Result<(), Error> {
        let io = |e: std::io::Error| Error::Cache(format!("writing {kind}-{key}: {e}"));
        std::fs::create_dir_all(&self.dir).map_err(io)?;
        let tmp = self
            .dir
            .join(format!(".tmp-{kind}-{key}-{}", std::process::id()));
        std::fs::write(&tmp, bytes).map_err(io)?;
        std::fs::rename(&tmp, self.path_for(kind, key)).map_err(io)
    }

    /// Looks up cached FI ground truth. Any decode failure is a miss.
    pub fn load_truth(&self, key: CacheKey) -> Option<GroundTruth> {
        let bytes = self.load_bytes("fi", key)?;
        GroundTruth::from_bytes(&bytes).ok()
    }

    /// Stores FI ground truth under `key`.
    pub fn store_truth(&self, key: CacheKey, truth: &GroundTruth) -> Result<(), Error> {
        self.store_bytes("fi", key, &truth.to_bytes())
    }

    /// Looks up a cached trained GLAIVE model. Any decode failure is a
    /// miss.
    pub fn load_model(&self, key: CacheKey) -> Option<GraphSage> {
        let bytes = self.load_bytes("model", key)?;
        GraphSage::from_bytes(&bytes).ok()
    }

    /// Stores a trained GLAIVE model under `key`.
    pub fn store_model(&self, key: CacheKey, model: &GraphSage) -> Result<(), Error> {
        self.store_bytes("model", key, &model.to_bytes())
    }

    /// The campaign checkpoint sink for the ground truth keyed by `key`
    /// (file `ckpt-<key>.bin` in the cache directory). The supervised
    /// pipeline saves partial-campaign snapshots here and clears the file
    /// once the finished truth is stored.
    pub fn checkpoint_sink(&self, key: CacheKey) -> FileCheckpoint {
        FileCheckpoint::new(self.dir.join(format!("ckpt-{key}.bin")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use glaive_bench_suite::control::dijkstra;

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir =
            std::env::temp_dir().join(format!("glaive-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::new(dir)
    }

    #[test]
    fn keys_are_content_addressed() {
        let config = PipelineConfig::quick_test();
        let a = dijkstra::build(1);
        let same = dijkstra::build(1);
        let other_seed = dijkstra::build(2);
        assert_eq!(
            truth_key(&a, &config.campaign()),
            truth_key(&same, &config.campaign())
        );
        assert_ne!(
            truth_key(&a, &config.campaign()),
            truth_key(&other_seed, &config.campaign())
        );
    }

    #[test]
    fn keys_cover_campaign_parameters() {
        let base = PipelineConfig::quick_test();
        let bench = dijkstra::build(1);
        let k0 = truth_key(&bench, &base.campaign());

        let mut stride = base;
        stride.bit_stride = 8;
        assert_ne!(k0, truth_key(&bench, &stride.campaign()));

        let mut inst = base;
        inst.instances_per_site = 2;
        assert_ne!(k0, truth_key(&bench, &inst.campaign()));

        // Worker-thread count does not affect results, so it must not
        // affect the key.
        let mut threads = base;
        threads.threads = 5;
        assert_eq!(k0, truth_key(&bench, &threads.campaign()));
    }

    #[test]
    fn missing_artifact_is_a_miss() {
        let cache = temp_cache("miss");
        let key = truth_key(
            &dijkstra::build(1),
            &PipelineConfig::quick_test().campaign(),
        );
        assert!(cache.load_truth(key).is_none());
    }
}
