//! Experiment drivers reproducing §V of the paper. Each driver returns
//! plain row structs; the `glaive-bench` binaries format them as the
//! corresponding table or figure series.

use std::collections::HashMap;
use std::time::Instant;

use glaive_bench_suite::{Category, Split};
use glaive_faultsim::Campaign;

use crate::config::PipelineConfig;
use crate::data::{train_set, BenchData};
use crate::metrics::{bit_accuracy, program_vulnerability_error, top_k_coverage};
use crate::models::{train_models, Method, Models};
use crate::stats::{vulnerability_distribution, VulnDistribution};

/// A fully trained evaluation: the prepared suite plus one set of models
/// per distinct training split (round-robin n−1 for train/test members,
/// all-five for validation members).
#[derive(Debug)]
pub struct Evaluation {
    suite: Vec<BenchData>,
    /// Models keyed by the training-set signature (sorted names joined).
    models: HashMap<String, Models>,
    /// Test benchmark name → training-set signature.
    split_of: HashMap<String, String>,
}

impl Evaluation {
    /// Prepares models for every benchmark's evaluation split.
    ///
    /// # Panics
    ///
    /// Panics if `suite` is empty or a benchmark has no training partners.
    pub fn new(suite: Vec<BenchData>, config: &PipelineConfig) -> Evaluation {
        let mut models: HashMap<String, Models> = HashMap::new();
        let mut split_of = HashMap::new();
        for test in &suite {
            let train: Vec<&BenchData> = train_set(&suite, test).collect();
            assert!(
                !train.is_empty(),
                "benchmark {} has no same-category training partners",
                test.bench.name
            );
            let mut names: Vec<&str> = train.iter().map(|d| d.bench.name).collect();
            names.sort_unstable();
            let key = names.join("+");
            models
                .entry(key.clone())
                .or_insert_with(|| train_models(&train, config));
            split_of.insert(test.bench.name.to_string(), key);
        }
        Evaluation {
            suite,
            models,
            split_of,
        }
    }

    /// The prepared benchmarks.
    pub fn suite(&self) -> &[BenchData] {
        &self.suite
    }

    /// The benchmark data for `name`.
    ///
    /// # Panics
    ///
    /// Panics if no benchmark has that name.
    pub fn data(&self, name: &str) -> &BenchData {
        self.suite
            .iter()
            .find(|d| d.bench.name == name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
    }

    /// The models trained for evaluating `name` (i.e. *without* seeing it
    /// if it is a train/test member).
    pub fn models_for(&self, name: &str) -> &Models {
        &self.models[&self.split_of[name]]
    }

    /// Table III: per-benchmark bit-classification accuracy of GLAIVE and
    /// MLP-BIT.
    pub fn accuracy_rows(&self) -> Vec<AccuracyRow> {
        self.suite
            .iter()
            .map(|d| {
                let models = self.models_for(d.bench.name);
                let glaive_preds = models
                    .bit_predictions(Method::Glaive, d)
                    .expect("bit-level");
                let mlp_preds = models
                    .bit_predictions(Method::MlpBit, d)
                    .expect("bit-level");
                AccuracyRow {
                    benchmark: d.bench.name.to_string(),
                    category: d.bench.category,
                    split: d.bench.split,
                    glaive: bit_accuracy(&glaive_preds, d),
                    mlp_bit: bit_accuracy(&mlp_preds, d),
                }
            })
            .collect()
    }

    /// Fig. 4: top-K coverage curves for every benchmark × method over the
    /// given protection budgets (percent).
    pub fn coverage_curves(&self, ks: &[f64]) -> Vec<CoverageCurve> {
        let mut curves = Vec::new();
        for d in &self.suite {
            let models = self.models_for(d.bench.name);
            for method in Method::ALL {
                let est = models.estimate(method, d);
                let points = ks
                    .iter()
                    .map(|&k| (k, top_k_coverage(&est, d, k)))
                    .collect();
                curves.push(CoverageCurve {
                    benchmark: d.bench.name.to_string(),
                    category: d.bench.category,
                    method,
                    points,
                });
            }
        }
        curves
    }

    /// Fig. 5a: program-vulnerability error per benchmark × method.
    pub fn pv_error_rows(&self) -> Vec<PvErrorRow> {
        self.suite
            .iter()
            .map(|d| {
                let models = self.models_for(d.bench.name);
                let errors =
                    Method::ALL.map(|m| program_vulnerability_error(&models.estimate(m, d), d));
                PvErrorRow {
                    benchmark: d.bench.name.to_string(),
                    category: d.bench.category,
                    errors,
                }
            })
            .collect()
    }

    /// Fig. 2: bit-outcome composition per benchmark.
    pub fn distribution_rows(&self) -> Vec<(String, Category, VulnDistribution)> {
        self.suite
            .iter()
            .map(|d| {
                (
                    d.bench.name.to_string(),
                    d.bench.category,
                    vulnerability_distribution(d),
                )
            })
            .collect()
    }

    /// Fig. 5b: wall-clock speedup of each method's estimation over a
    /// re-run FI campaign on `name`. Estimation is timed end-to-end from
    /// extracted features (the models are already trained, as in the
    /// paper's inference-time comparison).
    pub fn runtime_report(&self, name: &str, config: &PipelineConfig) -> RuntimeReport {
        let d = self.data(name);
        let models = self.models_for(name);

        let t0 = Instant::now();
        let _ = Campaign::new(d.bench.program(), &d.bench.init_mem, config.campaign()).run();
        let fi_seconds = t0.elapsed().as_secs_f64();

        let method_seconds = Method::ALL.map(|m| {
            let t = Instant::now();
            let est = models.estimate(m, d);
            assert_eq!(est.len(), d.bench.program().len());
            t.elapsed().as_secs_f64()
        });
        RuntimeReport {
            benchmark: name.to_string(),
            fi_seconds,
            method_seconds,
        }
    }
}

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Control- or data-sensitive.
    pub category: Category,
    /// Train/test or validation membership.
    pub split: Split,
    /// GLAIVE bit-classification accuracy.
    pub glaive: f64,
    /// MLP-BIT bit-classification accuracy.
    pub mlp_bit: f64,
}

/// One Fig.-4 curve.
#[derive(Debug, Clone)]
pub struct CoverageCurve {
    /// Benchmark name.
    pub benchmark: String,
    /// Control- or data-sensitive.
    pub category: Category,
    /// Estimation method.
    pub method: Method,
    /// `(K%, coverage)` points.
    pub points: Vec<(f64, f64)>,
}

impl CoverageCurve {
    /// Mean coverage across the curve's budgets.
    pub fn mean_coverage(&self) -> f64 {
        self.points.iter().map(|&(_, c)| c).sum::<f64>() / self.points.len() as f64
    }
}

/// One row of Fig. 5a.
#[derive(Debug, Clone)]
pub struct PvErrorRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Control- or data-sensitive.
    pub category: Category,
    /// Program-vulnerability error per method, in M1..M4 order.
    pub errors: [f64; 4],
}

/// One Fig.-5b measurement.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Wall-clock seconds of the FI campaign.
    pub fi_seconds: f64,
    /// Wall-clock seconds of each method's estimation, in M1..M4 order.
    pub method_seconds: [f64; 4],
}

impl RuntimeReport {
    /// Speedup of each method over FI, in M1..M4 order.
    pub fn speedups(&self) -> [f64; 4] {
        self.method_seconds.map(|s| self.fi_seconds / s.max(1e-9))
    }
}

/// The protection budgets of Fig. 4: 5 % to 100 % in steps of 5.
pub fn paper_budgets() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 5.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::prepare_benchmark;
    use glaive_bench_suite::control::{dijkstra, sobel};

    /// A miniature two-benchmark evaluation exercising the full loop.
    fn tiny_eval() -> (Evaluation, PipelineConfig) {
        let config = PipelineConfig::quick_test();
        let suite = vec![
            prepare_benchmark(dijkstra::build(1), &config),
            prepare_benchmark(sobel::build(1), &config),
        ];
        (Evaluation::new(suite, &config), config)
    }

    #[test]
    fn round_robin_training_excludes_test_benchmark() {
        let (eval, _) = tiny_eval();
        // With two benchmarks, each is evaluated on a model trained only on
        // the other.
        assert_eq!(eval.split_of["dijkstra"], "sobel");
        assert_eq!(eval.split_of["sobel"], "dijkstra");
    }

    #[test]
    fn accuracy_rows_are_probabilities() {
        let (eval, _) = tiny_eval();
        let rows = eval.accuracy_rows();
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(
                (0.0..=1.0).contains(&r.glaive),
                "{}: {}",
                r.benchmark,
                r.glaive
            );
            assert!((0.0..=1.0).contains(&r.mlp_bit));
        }
    }

    #[test]
    fn coverage_curves_cover_all_methods_and_budgets() {
        let (eval, _) = tiny_eval();
        let ks = [10.0, 50.0, 100.0];
        let curves = eval.coverage_curves(&ks);
        assert_eq!(curves.len(), 2 * Method::ALL.len());
        for c in &curves {
            assert_eq!(c.points.len(), ks.len());
            for &(_, cov) in &c.points {
                assert!((0.0..=1.0).contains(&cov));
            }
            let m = c.mean_coverage();
            assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn pv_error_rows_are_bounded() {
        let (eval, _) = tiny_eval();
        for row in eval.pv_error_rows() {
            for e in row.errors {
                // L1 distance between two distributions is at most 2.
                assert!((0.0..=2.0).contains(&e), "{}: {e}", row.benchmark);
            }
        }
    }

    #[test]
    fn runtime_report_shows_ml_faster_than_fi() {
        let (eval, config) = tiny_eval();
        let report = eval.runtime_report("dijkstra", &config);
        assert!(report.fi_seconds > 0.0);
        for s in report.speedups() {
            assert!(s > 1.0, "estimation should beat fault injection, got {s}x");
        }
    }

    #[test]
    fn paper_budgets_match_figure_4() {
        let ks = paper_budgets();
        assert_eq!(ks.len(), 20);
        assert_eq!(ks[0], 5.0);
        assert_eq!(ks[19], 100.0);
    }
}
