//! Experiment drivers reproducing §V of the paper. Each driver returns
//! plain row structs; the `glaive-bench` binaries format them as the
//! corresponding table or figure series.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use glaive_bench_suite::{Category, Split};
use glaive_faultsim::Campaign;

use crate::cache::{model_key, ArtifactCache};
use crate::config::PipelineConfig;
use crate::data::{train_set, BenchData};
use crate::error::Error;
use crate::metrics::{bit_accuracy, program_vulnerability_error, top_k_coverage};
use crate::models::{train_models_with, Method, Models};
use crate::pipeline::resolve_workers;
use crate::stats::{vulnerability_distribution, VulnDistribution};
use crate::telemetry::{NullObserver, Observer, Stage};

/// A fully trained evaluation: the prepared suite plus one set of models
/// per distinct training split (round-robin n−1 for train/test members,
/// all-five for validation members).
#[derive(Debug)]
pub struct Evaluation {
    suite: Vec<BenchData>,
    /// Models keyed by the training-set signature (sorted names joined).
    models: HashMap<String, Models>,
    /// Test benchmark name → training-set signature.
    split_of: HashMap<String, String>,
}

impl Evaluation {
    /// Prepares models for every benchmark's evaluation split, training
    /// distinct splits concurrently on a scoped worker pool.
    ///
    /// # Errors
    ///
    /// [`Error::EmptySuite`] if `suite` is empty,
    /// [`Error::NoTrainingPartners`] if a benchmark has no same-category
    /// training partners.
    pub fn new(suite: Vec<BenchData>, config: &PipelineConfig) -> Result<Evaluation, Error> {
        Evaluation::with_runtime(suite, config, None, &NullObserver, 0)
    }

    /// [`Evaluation::new`] with the pipeline runtime threaded through:
    /// cached GLAIVE models are reused (and fresh ones written back), and
    /// per-split training timings go to `observer`.
    pub(crate) fn with_runtime(
        suite: Vec<BenchData>,
        config: &PipelineConfig,
        cache: Option<&ArtifactCache>,
        observer: &dyn Observer,
        workers: usize,
    ) -> Result<Evaluation, Error> {
        if suite.is_empty() {
            return Err(Error::EmptySuite);
        }
        let mut split_of = HashMap::new();
        let mut splits: Vec<(String, Vec<&BenchData>)> = Vec::new();
        for test in &suite {
            let train: Vec<&BenchData> = train_set(&suite, test).collect();
            if train.is_empty() {
                return Err(Error::NoTrainingPartners(test.bench.name.to_string()));
            }
            let mut names: Vec<&str> = train.iter().map(|d| d.bench.name).collect();
            names.sort_unstable();
            let key = names.join("+");
            if !splits.iter().any(|(k, _)| k == &key) {
                splits.push((key.clone(), train));
            }
            split_of.insert(test.bench.name.to_string(), key);
        }

        // Distinct splits share nothing, so train them concurrently.
        let jobs = splits.len();
        let workers = resolve_workers(workers, jobs);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<Models, Error>>>> =
            (0..jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        return;
                    }
                    let (key, train) = &splits[i];
                    let out = train_split_supervised(key, train, config, cache, observer);
                    *slots[i].lock().expect("result slot") = Some(out);
                });
            }
        });

        let mut models = HashMap::new();
        for (slot, (key, _)) in slots.into_iter().zip(splits) {
            let trained = slot
                .into_inner()
                .expect("slot lock")
                .expect("worker filled slot")?;
            models.insert(key, trained);
        }
        Ok(Evaluation {
            suite,
            models,
            split_of,
        })
    }

    /// The prepared benchmarks.
    pub fn suite(&self) -> &[BenchData] {
        &self.suite
    }

    /// The benchmark data for `name`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownBenchmark`] if no suite member has that name.
    pub fn data(&self, name: &str) -> Result<&BenchData, Error> {
        self.suite
            .iter()
            .find(|d| d.bench.name == name)
            .ok_or_else(|| Error::UnknownBenchmark(name.to_string()))
    }

    /// The models trained for evaluating `name` (i.e. *without* seeing it
    /// if it is a train/test member).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownBenchmark`] if no suite member has that name.
    pub fn models_for(&self, name: &str) -> Result<&Models, Error> {
        let key = self
            .split_of
            .get(name)
            .ok_or_else(|| Error::UnknownBenchmark(name.to_string()))?;
        Ok(&self.models[key])
    }

    /// Internal lookup for suite members, whose splits exist by
    /// construction.
    fn models_of(&self, name: &str) -> &Models {
        self.models_for(name).expect("suite member has a split")
    }

    /// Table III: per-benchmark bit-classification accuracy of GLAIVE and
    /// MLP-BIT.
    pub fn accuracy_rows(&self) -> Vec<AccuracyRow> {
        self.suite
            .iter()
            .map(|d| {
                let models = self.models_of(d.bench.name);
                let glaive_preds = models
                    .bit_predictions(Method::Glaive, d)
                    .expect("bit-level");
                let mlp_preds = models
                    .bit_predictions(Method::MlpBit, d)
                    .expect("bit-level");
                AccuracyRow {
                    benchmark: d.bench.name.to_string(),
                    category: d.bench.category,
                    split: d.bench.split,
                    glaive: bit_accuracy(&glaive_preds, d),
                    mlp_bit: bit_accuracy(&mlp_preds, d),
                }
            })
            .collect()
    }

    /// Fig. 4: top-K coverage curves for every benchmark × method over the
    /// given protection budgets (percent).
    pub fn coverage_curves(&self, ks: &[f64]) -> Vec<CoverageCurve> {
        let mut curves = Vec::new();
        for d in &self.suite {
            let models = self.models_of(d.bench.name);
            for method in Method::ALL {
                let est = models.estimate(method, d);
                let points = ks
                    .iter()
                    .map(|&k| (k, top_k_coverage(&est, d, k)))
                    .collect();
                curves.push(CoverageCurve {
                    benchmark: d.bench.name.to_string(),
                    category: d.bench.category,
                    method,
                    points,
                });
            }
        }
        curves
    }

    /// Fig. 5a: program-vulnerability error per benchmark × method.
    pub fn pv_error_rows(&self) -> Vec<PvErrorRow> {
        self.suite
            .iter()
            .map(|d| {
                let models = self.models_of(d.bench.name);
                let errors =
                    Method::ALL.map(|m| program_vulnerability_error(&models.estimate(m, d), d));
                PvErrorRow {
                    benchmark: d.bench.name.to_string(),
                    category: d.bench.category,
                    errors,
                }
            })
            .collect()
    }

    /// Fig. 2: bit-outcome composition per benchmark.
    pub fn distribution_rows(&self) -> Vec<(String, Category, VulnDistribution)> {
        self.suite
            .iter()
            .map(|d| {
                (
                    d.bench.name.to_string(),
                    d.bench.category,
                    vulnerability_distribution(d),
                )
            })
            .collect()
    }

    /// Fig. 5b: wall-clock speedup of each method's estimation over a
    /// re-run FI campaign on `name`. Estimation is timed end-to-end from
    /// extracted features (the models are already trained, as in the
    /// paper's inference-time comparison).
    pub fn runtime_report(
        &self,
        name: &str,
        config: &PipelineConfig,
    ) -> Result<RuntimeReport, Error> {
        let d = self.data(name)?;
        let models = self.models_for(name)?;

        let t0 = Instant::now();
        let _ = Campaign::try_new(d.bench.program(), &d.bench.init_mem, config.campaign())
            .expect("pipeline campaign config is validated")
            .run();
        let fi_seconds = t0.elapsed().as_secs_f64();

        let method_seconds = Method::ALL.map(|m| {
            let t = Instant::now();
            let est = models.estimate(m, d);
            assert_eq!(est.len(), d.bench.program().len());
            t.elapsed().as_secs_f64()
        });
        Ok(RuntimeReport {
            benchmark: name.to_string(),
            fi_seconds,
            method_seconds,
        })
    }
}

/// Runs [`train_split`] under `catch_unwind`: a panic inside model training
/// is isolated to its split and retried up to
/// [`PipelineConfig::stage_retries`] times, each retry perturbing the model
/// seeds so a numerically degenerate initialisation is not replayed
/// verbatim. Seeded retries change the model cache key too, so a poisoned
/// artifact is never re-read.
fn train_split_supervised(
    key: &str,
    train: &[&BenchData],
    config: &PipelineConfig,
    cache: Option<&ArtifactCache>,
    observer: &dyn Observer,
) -> Result<Models, Error> {
    let mut attempt = 0;
    loop {
        attempt += 1;
        let mut cfg = *config;
        if attempt > 1 {
            let bump = ((attempt - 1) as u64) << 32;
            cfg.sage.seed = config.sage.seed.wrapping_add(bump);
            cfg.mlp.seed = config.mlp.seed.wrapping_add(bump);
            cfg.forest.seed = config.forest.seed.wrapping_add(bump);
            cfg.svr.seed = config.svr.seed.wrapping_add(bump);
        }
        match catch_unwind(AssertUnwindSafe(|| {
            train_split(key, train, &cfg, cache, observer)
        })) {
            Ok(result) => return result,
            Err(payload) => {
                let message = crate::pipeline::panic_message(payload);
                observer.stage_failed(Stage::Training, key, attempt, &message);
                if attempt > config.stage_retries {
                    return Err(Error::StageFailed {
                        stage: Stage::Training,
                        subject: key.to_string(),
                        message,
                    });
                }
            }
        }
    }
}

/// Trains one split's models, consulting the artifact cache for the GLAIVE
/// GraphSAGE and reporting the training stage to `observer`.
fn train_split(
    key: &str,
    train: &[&BenchData],
    config: &PipelineConfig,
    cache: Option<&ArtifactCache>,
    observer: &dyn Observer,
) -> Result<Models, Error> {
    let cached = cache.and_then(|c| {
        let hit = c.load_model(model_key(train, config));
        observer.cache_lookup("model", key, hit.is_some());
        hit
    });
    let was_cached = cached.is_some();

    observer.stage_started(Stage::Training, key);
    let t0 = Instant::now();
    let models = train_models_with(train, config, cached);
    observer.stage_finished(Stage::Training, key, t0.elapsed(), train.len() as u64);

    if !was_cached {
        if let Some(c) = cache {
            c.store_model(model_key(train, config), models.glaive_model())?;
        }
    }
    Ok(models)
}

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Control- or data-sensitive.
    pub category: Category,
    /// Train/test or validation membership.
    pub split: Split,
    /// GLAIVE bit-classification accuracy.
    pub glaive: f64,
    /// MLP-BIT bit-classification accuracy.
    pub mlp_bit: f64,
}

/// One Fig.-4 curve.
#[derive(Debug, Clone)]
pub struct CoverageCurve {
    /// Benchmark name.
    pub benchmark: String,
    /// Control- or data-sensitive.
    pub category: Category,
    /// Estimation method.
    pub method: Method,
    /// `(K%, coverage)` points.
    pub points: Vec<(f64, f64)>,
}

impl CoverageCurve {
    /// Mean coverage across the curve's budgets.
    pub fn mean_coverage(&self) -> f64 {
        self.points.iter().map(|&(_, c)| c).sum::<f64>() / self.points.len() as f64
    }
}

/// One row of Fig. 5a.
#[derive(Debug, Clone)]
pub struct PvErrorRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Control- or data-sensitive.
    pub category: Category,
    /// Program-vulnerability error per method, in M1..M4 order.
    pub errors: [f64; 4],
}

/// One Fig.-5b measurement.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Wall-clock seconds of the FI campaign.
    pub fi_seconds: f64,
    /// Wall-clock seconds of each method's estimation, in M1..M4 order.
    pub method_seconds: [f64; 4],
}

impl RuntimeReport {
    /// Speedup of each method over FI, in M1..M4 order.
    pub fn speedups(&self) -> [f64; 4] {
        self.method_seconds.map(|s| self.fi_seconds / s.max(1e-9))
    }
}

/// The protection budgets of Fig. 4: 5 % to 100 % in steps of 5.
pub fn paper_budgets() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 5.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::prepare_benchmark;
    use glaive_bench_suite::control::{dijkstra, sobel};

    /// A miniature two-benchmark evaluation exercising the full loop.
    fn tiny_eval() -> (Evaluation, PipelineConfig) {
        let config = PipelineConfig::quick_test();
        let suite = vec![
            prepare_benchmark(dijkstra::build(1), &config),
            prepare_benchmark(sobel::build(1), &config),
        ];
        (Evaluation::new(suite, &config).expect("splittable"), config)
    }

    #[test]
    fn round_robin_training_excludes_test_benchmark() {
        let (eval, _) = tiny_eval();
        // With two benchmarks, each is evaluated on a model trained only on
        // the other.
        assert_eq!(eval.split_of["dijkstra"], "sobel");
        assert_eq!(eval.split_of["sobel"], "dijkstra");
    }

    #[test]
    fn accuracy_rows_are_probabilities() {
        let (eval, _) = tiny_eval();
        let rows = eval.accuracy_rows();
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(
                (0.0..=1.0).contains(&r.glaive),
                "{}: {}",
                r.benchmark,
                r.glaive
            );
            assert!((0.0..=1.0).contains(&r.mlp_bit));
        }
    }

    #[test]
    fn coverage_curves_cover_all_methods_and_budgets() {
        let (eval, _) = tiny_eval();
        let ks = [10.0, 50.0, 100.0];
        let curves = eval.coverage_curves(&ks);
        assert_eq!(curves.len(), 2 * Method::ALL.len());
        for c in &curves {
            assert_eq!(c.points.len(), ks.len());
            for &(_, cov) in &c.points {
                assert!((0.0..=1.0).contains(&cov));
            }
            let m = c.mean_coverage();
            assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn pv_error_rows_are_bounded() {
        let (eval, _) = tiny_eval();
        for row in eval.pv_error_rows() {
            for e in row.errors {
                // L1 distance between two distributions is at most 2.
                assert!((0.0..=2.0).contains(&e), "{}: {e}", row.benchmark);
            }
        }
    }

    #[test]
    fn runtime_report_shows_ml_faster_than_fi() {
        let (eval, config) = tiny_eval();
        let report = eval
            .runtime_report("dijkstra", &config)
            .expect("known name");
        assert!(report.fi_seconds > 0.0);
        for s in report.speedups() {
            assert!(s > 1.0, "estimation should beat fault injection, got {s}x");
        }
    }

    #[test]
    fn bad_inputs_surface_as_errors() {
        let config = PipelineConfig::quick_test();
        assert!(matches!(
            Evaluation::new(vec![], &config),
            Err(Error::EmptySuite)
        ));
        let lone = vec![prepare_benchmark(dijkstra::build(1), &config)];
        assert!(matches!(
            Evaluation::new(lone, &config),
            Err(Error::NoTrainingPartners(name)) if name == "dijkstra"
        ));

        let (eval, config) = tiny_eval();
        assert!(matches!(
            eval.data("nope"),
            Err(Error::UnknownBenchmark(name)) if name == "nope"
        ));
        assert!(eval.models_for("nope").is_err());
        assert!(eval.runtime_report("nope", &config).is_err());
    }

    #[test]
    fn paper_budgets_match_figure_4() {
        let ks = paper_budgets();
        assert_eq!(ks.len(), 20);
        assert_eq!(ks[0], 5.0);
        assert_eq!(ks[19], 100.0);
    }

    #[test]
    fn training_panic_is_retried_with_a_perturbed_seed() {
        use crate::telemetry::test_support::PanicOnStart;
        use crate::telemetry::TimingRecorder;
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        let mut config = PipelineConfig::quick_test();
        config.stage_retries = 1;
        let suite = vec![
            prepare_benchmark(dijkstra::build(1), &config),
            prepare_benchmark(sobel::build(1), &config),
        ];

        let panicker = Arc::new(PanicOnStart {
            stage: Stage::Training,
            subject: None,
            remaining: AtomicUsize::new(1), // fail one attempt, then recover
        });
        let recorder = Arc::new(TimingRecorder::new());
        let fan = crate::telemetry::Fanout(vec![panicker, recorder.clone()]);
        let eval = Evaluation::with_runtime(suite, &config, None, &fan, 1)
            .expect("retry recovers the split");
        assert_eq!(eval.suite().len(), 2);
        let failures = recorder.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, Stage::Training);
    }

    #[test]
    fn exhausted_training_retries_surface_as_stage_failed() {
        use crate::telemetry::test_support::PanicOnStart;
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        let config = PipelineConfig::quick_test(); // stage_retries = 0
        let suite = vec![
            prepare_benchmark(dijkstra::build(1), &config),
            prepare_benchmark(sobel::build(1), &config),
        ];
        let panicker = Arc::new(PanicOnStart {
            stage: Stage::Training,
            subject: None,
            remaining: AtomicUsize::new(usize::MAX),
        });
        let err = Evaluation::with_runtime(suite, &config, None, panicker.as_ref(), 1)
            .expect_err("training always panics");
        assert!(
            matches!(
                err,
                Error::StageFailed {
                    stage: Stage::Training,
                    ..
                }
            ),
            "{err}"
        );
    }
}
