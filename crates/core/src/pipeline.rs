//! The pipeline runtime: one configured object that runs suite
//! preparation, training and evaluation with a scoped worker pool, an
//! optional on-disk artifact cache, and stage telemetry.
//!
//! [`Pipeline`] is the Result-based front door to the crate; the free
//! functions in [`crate::data`] remain as thin cache-less wrappers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use glaive_bench_suite::{suite, Benchmark};
use glaive_faultsim::{Campaign, CampaignProgress, GroundTruth};

use crate::cache::{truth_key, ArtifactCache};
use crate::config::PipelineConfig;
use crate::data::{assemble_bench_data, BenchData};
use crate::error::Error;
use crate::experiments::Evaluation;
use crate::telemetry::{NullObserver, Observer, Stage};

/// Forwards campaign injection counts to the pipeline observer.
struct CampaignAdapter<'a> {
    observer: &'a dyn Observer,
    subject: &'a str,
}

impl CampaignProgress for CampaignAdapter<'_> {
    fn injections(&self, done: usize, total: usize) {
        self.observer
            .progress(Stage::Campaign, self.subject, done as u64, total as u64);
    }
}

/// A configured pipeline runtime.
///
/// Construct via [`Pipeline::builder`]; every entry point returns
/// `Result<_, `[`Error`]`>` — unknown names, invalid configurations,
/// un-splittable suites and cache-write failures come back as values
/// instead of panics.
#[derive(Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    cache: Option<ArtifactCache>,
    observer: Arc<dyn Observer>,
    workers: usize,
}

/// Builder for [`Pipeline`].
pub struct PipelineBuilder {
    pipeline: Pipeline,
}

impl PipelineBuilder {
    /// Attaches an on-disk artifact cache: FI ground truth and trained
    /// GLAIVE models are reused across runs when their content keys match.
    pub fn cache(mut self, cache: ArtifactCache) -> Self {
        self.pipeline.cache = Some(cache);
        self
    }

    /// Attaches the artifact cache at its conventional location
    /// ([`ArtifactCache::at_default_location`]).
    pub fn default_cache(self) -> Self {
        self.cache(ArtifactCache::at_default_location())
    }

    /// Attaches a telemetry observer (timing recorder, stderr progress, or
    /// a [`Fanout`](crate::telemetry::Fanout) of several).
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.pipeline.observer = observer;
        self
    }

    /// Suite-preparation worker threads (0 = available parallelism). Each
    /// worker prepares one benchmark at a time; campaign threads inside a
    /// worker are scaled down so the pool does not oversubscribe the
    /// machine.
    pub fn workers(mut self, n: usize) -> Self {
        self.pipeline.workers = n;
        self
    }

    /// Validates the configuration and yields the runtime.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if the pipeline configuration violates an
    /// invariant (see [`PipelineConfig::validate`]).
    pub fn build(self) -> Result<Pipeline, Error> {
        self.pipeline.config.validate()?;
        Ok(self.pipeline)
    }
}

impl Pipeline {
    /// A builder seeded with `config`, no cache, and silent telemetry.
    pub fn builder(config: PipelineConfig) -> PipelineBuilder {
        PipelineBuilder {
            pipeline: Pipeline {
                config,
                cache: None,
                observer: Arc::new(NullObserver),
                workers: 0,
            },
        }
    }

    /// A cache-less, silent pipeline over `config`.
    pub fn new(config: PipelineConfig) -> Result<Pipeline, Error> {
        Pipeline::builder(config).build()
    }

    /// The validated configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Prepares one benchmark: FI campaign (or cache hit) + graph build.
    ///
    /// # Errors
    ///
    /// [`Error::Cache`] if a freshly computed ground truth cannot be
    /// written back to the configured cache. Cache *reads* never fail — a
    /// missing or corrupt artifact is recomputed.
    pub fn prepare_benchmark(&self, bench: Benchmark) -> Result<BenchData, Error> {
        prepare_one(
            bench,
            &self.config,
            self.cache.as_ref(),
            self.observer.as_ref(),
            self.config.threads,
        )
    }

    /// Prepares the full 12-benchmark Table-II suite in parallel.
    pub fn prepare_suite(&self, seed: u64) -> Result<Vec<BenchData>, Error> {
        self.prepare_benchmarks(suite(seed))
    }

    /// Prepares an arbitrary benchmark list in parallel, preserving order.
    pub fn prepare_benchmarks(&self, benches: Vec<Benchmark>) -> Result<Vec<BenchData>, Error> {
        prepare_benchmarks_parallel(
            benches,
            &self.config,
            self.cache.as_ref(),
            self.observer.as_ref(),
            self.workers,
        )
    }

    /// Trains the round-robin model sets for `suite` (reusing cached
    /// GLAIVE models where possible) and yields the evaluation.
    ///
    /// # Errors
    ///
    /// [`Error::EmptySuite`], [`Error::NoTrainingPartners`], or
    /// [`Error::Cache`] on a model write-back failure.
    pub fn evaluation(&self, suite: Vec<BenchData>) -> Result<Evaluation, Error> {
        Evaluation::with_runtime(
            suite,
            &self.config,
            self.cache.as_ref(),
            self.observer.as_ref(),
            self.workers,
        )
    }

    /// The whole pipeline: parallel suite preparation, then training and
    /// evaluation.
    pub fn run(&self, seed: u64) -> Result<Evaluation, Error> {
        let suite = self.prepare_suite(seed)?;
        self.evaluation(suite)
    }
}

/// Campaign-or-cache plus graph build for one benchmark; the shared core
/// behind [`Pipeline::prepare_benchmark`] and the parallel driver.
fn prepare_one(
    bench: Benchmark,
    config: &PipelineConfig,
    cache: Option<&ArtifactCache>,
    observer: &dyn Observer,
    campaign_threads: usize,
) -> Result<BenchData, Error> {
    let name = bench.name;
    let truth = match load_cached_truth(&bench, config, cache, observer) {
        Some(truth) => truth,
        None => {
            observer.stage_started(Stage::Campaign, name);
            let t0 = Instant::now();
            let mut campaign_config = config.campaign();
            campaign_config.threads = campaign_threads;
            let adapter = CampaignAdapter {
                observer,
                subject: name,
            };
            let truth = Campaign::new(bench.program(), &bench.init_mem, campaign_config)
                .run_observed(&adapter);
            observer.stage_finished(
                Stage::Campaign,
                name,
                t0.elapsed(),
                truth.total_injections() as u64,
            );
            if let Some(cache) = cache {
                cache.store_truth(truth_key(&bench, &config.campaign()), &truth)?;
            }
            truth
        }
    };

    observer.stage_started(Stage::GraphBuild, name);
    let t0 = Instant::now();
    let data = assemble_bench_data(bench, config.effective_graph_stride(), truth);
    observer.stage_finished(
        Stage::GraphBuild,
        name,
        t0.elapsed(),
        data.cdfg.node_count() as u64,
    );
    Ok(data)
}

/// A cached ground truth for `bench`, if present, intact, and shaped like
/// the benchmark's program (a key collision or stale artifact fails the
/// shape check and is recomputed).
fn load_cached_truth(
    bench: &Benchmark,
    config: &PipelineConfig,
    cache: Option<&ArtifactCache>,
    observer: &dyn Observer,
) -> Option<GroundTruth> {
    let cache = cache?;
    let key = truth_key(bench, &config.campaign());
    let truth = cache
        .load_truth(key)
        .filter(|t| t.golden().exec_counts.len() == bench.program().len());
    observer.cache_lookup("fi", bench.name, truth.is_some());
    truth
}

/// The number of workers a pool should actually use.
pub(crate) fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = if requested == 0 { avail } else { requested };
    n.clamp(1, jobs.max(1))
}

/// Shared parallel driver behind [`Pipeline::prepare_benchmarks`] and the
/// cache-less [`crate::data::prepare_suite`]: a scoped worker pool pulls
/// benchmarks off an atomic queue, each worker running its campaign with a
/// share of the machine's cores so concurrent campaigns don't
/// oversubscribe it.
pub(crate) fn prepare_benchmarks_parallel(
    benches: Vec<Benchmark>,
    config: &PipelineConfig,
    cache: Option<&ArtifactCache>,
    observer: &dyn Observer,
    workers: usize,
) -> Result<Vec<BenchData>, Error> {
    let jobs = benches.len();
    if jobs == 0 {
        return Ok(Vec::new());
    }
    let workers = resolve_workers(workers, jobs);
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let campaign_budget = if config.threads == 0 {
        avail
    } else {
        config.threads
    };
    let campaign_threads = (campaign_budget / workers).max(1);

    let benches: Vec<Mutex<Option<Benchmark>>> =
        benches.into_iter().map(|b| Mutex::new(Some(b))).collect();
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<BenchData, Error>>>> =
        (0..jobs).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    return;
                }
                let bench = benches[i]
                    .lock()
                    .expect("bench slot")
                    .take()
                    .expect("each job taken once");
                let out = prepare_one(bench, config, cache, observer, campaign_threads);
                *results[i].lock().expect("result slot") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("worker filled slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TimingRecorder;
    use glaive_bench_suite::control::{dijkstra, sobel};

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir =
            std::env::temp_dir().join(format!("glaive-pipeline-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::new(dir)
    }

    #[test]
    fn resolve_workers_clamps_to_jobs() {
        assert_eq!(resolve_workers(8, 3), 3);
        assert_eq!(resolve_workers(2, 12), 2);
        assert!(resolve_workers(0, 12) >= 1);
        assert_eq!(resolve_workers(0, 0), 1);
    }

    #[test]
    fn build_rejects_invalid_config() {
        let mut config = PipelineConfig::quick_test();
        config.bit_stride = 0;
        assert!(matches!(
            Pipeline::builder(config).build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn parallel_preparation_matches_serial() {
        let config = PipelineConfig::quick_test();
        let serial = crate::data::prepare_benchmark(dijkstra::build(1), &config);
        let pipeline = Pipeline::builder(config).workers(2).build().expect("valid");
        let parallel = pipeline
            .prepare_benchmarks(vec![dijkstra::build(1), sobel::build(1)])
            .expect("no cache writes");
        assert_eq!(parallel.len(), 2);
        assert_eq!(parallel[0].bench.name, "dijkstra");
        assert_eq!(parallel[1].bench.name, "sobel");
        // Campaign results are deterministic, so parallel == serial.
        assert_eq!(parallel[0].labels, serial.labels);
        assert_eq!(parallel[0].truth.records(), serial.truth.records());
    }

    #[test]
    fn second_run_hits_the_truth_cache() {
        let config = PipelineConfig::quick_test();
        let cache = temp_cache("truth-hit");

        let rec1 = Arc::new(TimingRecorder::new());
        let p1 = Pipeline::builder(config)
            .cache(cache.clone())
            .observer(rec1.clone())
            .build()
            .expect("valid");
        let first = p1.prepare_benchmark(dijkstra::build(1)).expect("prepare");
        assert_eq!(rec1.cache_counts(), (0, 1));

        let rec2 = Arc::new(TimingRecorder::new());
        let p2 = Pipeline::builder(config)
            .cache(cache)
            .observer(rec2.clone())
            .build()
            .expect("valid");
        let second = p2.prepare_benchmark(dijkstra::build(1)).expect("prepare");
        assert_eq!(rec2.cache_counts(), (1, 0));
        // No campaign stage ran on the hit path.
        assert!(rec2.timings().iter().all(|t| t.stage != Stage::Campaign));

        assert_eq!(first.truth.records(), second.truth.records());
        assert_eq!(first.labels, second.labels);
        assert_eq!(first.fi_tuples, second.fi_tuples);
    }

    #[test]
    fn changing_campaign_parameters_invalidates_the_cache() {
        let config = PipelineConfig::quick_test();
        let cache = temp_cache("invalidate");
        Pipeline::builder(config)
            .cache(cache.clone())
            .build()
            .expect("valid")
            .prepare_benchmark(dijkstra::build(1))
            .expect("prepare");

        for altered in [
            {
                let mut c = config;
                c.bit_stride = 8;
                c
            },
            {
                let mut c = config;
                c.instances_per_site = 2;
                c
            },
        ] {
            let rec = Arc::new(TimingRecorder::new());
            Pipeline::builder(altered)
                .cache(cache.clone())
                .observer(rec.clone())
                .build()
                .expect("valid")
                .prepare_benchmark(dijkstra::build(1))
                .expect("prepare");
            assert_eq!(rec.cache_counts(), (0, 1), "altered config must miss");
        }
    }

    #[test]
    fn corrupt_cache_artifacts_fall_back_to_recompute() {
        let config = PipelineConfig::quick_test();
        let cache = temp_cache("corrupt");
        let pristine = Pipeline::builder(config)
            .cache(cache.clone())
            .build()
            .expect("valid")
            .prepare_benchmark(dijkstra::build(1))
            .expect("prepare");

        let entry = std::fs::read_dir(cache.dir())
            .expect("cache dir")
            .map(|e| e.expect("entry").path())
            .find(|p| {
                p.file_name()
                    .map(|n| n.to_string_lossy().starts_with("fi-"))
                    .unwrap_or(false)
            })
            .expect("one fi artifact");

        // Truncation and byte corruption must both read as misses.
        let bytes = std::fs::read(&entry).expect("read artifact");
        for mutation in [bytes[..bytes.len() / 2].to_vec(), {
            let mut b = bytes.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0xff;
            b
        }] {
            std::fs::write(&entry, &mutation).expect("write mutation");
            let rec = Arc::new(TimingRecorder::new());
            let again = Pipeline::builder(config)
                .cache(cache.clone())
                .observer(rec.clone())
                .build()
                .expect("valid")
                .prepare_benchmark(dijkstra::build(1))
                .expect("prepare");
            assert_eq!(rec.cache_counts(), (0, 1), "corrupt artifact must miss");
            assert_eq!(again.truth.records(), pristine.truth.records());
        }
    }
}
