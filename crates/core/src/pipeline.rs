//! The pipeline runtime: one configured object that runs suite
//! preparation, training and evaluation with a scoped worker pool, an
//! optional on-disk artifact cache, and stage telemetry.
//!
//! [`Pipeline`] is the Result-based front door to the crate; the free
//! functions in [`crate::data`] remain as thin cache-less wrappers.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use glaive_bench_suite::{suite, Benchmark};
use glaive_faultsim::{CampaignProgress, CheckpointSink, GroundTruth, InterruptReason, RunControl};

use crate::cache::{truth_key, ArtifactCache};
use crate::config::{PipelineConfig, QuorumPolicy};
use crate::data::{assemble_bench_data, BenchData};
use crate::error::Error;
use crate::experiments::Evaluation;
use crate::telemetry::{NullObserver, Observer, Stage};
use crate::truth_source::{LocalTruthSource, TruthSource};

/// Forwards campaign injection counts to the pipeline observer and mirrors
/// the caller's external cancellation flag into the suite-wide abort flag,
/// so a cancel request reaches running campaigns at batch granularity.
struct CampaignAdapter<'a> {
    observer: &'a dyn Observer,
    subject: &'a str,
    external_cancel: Option<&'a AtomicBool>,
    abort: Option<&'a AtomicBool>,
}

impl CampaignProgress for CampaignAdapter<'_> {
    fn injections(&self, done: usize, total: usize) {
        if let (Some(external), Some(abort)) = (self.external_cancel, self.abort) {
            if external.load(Ordering::Relaxed) {
                abort.store(true, Ordering::Relaxed);
            }
        }
        self.observer
            .progress(Stage::Campaign, self.subject, done as u64, total as u64);
    }
}

/// Renders a caught panic payload as a message (panics carry `&str` or
/// `String` payloads in practice).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// The fate of one benchmark under supervised suite preparation.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// Benchmark name.
    pub benchmark: String,
    /// Preparation attempts made (a panicked stage is retried up to
    /// [`PipelineConfig::stage_retries`] times; 0 = never started).
    pub attempts: usize,
    /// Wall-clock spent on this benchmark across attempts.
    pub elapsed: Duration,
    /// `None` on success; the terminal error otherwise.
    pub error: Option<Error>,
}

/// The result of supervised suite preparation: successfully prepared
/// benchmarks plus a per-benchmark success/failure/timing record, so
/// partial failures degrade gracefully instead of tearing the run down.
#[derive(Debug)]
pub struct SuiteReport {
    prepared: Vec<BenchData>,
    outcomes: Vec<BenchOutcome>,
    elapsed: Duration,
}

impl SuiteReport {
    /// Successfully prepared benchmarks, in request order.
    pub fn prepared(&self) -> &[BenchData] {
        &self.prepared
    }

    /// Extracts the prepared benchmarks, leaving the outcome records in
    /// place (for feeding an [`Evaluation`] while keeping the report).
    pub fn take_prepared(&mut self) -> Vec<BenchData> {
        std::mem::take(&mut self.prepared)
    }

    /// Per-benchmark outcomes, in request order (one per requested
    /// benchmark, successes included).
    pub fn outcomes(&self) -> &[BenchOutcome] {
        &self.outcomes
    }

    /// Wall-clock of the whole preparation.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// The outcomes that failed.
    pub fn failures(&self) -> Vec<&BenchOutcome> {
        self.outcomes.iter().filter(|o| o.error.is_some()).collect()
    }

    /// Whether every requested benchmark prepared successfully.
    pub fn is_complete(&self) -> bool {
        self.outcomes.iter().all(|o| o.error.is_none())
    }

    /// A multi-line, human-readable account of the failures (`None` when
    /// the suite is complete). Rendered by the CLI after degraded runs.
    pub fn failure_summary(&self) -> Option<String> {
        use std::fmt::Write as _;
        let failures = self.failures();
        if failures.is_empty() {
            return None;
        }
        let mut out = format!(
            "{}/{} benchmarks failed preparation:\n",
            failures.len(),
            self.outcomes.len()
        );
        for o in failures {
            let error = o.error.as_ref().expect("failures have errors");
            writeln!(
                out,
                "  {}: {error} ({} attempt{}, {:.2}s)",
                o.benchmark,
                o.attempts,
                if o.attempts == 1 { "" } else { "s" },
                o.elapsed.as_secs_f64()
            )
            .expect("write to string");
        }
        Some(out)
    }

    /// Checks the degradation policy: [`QuorumPolicy::FailFast`] rejects
    /// any failure (returning the first benchmark's error, preferring a
    /// genuine failure over a cancellation ripple), and
    /// [`QuorumPolicy::MinBenchmarks`] rejects only when too few
    /// benchmarks survived.
    ///
    /// # Errors
    ///
    /// The first failure under `FailFast`; [`Error::QuorumNotMet`] under an
    /// unsatisfied `MinBenchmarks`.
    pub fn check_quorum(&self, policy: QuorumPolicy) -> Result<(), Error> {
        match policy {
            QuorumPolicy::FailFast => match self.first_error() {
                Some(e) => Err(e.clone()),
                None => Ok(()),
            },
            QuorumPolicy::MinBenchmarks(required) => {
                let prepared = self.prepared.len();
                if prepared >= required {
                    Ok(())
                } else {
                    Err(Error::QuorumNotMet {
                        prepared,
                        required,
                        failed: self.failures().len(),
                    })
                }
            }
        }
    }

    /// The most causal error: the first non-[`Error::Interrupted`] failure
    /// in request order (under fail-fast, one genuine failure cancels the
    /// rest, so interruptions are symptoms), falling back to the first
    /// interruption when nothing genuinely failed.
    pub fn first_error(&self) -> Option<&Error> {
        let errors = || self.outcomes.iter().filter_map(|o| o.error.as_ref());
        errors()
            .find(|e| !matches!(e, Error::Interrupted { .. }))
            .or_else(|| errors().next())
    }

    /// Collapses the report into the strict all-or-nothing result of the
    /// unsupervised API.
    ///
    /// # Errors
    ///
    /// The report's [`first_error`](SuiteReport::first_error), if any.
    pub fn into_result(self) -> Result<Vec<BenchData>, Error> {
        match self.first_error() {
            Some(e) => Err(e.clone()),
            None => Ok(self.prepared),
        }
    }
}

/// A configured pipeline runtime.
///
/// Construct via [`Pipeline::builder`]; every entry point returns
/// `Result<_, `[`Error`]`>` — unknown names, invalid configurations,
/// un-splittable suites and cache-write failures come back as values
/// instead of panics.
#[derive(Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    cache: Option<ArtifactCache>,
    observer: Arc<dyn Observer>,
    truth_source: Arc<dyn TruthSource>,
    workers: usize,
    cancel: Option<Arc<AtomicBool>>,
}

/// Builder for [`Pipeline`].
pub struct PipelineBuilder {
    pipeline: Pipeline,
}

impl PipelineBuilder {
    /// Attaches an on-disk artifact cache: FI ground truth and trained
    /// GLAIVE models are reused across runs when their content keys match.
    pub fn cache(mut self, cache: ArtifactCache) -> Self {
        self.pipeline.cache = Some(cache);
        self
    }

    /// Attaches the artifact cache at its conventional location
    /// ([`ArtifactCache::at_default_location`]).
    pub fn default_cache(self) -> Self {
        self.cache(ArtifactCache::at_default_location())
    }

    /// Attaches a telemetry observer (timing recorder, stderr progress, or
    /// a [`Fanout`](crate::telemetry::Fanout) of several).
    pub fn observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.pipeline.observer = observer;
        self
    }

    /// Replaces how ground truth is produced on a cache miss (the default
    /// is a local supervised campaign, [`LocalTruthSource`]). Any
    /// conforming source — e.g. a distributed campaign fabric — is a
    /// drop-in: sources are bit-deterministic, so the artifacts cached
    /// under a truth key are identical whichever source computed them.
    pub fn truth_source(mut self, source: Arc<dyn TruthSource>) -> Self {
        self.pipeline.truth_source = source;
        self
    }

    /// Suite-preparation worker threads (0 = available parallelism). Each
    /// worker prepares one benchmark at a time; campaign threads inside a
    /// worker are scaled down so the pool does not oversubscribe the
    /// machine.
    pub fn workers(mut self, n: usize) -> Self {
        self.pipeline.workers = n;
        self
    }

    /// Attaches a cooperative cancellation flag: raising it (e.g. from a
    /// Ctrl-C handler) stops suite preparation at the next batch boundary,
    /// checkpointing interrupted campaigns.
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.pipeline.cancel = Some(flag);
        self
    }

    /// Validates the configuration and yields the runtime.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if the pipeline configuration violates an
    /// invariant (see [`PipelineConfig::validate`]).
    pub fn build(self) -> Result<Pipeline, Error> {
        self.pipeline.config.validate()?;
        Ok(self.pipeline)
    }
}

impl Pipeline {
    /// A builder seeded with `config`, no cache, and silent telemetry.
    pub fn builder(config: PipelineConfig) -> PipelineBuilder {
        PipelineBuilder {
            pipeline: Pipeline {
                config,
                cache: None,
                observer: Arc::new(NullObserver),
                truth_source: Arc::new(LocalTruthSource),
                workers: 0,
                cancel: None,
            },
        }
    }

    /// A cache-less, silent pipeline over `config`.
    pub fn new(config: PipelineConfig) -> Result<Pipeline, Error> {
        Pipeline::builder(config).build()
    }

    /// The validated configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Prepares one benchmark: FI campaign (or cache hit) + graph build.
    ///
    /// The campaign runs supervised — panics are caught and retried per
    /// [`PipelineConfig::stage_retries`], deadlines and the cancellation
    /// flag are honoured, and interrupted campaigns checkpoint into the
    /// cache for a later resume.
    ///
    /// # Errors
    ///
    /// [`Error::StageFailed`] after exhausted retries,
    /// [`Error::Interrupted`] on cancellation or deadline, [`Error::Truth`]
    /// for a degenerate benchmark, or [`Error::Cache`] if a freshly
    /// computed ground truth cannot be written back. Cache *reads* never
    /// fail — a missing or corrupt artifact is recomputed.
    pub fn prepare_benchmark(&self, bench: Benchmark) -> Result<BenchData, Error> {
        let abort = AtomicBool::new(false);
        let suite_deadline = self.config.suite_deadline.map(|d| Instant::now() + d);
        let (result, _attempts) = prepare_one_supervised(
            bench,
            &self.config,
            self.cache.as_ref(),
            self.observer.as_ref(),
            self.truth_source.as_ref(),
            self.config.threads,
            self.cancel.as_deref(),
            &abort,
            suite_deadline,
        );
        result
    }

    /// Prepares the full 12-benchmark Table-II suite in parallel.
    pub fn prepare_suite(&self, seed: u64) -> Result<Vec<BenchData>, Error> {
        self.prepare_benchmarks(suite(seed))
    }

    /// Prepares an arbitrary benchmark list in parallel, preserving order.
    ///
    /// Strict all-or-nothing view over the supervised driver: any failure
    /// is returned as this method's error. Use
    /// [`Pipeline::prepare_benchmarks_supervised`] for per-benchmark
    /// outcomes and partial results.
    pub fn prepare_benchmarks(&self, benches: Vec<Benchmark>) -> Result<Vec<BenchData>, Error> {
        self.prepare_benchmarks_supervised(benches).into_result()
    }

    /// Prepares the full suite under supervision, yielding per-benchmark
    /// outcomes instead of failing on the first error.
    pub fn prepare_suite_supervised(&self, seed: u64) -> SuiteReport {
        self.prepare_benchmarks_supervised(suite(seed))
    }

    /// Prepares an arbitrary benchmark list under supervision: panicking
    /// stages are isolated to their benchmark (and retried per
    /// [`PipelineConfig::stage_retries`]), deadlines and cancellation stop
    /// outstanding work cooperatively, interrupted campaigns checkpoint
    /// into the cache, and the report records every benchmark's fate so
    /// callers can degrade gracefully via
    /// [`SuiteReport::check_quorum`].
    pub fn prepare_benchmarks_supervised(&self, benches: Vec<Benchmark>) -> SuiteReport {
        prepare_benchmarks_supervised(
            benches,
            &self.config,
            self.cache.as_ref(),
            self.observer.as_ref(),
            self.truth_source.as_ref(),
            self.workers,
            self.cancel.as_deref(),
        )
    }

    /// Trains the round-robin model sets for `suite` (reusing cached
    /// GLAIVE models where possible) and yields the evaluation.
    ///
    /// # Errors
    ///
    /// [`Error::EmptySuite`], [`Error::NoTrainingPartners`], or
    /// [`Error::Cache`] on a model write-back failure.
    pub fn evaluation(&self, suite: Vec<BenchData>) -> Result<Evaluation, Error> {
        Evaluation::with_runtime(
            suite,
            &self.config,
            self.cache.as_ref(),
            self.observer.as_ref(),
            self.workers,
        )
    }

    /// The whole pipeline: parallel suite preparation, then training and
    /// evaluation.
    pub fn run(&self, seed: u64) -> Result<Evaluation, Error> {
        let suite = self.prepare_suite(seed)?;
        self.evaluation(suite)
    }

    /// The whole pipeline under supervision: supervised suite preparation,
    /// the configured quorum check, then training and evaluation over
    /// whatever survived. Returns the evaluation together with the
    /// preparation report (whose failure summary the caller can render).
    ///
    /// # Errors
    ///
    /// The quorum violation ([`SuiteReport::check_quorum`]) or any training
    /// error.
    pub fn run_supervised(&self, seed: u64) -> Result<(Evaluation, SuiteReport), Error> {
        let mut report = self.prepare_suite_supervised(seed);
        report.check_quorum(self.config.quorum)?;
        let eval = self.evaluation(report.take_prepared())?;
        Ok((eval, report))
    }
}

/// What stopped the suite, if anything: the external cancel flag and the
/// suite-wide abort ripple read as cancellation, then the suite deadline.
fn suite_interruption(
    external_cancel: Option<&AtomicBool>,
    abort: &AtomicBool,
    suite_deadline: Option<Instant>,
) -> Option<InterruptReason> {
    if external_cancel.is_some_and(|c| c.load(Ordering::Relaxed)) || abort.load(Ordering::Relaxed) {
        return Some(InterruptReason::Cancelled);
    }
    if suite_deadline.is_some_and(|d| Instant::now() >= d) {
        return Some(InterruptReason::DeadlineExceeded);
    }
    None
}

/// Supervised preparation of one benchmark: each attempt runs under
/// `catch_unwind` so a panic anywhere in the campaign or graph build is
/// isolated to this benchmark, and panicked attempts are retried up to
/// [`PipelineConfig::stage_retries`] times. Returns the terminal result
/// and the number of attempts made.
#[allow(clippy::too_many_arguments)]
fn prepare_one_supervised(
    bench: Benchmark,
    config: &PipelineConfig,
    cache: Option<&ArtifactCache>,
    observer: &dyn Observer,
    truth_source: &dyn TruthSource,
    campaign_threads: usize,
    external_cancel: Option<&AtomicBool>,
    abort: &AtomicBool,
    suite_deadline: Option<Instant>,
) -> (Result<BenchData, Error>, usize) {
    let name = bench.name;
    let mut attempts = 0;
    loop {
        attempts += 1;
        let current_stage = Cell::new(Stage::Campaign);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            prepare_one_attempt(
                bench.clone(),
                config,
                cache,
                observer,
                truth_source,
                campaign_threads,
                external_cancel,
                abort,
                suite_deadline,
                &current_stage,
            )
        }));
        match outcome {
            Ok(result) => return (result, attempts),
            Err(payload) => {
                let message = panic_message(payload);
                observer.stage_failed(current_stage.get(), name, attempts, &message);
                if attempts <= config.stage_retries {
                    continue;
                }
                return (
                    Err(Error::StageFailed {
                        stage: current_stage.get(),
                        subject: name.to_string(),
                        message,
                    }),
                    attempts,
                );
            }
        }
    }
}

/// One supervised preparation attempt: campaign-or-cache (with checkpoint
/// resume, cancellation and deadlines) plus graph build. `current_stage`
/// tracks where execution is so a caught panic can be attributed.
#[allow(clippy::too_many_arguments)]
fn prepare_one_attempt(
    bench: Benchmark,
    config: &PipelineConfig,
    cache: Option<&ArtifactCache>,
    observer: &dyn Observer,
    truth_source: &dyn TruthSource,
    campaign_threads: usize,
    external_cancel: Option<&AtomicBool>,
    abort: &AtomicBool,
    suite_deadline: Option<Instant>,
    current_stage: &Cell<Stage>,
) -> Result<BenchData, Error> {
    let name = bench.name;
    current_stage.set(Stage::Campaign);
    let truth = match load_cached_truth(&bench, config, cache, observer) {
        Some(truth) => truth,
        None => {
            observer.stage_started(Stage::Campaign, name);
            let t0 = Instant::now();
            let mut campaign_config = config.campaign();
            campaign_config.threads = campaign_threads;
            let adapter = CampaignAdapter {
                observer,
                subject: name,
                external_cancel,
                abort: Some(abort),
            };
            let key = truth_key(&bench, &config.campaign());
            let sink = cache.map(|c| c.checkpoint_sink(key));
            let campaign_deadline = config.campaign_deadline.map(|d| Instant::now() + d);
            let deadline = match (suite_deadline, campaign_deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let ctrl = RunControl {
                progress: &adapter,
                cancel: Some(abort),
                deadline,
                checkpoint: sink.as_ref().map(|s| s as &dyn CheckpointSink),
                checkpoint_interval: config.checkpoint_interval,
            };
            let truth = truth_source.ground_truth(&bench, campaign_config, &ctrl)?;
            // A degenerate campaign (no observations at all) cannot back
            // any vulnerability statistic — fail this benchmark's
            // preparation rather than panicking at aggregation time.
            truth.try_program_vulnerability()?;
            observer.stage_finished(
                Stage::Campaign,
                name,
                t0.elapsed(),
                truth.total_injections() as u64,
            );
            if let Some(cache) = cache {
                cache.store_truth(key, &truth)?;
                // The completed truth supersedes any partial snapshot.
                cache.checkpoint_sink(key).clear();
            }
            truth
        }
    };

    current_stage.set(Stage::GraphBuild);
    observer.stage_started(Stage::GraphBuild, name);
    let t0 = Instant::now();
    let data = assemble_bench_data(
        bench,
        config.effective_graph_stride(),
        config.timing_features,
        truth,
    );
    observer.stage_finished(
        Stage::GraphBuild,
        name,
        t0.elapsed(),
        data.cdfg.node_count() as u64,
    );
    Ok(data)
}

/// A cached ground truth for `bench`, if present, intact, and shaped like
/// the benchmark's program (a key collision or stale artifact fails the
/// shape check and is recomputed).
fn load_cached_truth(
    bench: &Benchmark,
    config: &PipelineConfig,
    cache: Option<&ArtifactCache>,
    observer: &dyn Observer,
) -> Option<GroundTruth> {
    let cache = cache?;
    let key = truth_key(bench, &config.campaign());
    let truth = cache
        .load_truth(key)
        .filter(|t| t.golden().exec_counts.len() == bench.program().len());
    observer.cache_lookup("fi", bench.name, truth.is_some());
    truth
}

/// The number of workers a pool should actually use.
pub(crate) fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = if requested == 0 { avail } else { requested };
    n.clamp(1, jobs.max(1))
}

/// Strict all-or-nothing wrapper over the supervised driver, for the
/// cache-less [`crate::data::prepare_suite`] and
/// [`Pipeline::prepare_benchmarks`].
pub(crate) fn prepare_benchmarks_parallel(
    benches: Vec<Benchmark>,
    config: &PipelineConfig,
    cache: Option<&ArtifactCache>,
    observer: &dyn Observer,
    workers: usize,
) -> Result<Vec<BenchData>, Error> {
    prepare_benchmarks_supervised(
        benches,
        config,
        cache,
        observer,
        &LocalTruthSource,
        workers,
        None,
    )
    .into_result()
}

/// Supervised parallel driver behind [`Pipeline::prepare_benchmarks_supervised`]:
/// a scoped worker pool pulls benchmarks off an atomic queue, each worker
/// running its campaign with a share of the machine's cores so concurrent
/// campaigns don't oversubscribe it. A benchmark failure is isolated to
/// its queue slot; under [`QuorumPolicy::FailFast`] it also raises the
/// suite-wide abort flag so outstanding work stops cooperatively.
#[allow(clippy::too_many_arguments)]
pub(crate) fn prepare_benchmarks_supervised(
    benches: Vec<Benchmark>,
    config: &PipelineConfig,
    cache: Option<&ArtifactCache>,
    observer: &dyn Observer,
    truth_source: &dyn TruthSource,
    workers: usize,
    external_cancel: Option<&AtomicBool>,
) -> SuiteReport {
    let t_suite = Instant::now();
    let jobs = benches.len();
    if jobs == 0 {
        return SuiteReport {
            prepared: Vec::new(),
            outcomes: Vec::new(),
            elapsed: t_suite.elapsed(),
        };
    }
    let workers = resolve_workers(workers, jobs);
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let campaign_budget = if config.threads == 0 {
        avail
    } else {
        config.threads
    };
    let campaign_threads = (campaign_budget / workers).max(1);
    let suite_deadline = config.suite_deadline.map(|d| t_suite + d);
    let abort = AtomicBool::new(false);

    let names: Vec<&str> = benches.iter().map(|b| b.name).collect();
    let benches: Vec<Mutex<Option<Benchmark>>> =
        benches.into_iter().map(|b| Mutex::new(Some(b))).collect();
    let next = AtomicUsize::new(0);
    type Slot = (Result<BenchData, Error>, usize, Duration);
    let results: Vec<Mutex<Option<Slot>>> = (0..jobs).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    return;
                }
                let bench = benches[i]
                    .lock()
                    .expect("bench slot")
                    .take()
                    .expect("each job taken once");
                let t0 = Instant::now();
                // Jobs still queued when the suite is interrupted are
                // marked, not run.
                let (out, attempts) =
                    match suite_interruption(external_cancel, &abort, suite_deadline) {
                        Some(reason) => (
                            Err(Error::Interrupted {
                                subject: names[i].to_string(),
                                reason,
                                completed: 0,
                                total: 0,
                            }),
                            0,
                        ),
                        None => prepare_one_supervised(
                            bench,
                            config,
                            cache,
                            observer,
                            truth_source,
                            campaign_threads,
                            external_cancel,
                            &abort,
                            suite_deadline,
                        ),
                    };
                // A genuine failure (not a cancellation ripple) under
                // fail-fast stops the rest of the suite.
                if config.quorum == QuorumPolicy::FailFast
                    && matches!(out, Err(ref e) if !matches!(e, Error::Interrupted { .. }))
                {
                    abort.store(true, Ordering::Relaxed);
                }
                *results[i].lock().expect("result slot") = Some((out, attempts, t0.elapsed()));
            });
        }
    });

    let mut prepared = Vec::with_capacity(jobs);
    let mut outcomes = Vec::with_capacity(jobs);
    for (slot, name) in results.into_iter().zip(names) {
        let (result, attempts, elapsed) = slot
            .into_inner()
            .expect("slot lock")
            .expect("worker filled slot");
        let error = match result {
            Ok(data) => {
                prepared.push(data);
                None
            }
            Err(e) => Some(e),
        };
        outcomes.push(BenchOutcome {
            benchmark: name.to_string(),
            attempts,
            elapsed,
            error,
        });
    }
    SuiteReport {
        prepared,
        outcomes,
        elapsed: t_suite.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::test_support::PanicOnStart;
    use crate::telemetry::{Fanout, TimingRecorder};
    use glaive_bench_suite::control::{dijkstra, sobel};

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir =
            std::env::temp_dir().join(format!("glaive-pipeline-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::new(dir)
    }

    #[test]
    fn resolve_workers_clamps_to_jobs() {
        assert_eq!(resolve_workers(8, 3), 3);
        assert_eq!(resolve_workers(2, 12), 2);
        assert!(resolve_workers(0, 12) >= 1);
        assert_eq!(resolve_workers(0, 0), 1);
    }

    #[test]
    fn build_rejects_invalid_config() {
        let mut config = PipelineConfig::quick_test();
        config.bit_stride = 0;
        assert!(matches!(
            Pipeline::builder(config).build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn parallel_preparation_matches_serial() {
        let config = PipelineConfig::quick_test();
        let serial = crate::data::prepare_benchmark(dijkstra::build(1), &config);
        let pipeline = Pipeline::builder(config).workers(2).build().expect("valid");
        let parallel = pipeline
            .prepare_benchmarks(vec![dijkstra::build(1), sobel::build(1)])
            .expect("no cache writes");
        assert_eq!(parallel.len(), 2);
        assert_eq!(parallel[0].bench.name, "dijkstra");
        assert_eq!(parallel[1].bench.name, "sobel");
        // Campaign results are deterministic, so parallel == serial.
        assert_eq!(parallel[0].labels, serial.labels);
        assert_eq!(parallel[0].truth.records(), serial.truth.records());
    }

    #[test]
    fn second_run_hits_the_truth_cache() {
        let config = PipelineConfig::quick_test();
        let cache = temp_cache("truth-hit");

        let rec1 = Arc::new(TimingRecorder::new());
        let p1 = Pipeline::builder(config)
            .cache(cache.clone())
            .observer(rec1.clone())
            .build()
            .expect("valid");
        let first = p1.prepare_benchmark(dijkstra::build(1)).expect("prepare");
        assert_eq!(rec1.cache_counts(), (0, 1));

        let rec2 = Arc::new(TimingRecorder::new());
        let p2 = Pipeline::builder(config)
            .cache(cache)
            .observer(rec2.clone())
            .build()
            .expect("valid");
        let second = p2.prepare_benchmark(dijkstra::build(1)).expect("prepare");
        assert_eq!(rec2.cache_counts(), (1, 0));
        // No campaign stage ran on the hit path.
        assert!(rec2.timings().iter().all(|t| t.stage != Stage::Campaign));

        assert_eq!(first.truth.records(), second.truth.records());
        assert_eq!(first.labels, second.labels);
        assert_eq!(first.fi_tuples, second.fi_tuples);
    }

    #[test]
    fn changing_campaign_parameters_invalidates_the_cache() {
        let config = PipelineConfig::quick_test();
        let cache = temp_cache("invalidate");
        Pipeline::builder(config)
            .cache(cache.clone())
            .build()
            .expect("valid")
            .prepare_benchmark(dijkstra::build(1))
            .expect("prepare");

        for altered in [
            {
                let mut c = config;
                c.bit_stride = 8;
                c
            },
            {
                let mut c = config;
                c.instances_per_site = 2;
                c
            },
        ] {
            let rec = Arc::new(TimingRecorder::new());
            Pipeline::builder(altered)
                .cache(cache.clone())
                .observer(rec.clone())
                .build()
                .expect("valid")
                .prepare_benchmark(dijkstra::build(1))
                .expect("prepare");
            assert_eq!(rec.cache_counts(), (0, 1), "altered config must miss");
        }
    }

    #[test]
    fn panicking_stage_is_isolated_to_its_benchmark() {
        let mut config = PipelineConfig::quick_test();
        config.quorum = QuorumPolicy::MinBenchmarks(1);
        let observer = Arc::new(PanicOnStart {
            stage: Stage::Campaign,
            subject: Some("dijkstra"),
            remaining: AtomicUsize::new(usize::MAX),
        });
        let pipeline = Pipeline::builder(config)
            .observer(observer)
            .workers(2)
            .build()
            .expect("valid");
        let report =
            pipeline.prepare_benchmarks_supervised(vec![dijkstra::build(1), sobel::build(1)]);

        assert!(!report.is_complete());
        assert_eq!(report.prepared().len(), 1);
        assert_eq!(report.prepared()[0].bench.name, "sobel");
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].benchmark, "dijkstra");
        assert!(matches!(
            failures[0].error,
            Some(Error::StageFailed {
                stage: Stage::Campaign,
                ..
            })
        ));
        let summary = report.failure_summary().expect("failures present");
        assert!(summary.contains("dijkstra"), "{summary}");
        assert!(summary.contains("synthetic campaign failure"), "{summary}");

        assert!(report.check_quorum(QuorumPolicy::MinBenchmarks(1)).is_ok());
        assert!(matches!(
            report.check_quorum(QuorumPolicy::MinBenchmarks(2)),
            Err(Error::QuorumNotMet {
                prepared: 1,
                required: 2,
                failed: 1
            })
        ));
        assert!(report.check_quorum(QuorumPolicy::FailFast).is_err());
    }

    #[test]
    fn panicked_stage_is_retried_and_attempts_are_recorded() {
        let mut config = PipelineConfig::quick_test();
        config.stage_retries = 1;
        let panicker = Arc::new(PanicOnStart {
            stage: Stage::Campaign,
            subject: Some("dijkstra"),
            remaining: AtomicUsize::new(1), // fail the first attempt only
        });
        let recorder = Arc::new(TimingRecorder::new());
        let pipeline = Pipeline::builder(config)
            .observer(Arc::new(Fanout(vec![panicker, recorder.clone()])))
            .build()
            .expect("valid");
        let report = pipeline.prepare_benchmarks_supervised(vec![dijkstra::build(1)]);

        assert!(report.is_complete(), "{:?}", report.failure_summary());
        assert_eq!(report.outcomes()[0].attempts, 2);
        let failures = recorder.failures();
        assert_eq!(failures.len(), 1, "one failed attempt went to telemetry");
        assert_eq!(failures[0], (Stage::Campaign, "dijkstra".to_string()));
    }

    #[test]
    fn expired_suite_deadline_interrupts_queued_benchmarks() {
        let mut config = PipelineConfig::quick_test();
        config.suite_deadline = Some(Duration::ZERO);
        let pipeline = Pipeline::builder(config).build().expect("valid");
        let report =
            pipeline.prepare_benchmarks_supervised(vec![dijkstra::build(1), sobel::build(1)]);
        assert_eq!(report.prepared().len(), 0);
        for outcome in report.outcomes() {
            assert!(
                matches!(
                    outcome.error,
                    Some(Error::Interrupted {
                        reason: InterruptReason::DeadlineExceeded,
                        ..
                    })
                ),
                "{}: {:?}",
                outcome.benchmark,
                outcome.error
            );
        }
        assert!(matches!(
            report.check_quorum(QuorumPolicy::MinBenchmarks(1)),
            Err(Error::QuorumNotMet { .. })
        ));
    }

    /// Raises the pipeline's external cancel flag once campaign progress
    /// starts flowing — simulates a Ctrl-C arriving mid-campaign.
    struct CancelOnProgress {
        flag: Arc<AtomicBool>,
    }

    impl Observer for CancelOnProgress {
        fn progress(&self, stage: Stage, _subject: &str, done: u64, _total: u64) {
            if stage == Stage::Campaign && done > 0 {
                self.flag.store(true, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn cancelled_campaign_checkpoints_into_cache_and_resumes_identically() {
        let config = PipelineConfig::quick_test();
        let cache = temp_cache("ckpt-resume");
        let reference = crate::data::prepare_benchmark(dijkstra::build(1), &config);
        let key = truth_key(&dijkstra::build(1), &config.campaign());

        let cancel = Arc::new(AtomicBool::new(false));
        let pipeline = Pipeline::builder(config)
            .cache(cache.clone())
            .observer(Arc::new(CancelOnProgress {
                flag: cancel.clone(),
            }))
            .cancel_flag(cancel)
            .build()
            .expect("valid");
        let err = pipeline
            .prepare_benchmark(dijkstra::build(1))
            .expect_err("cancelled mid-campaign");
        assert!(
            matches!(
                err,
                Error::Interrupted {
                    reason: InterruptReason::Cancelled,
                    ..
                }
            ),
            "{err}"
        );
        assert!(
            cache.checkpoint_sink(key).load().is_some(),
            "interruption leaves a checkpoint behind"
        );

        // A fresh pipeline over the same cache resumes from the checkpoint,
        // completes, and reproduces the uninterrupted truth byte-for-byte.
        let resumed = Pipeline::builder(config)
            .cache(cache.clone())
            .build()
            .expect("valid")
            .prepare_benchmark(dijkstra::build(1))
            .expect("resume completes");
        assert_eq!(resumed.truth.to_bytes(), reference.truth.to_bytes());
        assert_eq!(resumed.labels, reference.labels);
        assert!(
            cache.checkpoint_sink(key).load().is_none(),
            "completed truth supersedes the checkpoint"
        );
        assert!(
            cache.load_truth(key).is_some(),
            "finished truth landed in the cache"
        );
    }

    /// The `train_threads` knob must never perturb persisted artifacts:
    /// a 4-threaded pipeline interrupted mid-campaign leaves a GLVCKPT1
    /// checkpoint a 1-threaded pipeline resumes to byte-identical truth,
    /// and models trained at 4 threads serialise to the same GLVFIT01
    /// bytes as at 1 thread.
    #[test]
    fn train_threads_do_not_perturb_models_or_checkpoint_resume() {
        let mut serial_cfg = PipelineConfig::quick_test();
        serial_cfg.train_threads = 1;
        let mut threaded_cfg = serial_cfg;
        threaded_cfg.train_threads = 4;

        // Reference: uninterrupted serial preparation + serial training.
        let prepared = [
            crate::data::prepare_benchmark(dijkstra::build(1), &serial_cfg),
            crate::data::prepare_benchmark(sobel::build(1), &serial_cfg),
        ];
        let refs: Vec<&BenchData> = prepared.iter().collect();
        let serial_model = crate::models::train_models(&refs, &serial_cfg)
            .glaive_model()
            .to_bytes();

        // Train 4-threaded on a pipeline cancelled mid-campaign: the
        // interruption leaves a checkpoint behind...
        let cache = temp_cache("train-threads");
        let key = truth_key(&dijkstra::build(1), &threaded_cfg.campaign());
        let cancel = Arc::new(AtomicBool::new(false));
        let err = Pipeline::builder(threaded_cfg)
            .cache(cache.clone())
            .observer(Arc::new(CancelOnProgress {
                flag: cancel.clone(),
            }))
            .cancel_flag(cancel)
            .build()
            .expect("valid")
            .prepare_benchmark(dijkstra::build(1))
            .expect_err("cancelled mid-campaign");
        assert!(matches!(err, Error::Interrupted { .. }), "{err}");
        let checkpoint = cache
            .checkpoint_sink(key)
            .load()
            .expect("interruption leaves a checkpoint behind");

        // ...that a 1-threaded pipeline resumes to the same truth bytes.
        let resumed = Pipeline::builder(serial_cfg)
            .cache(cache.clone())
            .build()
            .expect("valid")
            .prepare_benchmark(dijkstra::build(1))
            .expect("resume completes");
        assert_eq!(resumed.truth.to_bytes(), prepared[0].truth.to_bytes());
        assert!(!checkpoint.is_empty(), "checkpoint bytes were persisted");

        // And 4-threaded training on the resumed data reproduces the
        // serial model bytes exactly.
        let threaded_prepared = [resumed, prepared[1].clone()];
        let threaded_refs: Vec<&BenchData> = threaded_prepared.iter().collect();
        let threaded_model = crate::models::train_models(&threaded_refs, &threaded_cfg)
            .glaive_model()
            .to_bytes();
        assert_eq!(
            threaded_model, serial_model,
            "4-thread training diverged from serial"
        );
    }

    #[test]
    fn corrupt_cache_artifacts_fall_back_to_recompute() {
        let config = PipelineConfig::quick_test();
        let cache = temp_cache("corrupt");
        let pristine = Pipeline::builder(config)
            .cache(cache.clone())
            .build()
            .expect("valid")
            .prepare_benchmark(dijkstra::build(1))
            .expect("prepare");

        let entry = std::fs::read_dir(cache.dir())
            .expect("cache dir")
            .map(|e| e.expect("entry").path())
            .find(|p| {
                p.file_name()
                    .map(|n| n.to_string_lossy().starts_with("fi-"))
                    .unwrap_or(false)
            })
            .expect("one fi artifact");

        // Truncation and byte corruption must both read as misses.
        let bytes = std::fs::read(&entry).expect("read artifact");
        for mutation in [bytes[..bytes.len() / 2].to_vec(), {
            let mut b = bytes.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0xff;
            b
        }] {
            std::fs::write(&entry, &mutation).expect("write mutation");
            let rec = Arc::new(TimingRecorder::new());
            let again = Pipeline::builder(config)
                .cache(cache.clone())
                .observer(rec.clone())
                .build()
                .expect("valid")
                .prepare_benchmark(dijkstra::build(1))
                .expect("prepare");
            assert_eq!(rec.cache_counts(), (0, 1), "corrupt artifact must miss");
            assert_eq!(again.truth.records(), pristine.truth.records());
        }
    }
}
