use std::time::Duration;

use glaive_cdfg::CdfgConfig;
use glaive_faultsim::CampaignConfig;
use glaive_gnn::SageConfig;
use glaive_ml::{ForestConfig, MlpConfig, SvrConfig};

use crate::error::Error;

/// How many benchmarks must survive suite preparation for the run to
/// proceed — the graceful-degradation policy of the supervised pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumPolicy {
    /// Any benchmark failure fails the suite and cancels outstanding work.
    FailFast,
    /// Proceed on partial results as long as at least this many benchmarks
    /// prepared successfully (must be ≥ 1).
    MinBenchmarks(usize),
}

/// End-to-end pipeline configuration: one shared bit stride (the campaign
/// and the CDFG must sample the same bit positions so FI labels join onto
/// graph nodes) plus per-model hyperparameters.
///
/// Construct via [`PipelineConfig::builder`] to have the stride invariants
/// checked up front; the struct remains openly constructible for tests and
/// callers that know their values are valid (the campaign still asserts
/// the hard invariants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Bit-position sampling stride shared by FI and graph construction
    /// (1 = all 64 bits as in the paper; the default 8 keeps the
    /// from-scratch CPU pipeline fast — see DESIGN.md §1).
    pub bit_stride: usize,
    /// Graph-side stride override for the word-vs-bit representation
    /// ablation; `None` follows `bit_stride`. Must be a multiple of
    /// `bit_stride`, otherwise FI labels fail to join onto graph nodes —
    /// [`PipelineConfigBuilder::build`] enforces this.
    pub graph_stride: Option<usize>,
    /// Dynamic instances sampled per fault site.
    pub instances_per_site: usize,
    /// FI worker threads (0 = available parallelism).
    pub threads: usize,
    /// GNN training worker threads for data-parallel gradient computation
    /// across the per-benchmark splits (0 = available parallelism). Any
    /// value yields bit-identical models — the gradient merge uses a fixed
    /// reduction tree (see DESIGN.md §16) — so this knob never enters the
    /// model cache key.
    pub train_threads: usize,
    /// GLAIVE model hyperparameters.
    pub sage: SageConfig,
    /// MLP-BIT hyperparameters.
    pub mlp: MlpConfig,
    /// RF-INST hyperparameters.
    pub forest: ForestConfig,
    /// SVM-INST hyperparameters.
    pub svr: SvrConfig,
    /// Also train the vanilla (all-neighbour) GraphSAGE for the
    /// aggregator ablation (doubles GNN training time).
    pub train_vanilla: bool,
    /// Append per-node dynamic timing features (issue cycle, residency,
    /// stall share — from a golden-run `glaive-timing` profile under the
    /// in-order cost model) to the CDFG feature matrix. Off by default:
    /// timing-featured models have a wider input dimension than the static
    /// `glaive_cdfg::FEATURE_DIM` the model server expects, so this is an
    /// experiment-side ablation knob (BENCH_9), not a serving option.
    pub timing_features: bool,
    /// Soft wall-clock deadline for one benchmark's FI campaign; the
    /// campaign stops at the next batch boundary past it. `None` = no
    /// limit.
    pub campaign_deadline: Option<Duration>,
    /// Soft wall-clock deadline for preparing the whole suite; queued
    /// benchmarks past it are not started and running campaigns stop
    /// cooperatively. `None` = no limit.
    pub suite_deadline: Option<Duration>,
    /// How many times a stage that *panicked* is retried before its failure
    /// is recorded (training retries perturb the model seed).
    pub stage_retries: usize,
    /// Save a campaign checkpoint every this many new injections when a
    /// cache is attached (0 disables periodic checkpoints).
    pub checkpoint_interval: usize,
    /// Partial-suite degradation policy for supervised preparation.
    pub quorum: QuorumPolicy,
}

impl Default for PipelineConfig {
    /// Experiment-scale defaults: stride 8, a 3-layer hidden-64 GraphSAGE
    /// trained for 60 full-batch epochs. Suitable for release-mode
    /// experiment runs (minutes for the full 12-benchmark suite).
    fn default() -> Self {
        PipelineConfig {
            bit_stride: 8,
            graph_stride: None,
            instances_per_site: 2,
            threads: 0,
            train_threads: 0,
            sage: SageConfig {
                hidden: 64,
                layers: 3,
                classes: 3,
                sample_size: 50,
                lr: 5e-3,
                epochs: 60,
                seed: 1,
            },
            mlp: MlpConfig {
                hidden: 100,
                lr: 2e-3,
                epochs: 120,
                seed: 1,
            },
            forest: ForestConfig::default(),
            svr: SvrConfig::default(),
            train_vanilla: false,
            timing_features: false,
            campaign_deadline: None,
            suite_deadline: None,
            stage_retries: 1,
            checkpoint_interval: 4096,
            quorum: QuorumPolicy::FailFast,
        }
    }
}

impl PipelineConfig {
    /// A heavily subsampled configuration for unit tests and debug builds:
    /// stride 16, one instance per site, small/short models.
    pub fn quick_test() -> Self {
        PipelineConfig {
            bit_stride: 16,
            graph_stride: None,
            instances_per_site: 1,
            threads: 0,
            train_threads: 0,
            sage: SageConfig {
                hidden: 16,
                layers: 2,
                classes: 3,
                sample_size: 20,
                lr: 1e-2,
                epochs: 15,
                seed: 1,
            },
            mlp: MlpConfig {
                hidden: 24,
                lr: 5e-3,
                epochs: 30,
                seed: 1,
            },
            forest: ForestConfig {
                trees: 15,
                ..ForestConfig::default()
            },
            svr: SvrConfig {
                rff_dim: 32,
                epochs: 20,
                ..SvrConfig::default()
            },
            train_vanilla: true,
            timing_features: false,
            campaign_deadline: None,
            suite_deadline: None,
            stage_retries: 0,
            checkpoint_interval: 256,
            quorum: QuorumPolicy::FailFast,
        }
    }

    /// The fault-campaign configuration implied by this pipeline config.
    pub fn campaign(&self) -> CampaignConfig {
        CampaignConfig {
            bit_stride: self.bit_stride,
            instances_per_site: self.instances_per_site,
            hang_factor: 4,
            threads: self.threads,
            predict_dead_defs: true,
        }
    }

    /// The CDFG configuration implied by this pipeline config.
    pub fn cdfg(&self) -> CdfgConfig {
        CdfgConfig {
            bit_stride: self.effective_graph_stride(),
        }
    }

    /// The stride graphs are actually built at: the override if set, else
    /// the shared `bit_stride`.
    pub fn effective_graph_stride(&self) -> usize {
        self.graph_stride.unwrap_or(self.bit_stride)
    }

    /// A validating builder seeded with the experiment-scale defaults.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            config: PipelineConfig::default(),
        }
    }

    /// A validating builder seeded with this configuration.
    pub fn to_builder(self) -> PipelineConfigBuilder {
        PipelineConfigBuilder { config: self }
    }

    /// Checks every invariant the builder enforces. Useful for configs
    /// assembled by hand (e.g. from CLI flags).
    pub fn validate(&self) -> Result<(), Error> {
        let invalid = |msg: String| Err(Error::InvalidConfig(msg));
        if self.bit_stride < 1 || self.bit_stride > glaive_isa::WORD_BITS {
            return invalid(format!(
                "bit_stride must be in 1..={}, got {}",
                glaive_isa::WORD_BITS,
                self.bit_stride
            ));
        }
        if self.instances_per_site < 1 {
            return invalid("instances_per_site must be at least 1".to_string());
        }
        if let Some(g) = self.graph_stride {
            if g < self.bit_stride || g > glaive_isa::WORD_BITS || g % self.bit_stride != 0 {
                return invalid(format!(
                    "graph_stride ({g}) must be a multiple of the campaign bit_stride ({}) \
                     within 1..={}, or FI labels fail to join onto graph nodes",
                    self.bit_stride,
                    glaive_isa::WORD_BITS
                ));
            }
        }
        if self.sage.classes != 3 {
            return invalid(format!(
                "sage.classes must be 3 (Masked/SDC/Crash), got {}",
                self.sage.classes
            ));
        }
        if self.sage.layers == 0 || self.sage.hidden == 0 {
            return invalid("sage needs at least one layer and a non-zero hidden dim".to_string());
        }
        if self.quorum == QuorumPolicy::MinBenchmarks(0) {
            return invalid(
                "quorum MinBenchmarks(0) would accept an empty suite; use at least 1".to_string(),
            );
        }
        Ok(())
    }
}

/// Builder for [`PipelineConfig`] that validates the cross-field stride
/// invariants on [`build`](PipelineConfigBuilder::build), instead of
/// leaving them to a doc comment.
#[derive(Debug, Clone)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Campaign + graph bit-position sampling stride.
    pub fn bit_stride(mut self, stride: usize) -> Self {
        self.config.bit_stride = stride;
        self
    }

    /// Graph-side stride override (word-vs-bit ablation); must be a
    /// multiple of `bit_stride`.
    pub fn graph_stride(mut self, stride: usize) -> Self {
        self.config.graph_stride = Some(stride);
        self
    }

    /// Dynamic instances sampled per fault site.
    pub fn instances_per_site(mut self, n: usize) -> Self {
        self.config.instances_per_site = n;
        self
    }

    /// FI worker threads (0 = available parallelism).
    pub fn threads(mut self, n: usize) -> Self {
        self.config.threads = n;
        self
    }

    /// GNN training worker threads (0 = available parallelism); any value
    /// trains to bit-identical models.
    pub fn train_threads(mut self, n: usize) -> Self {
        self.config.train_threads = n;
        self
    }

    /// Whether to also train the vanilla all-neighbour GraphSAGE.
    pub fn train_vanilla(mut self, yes: bool) -> Self {
        self.config.train_vanilla = yes;
        self
    }

    /// Whether to append per-node dynamic timing features to the CDFG
    /// feature matrix (experiment-side ablation; widens the model input
    /// beyond what the model server serves).
    pub fn timing_features(mut self, yes: bool) -> Self {
        self.config.timing_features = yes;
        self
    }

    /// Soft wall-clock deadline for one benchmark's FI campaign.
    pub fn campaign_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.config.campaign_deadline = deadline;
        self
    }

    /// Soft wall-clock deadline for preparing the whole suite.
    pub fn suite_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.config.suite_deadline = deadline;
        self
    }

    /// How many times a panicked stage is retried.
    pub fn stage_retries(mut self, retries: usize) -> Self {
        self.config.stage_retries = retries;
        self
    }

    /// Campaign checkpoint frequency, in new injections per snapshot.
    pub fn checkpoint_interval(mut self, interval: usize) -> Self {
        self.config.checkpoint_interval = interval;
        self
    }

    /// Partial-suite degradation policy.
    pub fn quorum(mut self, quorum: QuorumPolicy) -> Self {
        self.config.quorum = quorum;
        self
    }

    /// GLAIVE GraphSAGE hyperparameters.
    pub fn sage(mut self, sage: SageConfig) -> Self {
        self.config.sage = sage;
        self
    }

    /// MLP-BIT hyperparameters.
    pub fn mlp(mut self, mlp: MlpConfig) -> Self {
        self.config.mlp = mlp;
        self
    }

    /// RF-INST hyperparameters.
    pub fn forest(mut self, forest: ForestConfig) -> Self {
        self.config.forest = forest;
        self
    }

    /// SVM-INST hyperparameters.
    pub fn svr(mut self, svr: SvrConfig) -> Self {
        self.config.svr = svr;
        self
    }

    /// Validates and yields the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] naming the violated invariant: zero or
    /// oversized strides, a graph stride that is not a multiple of the
    /// campaign stride, zero instances per site, or degenerate model
    /// shapes.
    pub fn build(self) -> Result<PipelineConfig, Error> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_consistent_between_campaign_and_cdfg() {
        let c = PipelineConfig::default();
        assert_eq!(c.campaign().bit_stride, c.cdfg().bit_stride);
        let q = PipelineConfig::quick_test();
        assert_eq!(q.campaign().bit_stride, q.cdfg().bit_stride);
    }

    #[test]
    fn defaults_follow_paper_shape() {
        let c = PipelineConfig::default();
        assert_eq!(c.sage.layers, 3);
        assert_eq!(c.sage.classes, 3);
        assert_eq!(c.sage.sample_size, 50);
    }

    #[test]
    fn builder_accepts_valid_configs() {
        let c = PipelineConfig::builder()
            .bit_stride(4)
            .graph_stride(16)
            .instances_per_site(3)
            .threads(2)
            .train_vanilla(true)
            .build()
            .expect("valid");
        assert_eq!(c.bit_stride, 4);
        assert_eq!(c.effective_graph_stride(), 16);
        assert_eq!(c.cdfg().bit_stride, 16);
        assert_eq!(c.campaign().bit_stride, 4);
        assert_eq!(c.instances_per_site, 3);
    }

    #[test]
    fn builder_rejects_invalid_strides() {
        assert!(PipelineConfig::builder().bit_stride(0).build().is_err());
        assert!(PipelineConfig::builder().bit_stride(128).build().is_err());
        assert!(PipelineConfig::builder()
            .instances_per_site(0)
            .build()
            .is_err());
        // Graph stride must be a multiple of the campaign stride...
        let err = PipelineConfig::builder()
            .bit_stride(8)
            .graph_stride(12)
            .build()
            .expect_err("12 is not a multiple of 8");
        assert!(err.to_string().contains("multiple"), "{err}");
        // ...and cannot be finer than it.
        assert!(PipelineConfig::builder()
            .bit_stride(16)
            .graph_stride(8)
            .build()
            .is_err());
        // Word-level ablation stays valid.
        assert!(PipelineConfig::builder()
            .bit_stride(8)
            .graph_stride(64)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_degenerate_models() {
        let mut sage = PipelineConfig::default().sage;
        sage.classes = 2;
        assert!(PipelineConfig::builder().sage(sage).build().is_err());
    }

    #[test]
    fn to_builder_roundtrips() {
        let c = PipelineConfig::quick_test();
        assert_eq!(c.to_builder().build().expect("still valid"), c);
    }

    #[test]
    fn timing_features_default_off_and_builder_settable() {
        assert!(!PipelineConfig::default().timing_features);
        assert!(!PipelineConfig::quick_test().timing_features);
        let c = PipelineConfig::builder()
            .timing_features(true)
            .build()
            .expect("valid");
        assert!(c.timing_features);
        assert_eq!(c.to_builder().build().expect("still valid"), c);
    }

    #[test]
    fn builder_validates_supervision_fields() {
        let err = PipelineConfig::builder()
            .quorum(QuorumPolicy::MinBenchmarks(0))
            .build()
            .expect_err("an empty quorum is meaningless");
        assert!(err.to_string().contains("quorum"), "{err}");
        let c = PipelineConfig::builder()
            .quorum(QuorumPolicy::MinBenchmarks(3))
            .campaign_deadline(Some(Duration::from_secs(30)))
            .suite_deadline(Some(Duration::from_secs(120)))
            .stage_retries(2)
            .checkpoint_interval(512)
            .build()
            .expect("valid");
        assert_eq!(c.quorum, QuorumPolicy::MinBenchmarks(3));
        assert_eq!(c.stage_retries, 2);
        assert_eq!(c.checkpoint_interval, 512);
    }
}
