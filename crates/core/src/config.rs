use glaive_cdfg::CdfgConfig;
use glaive_faultsim::CampaignConfig;
use glaive_gnn::SageConfig;
use glaive_ml::{ForestConfig, MlpConfig, SvrConfig};

/// End-to-end pipeline configuration: one shared bit stride (the campaign
/// and the CDFG must sample the same bit positions so FI labels join onto
/// graph nodes) plus per-model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Bit-position sampling stride shared by FI and graph construction
    /// (1 = all 64 bits as in the paper; the default 8 keeps the
    /// from-scratch CPU pipeline fast — see DESIGN.md §1).
    pub bit_stride: usize,
    /// Dynamic instances sampled per fault site.
    pub instances_per_site: usize,
    /// FI worker threads (0 = available parallelism).
    pub threads: usize,
    /// GLAIVE model hyperparameters.
    pub sage: SageConfig,
    /// MLP-BIT hyperparameters.
    pub mlp: MlpConfig,
    /// RF-INST hyperparameters.
    pub forest: ForestConfig,
    /// SVM-INST hyperparameters.
    pub svr: SvrConfig,
    /// Also train the vanilla (all-neighbour) GraphSAGE for the
    /// aggregator ablation (doubles GNN training time).
    pub train_vanilla: bool,
}

impl Default for PipelineConfig {
    /// Experiment-scale defaults: stride 8, a 3-layer hidden-64 GraphSAGE
    /// trained for 60 full-batch epochs. Suitable for release-mode
    /// experiment runs (minutes for the full 12-benchmark suite).
    fn default() -> Self {
        PipelineConfig {
            bit_stride: 8,
            instances_per_site: 2,
            threads: 0,
            sage: SageConfig {
                hidden: 64,
                layers: 3,
                classes: 3,
                sample_size: 50,
                lr: 5e-3,
                epochs: 60,
                seed: 1,
            },
            mlp: MlpConfig {
                hidden: 100,
                lr: 2e-3,
                epochs: 120,
                seed: 1,
            },
            forest: ForestConfig::default(),
            svr: SvrConfig::default(),
            train_vanilla: false,
        }
    }
}

impl PipelineConfig {
    /// A heavily subsampled configuration for unit tests and debug builds:
    /// stride 16, one instance per site, small/short models.
    pub fn quick_test() -> Self {
        PipelineConfig {
            bit_stride: 16,
            instances_per_site: 1,
            threads: 0,
            sage: SageConfig {
                hidden: 16,
                layers: 2,
                classes: 3,
                sample_size: 20,
                lr: 1e-2,
                epochs: 15,
                seed: 1,
            },
            mlp: MlpConfig {
                hidden: 24,
                lr: 5e-3,
                epochs: 30,
                seed: 1,
            },
            forest: ForestConfig {
                trees: 15,
                ..ForestConfig::default()
            },
            svr: SvrConfig {
                rff_dim: 32,
                epochs: 20,
                ..SvrConfig::default()
            },
            train_vanilla: true,
        }
    }

    /// The fault-campaign configuration implied by this pipeline config.
    pub fn campaign(&self) -> CampaignConfig {
        CampaignConfig {
            bit_stride: self.bit_stride,
            instances_per_site: self.instances_per_site,
            hang_factor: 4,
            threads: self.threads,
            predict_dead_defs: true,
        }
    }

    /// The CDFG configuration implied by this pipeline config.
    pub fn cdfg(&self) -> CdfgConfig {
        CdfgConfig {
            bit_stride: self.bit_stride,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_consistent_between_campaign_and_cdfg() {
        let c = PipelineConfig::default();
        assert_eq!(c.campaign().bit_stride, c.cdfg().bit_stride);
        let q = PipelineConfig::quick_test();
        assert_eq!(q.campaign().bit_stride, q.cdfg().bit_stride);
    }

    #[test]
    fn defaults_follow_paper_shape() {
        let c = PipelineConfig::default();
        assert_eq!(c.sage.layers, 3);
        assert_eq!(c.sage.classes, 3);
        assert_eq!(c.sage.sample_size, 50);
    }
}
