use std::fmt;

use glaive_faultsim::{InterruptReason, TruthError};

use crate::models::Method;
use crate::telemetry::Stage;

/// Errors surfaced by the public pipeline API.
///
/// Every fallible entry point of this crate returns `Result<_, Error>`
/// instead of panicking: unknown benchmark or method names, invalid
/// configurations, suites that cannot be split for training, and artifact
/// I/O failures all come back as values the caller can report or recover
/// from. (Cache *corruption* is deliberately not an error — the cache
/// falls back to recomputation.)
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A benchmark name did not match any suite member.
    UnknownBenchmark(String),
    /// The suite passed to [`Evaluation::new`](crate::experiments::Evaluation::new)
    /// was empty.
    EmptySuite,
    /// A benchmark has no same-category training partners, so no
    /// round-robin model set can be trained for it.
    NoTrainingPartners(String),
    /// A bit-level operation was requested of an instruction-level method.
    NotBitLevel(Method),
    /// A configuration invariant was violated; the message names it.
    InvalidConfig(String),
    /// An artifact-cache write failed (reads never fail — a bad artifact is
    /// a miss). The message carries the underlying I/O error.
    Cache(String),
    /// A ground-truth aggregation failed (e.g. a degenerate benchmark with
    /// no fault-injection observations).
    Truth(TruthError),
    /// A pipeline stage failed (typically a panic caught inside a worker,
    /// after exhausting any configured retries); the failure is isolated to
    /// its subject and the rest of the suite proceeds.
    StageFailed {
        /// Which stage failed.
        stage: Stage,
        /// Benchmark name or split signature the stage ran for.
        subject: String,
        /// The panic payload or underlying error message.
        message: String,
    },
    /// Work was stopped by cancellation or a deadline before completing.
    Interrupted {
        /// Benchmark name the interruption hit.
        subject: String,
        /// What stopped the work.
        reason: InterruptReason,
        /// Work units complete at the stop.
        completed: usize,
        /// Work units planned.
        total: usize,
    },
    /// Too few benchmarks survived suite preparation to satisfy the
    /// configured quorum policy.
    QuorumNotMet {
        /// Benchmarks successfully prepared.
        prepared: usize,
        /// Minimum the quorum policy requires.
        required: usize,
        /// Benchmarks that failed preparation.
        failed: usize,
    },
}

impl From<TruthError> for Error {
    fn from(e: TruthError) -> Error {
        Error::Truth(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownBenchmark(name) => {
                write!(f, "unknown benchmark `{name}` (run `glaive-cli list`)")
            }
            Error::EmptySuite => write!(f, "evaluation needs a non-empty benchmark suite"),
            Error::NoTrainingPartners(name) => write!(
                f,
                "benchmark `{name}` has no same-category training partners"
            ),
            Error::NotBitLevel(method) => write!(
                f,
                "{} is instruction-level and has no per-bit predictions",
                method.name()
            ),
            Error::InvalidConfig(msg) => write!(f, "invalid pipeline configuration: {msg}"),
            Error::Cache(msg) => write!(f, "artifact cache: {msg}"),
            Error::Truth(e) => write!(f, "{e}"),
            Error::StageFailed {
                stage,
                subject,
                message,
            } => write!(
                f,
                "{} stage failed for `{subject}`: {message}",
                stage.name()
            ),
            Error::Interrupted {
                subject,
                reason,
                completed,
                total,
            } => write!(
                f,
                "`{subject}` {reason} after {completed}/{total} work units"
            ),
            Error::QuorumNotMet {
                prepared,
                required,
                failed,
            } => write!(
                f,
                "only {prepared} benchmarks prepared ({failed} failed), quorum requires {required}"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(Error::UnknownBenchmark("zzz".into())
            .to_string()
            .contains("zzz"));
        assert!(Error::NotBitLevel(Method::RfInst)
            .to_string()
            .contains("RF-INST"));
        assert!(Error::InvalidConfig("bit_stride must be >= 1".into())
            .to_string()
            .contains("bit_stride"));
    }
}
