//! Evaluation metrics of the paper (§II-B): bit-classification accuracy,
//! instruction ranking, top-K vulnerable sets and coverage, program
//! vulnerability and its error.

use glaive_faultsim::VulnTuple;

use crate::data::BenchData;

/// Bit-node classification accuracy over the FI-labelled nodes (Table III).
///
/// # Panics
///
/// Panics if `bit_preds` does not cover every CDFG node.
pub fn bit_accuracy(bit_preds: &[usize], data: &BenchData) -> f64 {
    assert_eq!(
        bit_preds.len(),
        data.labels.len(),
        "one prediction per node"
    );
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, &m) in data.mask.iter().enumerate() {
        if m {
            total += 1;
            if bit_preds[i] == data.labels[i] {
                correct += 1;
            }
        }
    }
    if total == 0 {
        return 0.0;
    }
    correct as f64 / total as f64
}

/// Per-class confusion matrix over the FI-labelled bit nodes:
/// `matrix[truth][prediction]` with class order Masked, SDC, Crash.
///
/// # Panics
///
/// Panics if `bit_preds` does not cover every CDFG node.
pub fn confusion_matrix(bit_preds: &[usize], data: &BenchData) -> [[usize; 3]; 3] {
    assert_eq!(
        bit_preds.len(),
        data.labels.len(),
        "one prediction per node"
    );
    let mut m = [[0usize; 3]; 3];
    for (i, &on) in data.mask.iter().enumerate() {
        if on {
            m[data.labels[i]][bit_preds[i].min(2)] += 1;
        }
    }
    m
}

/// Per-class precision and recall from a confusion matrix, in class order
/// Masked, SDC, Crash. Classes absent from both truth and predictions get
/// precision/recall 0.
pub fn precision_recall(confusion: &[[usize; 3]; 3]) -> [(f64, f64); 3] {
    let mut out = [(0.0, 0.0); 3];
    for k in 0..3 {
        let tp = confusion[k][k];
        let predicted: usize = (0..3).map(|t| confusion[t][k]).sum();
        let actual: usize = confusion[k].iter().sum();
        let precision = if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        };
        let recall = if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        };
        out[k] = (precision, recall);
    }
    out
}

/// The instruction ranking R induced by estimated tuples over the
/// FI-covered instructions: descending severity-weighted failure
/// probability (`2·crash + sdc`, encoding Crash → SDC → Masked), ties
/// broken by PC for determinism. Instructions the estimator could not
/// score rank last.
pub fn ranking(tuples: &[Option<VulnTuple>], data: &BenchData) -> Vec<usize> {
    let mut pcs = data.covered_pcs();
    pcs.sort_by(|&a, &b| {
        let ka = tuples[a].map_or(-1.0, |t| t.ranking_key());
        let kb = tuples[b].map_or(-1.0, |t| t.ranking_key());
        kb.total_cmp(&ka).then(a.cmp(&b))
    });
    pcs
}

/// Size of the top-K protection set: `min(⌈N·K%⌉, N_v)` where `N` counts
/// FI-covered instructions and `N_v` the FI-vulnerable ones (paper §II-B).
pub fn top_k_size(data: &BenchData, k_percent: f64) -> usize {
    let n = data.covered_pcs().len();
    let n_v = data
        .covered_pcs()
        .iter()
        .filter(|&&pc| data.fi_tuples[pc].expect("covered").failure() > 0.0)
        .count();
    let budget = ((n as f64) * k_percent / 100.0).ceil() as usize;
    budget.min(n_v)
}

/// Top-K coverage `|S* ∩ S_K| / |S_K|` (paper §II-B): the fraction of the
/// FI-ideal top-K vulnerable set that the estimated ranking also selects.
/// Returns 1.0 when the protection set is empty (nothing to protect).
pub fn top_k_coverage(tuples: &[Option<VulnTuple>], data: &BenchData, k_percent: f64) -> f64 {
    let size = top_k_size(data, k_percent);
    if size == 0 {
        return 1.0;
    }
    let ideal = ranking(&data.fi_tuples, data);
    let estimated = ranking(tuples, data);
    let s_star: std::collections::HashSet<usize> = ideal[..size].iter().copied().collect();
    let hits = estimated[..size]
        .iter()
        .filter(|pc| s_star.contains(pc))
        .count();
    hits as f64 / size as f64
}

/// Program vulnerability P_v: the injection-weighted sum of instruction
/// tuples (paper §II-B). Instructions the estimator could not score count
/// as fully masked.
pub fn program_vulnerability(tuples: &[Option<VulnTuple>], data: &BenchData) -> VulnTuple {
    let total: u64 = data.fi_weights.iter().sum();
    assert!(total > 0, "no injections recorded");
    let mut crash = 0.0;
    let mut sdc = 0.0;
    let mut masked = 0.0;
    for pc in data.covered_pcs() {
        let w = data.fi_weights[pc] as f64 / total as f64;
        let t = tuples[pc].unwrap_or(VulnTuple::MASKED);
        crash += w * t.crash;
        sdc += w * t.sdc;
        masked += w * t.masked;
    }
    VulnTuple { crash, sdc, masked }
}

/// Program vulnerability error: `Σ_class |estimated − FI|` (paper §II-B).
pub fn program_vulnerability_error(tuples: &[Option<VulnTuple>], data: &BenchData) -> f64 {
    let est = program_vulnerability(tuples, data);
    let fi = data
        .truth
        .try_program_vulnerability()
        .expect("prepared benchmarks have at least one record");
    est.abs_error(&fi)
}

/// Fractional ranks of `scores` under *descending* order, with tied values
/// receiving their average rank (the standard fractional-ranking treatment
/// Spearman's ρ expects).
fn fractional_ranks(scores: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation ρ between two paired score slices (used by
/// the `cross_isa` experiment, where predicted and FI instruction
/// vulnerabilities live on different ISAs and no [`BenchData`] exists).
/// Ties get average ranks; returns 0.0 when either side is constant or
/// fewer than two pairs are given.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman needs paired scores");
    if xs.len() < 2 {
        return 0.0;
    }
    let rx = fractional_ranks(xs);
    let ry = fractional_ranks(ys);
    let n = xs.len() as f64;
    let mx = rx.iter().sum::<f64>() / n;
    let my = ry.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in rx.iter().zip(&ry) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Top-K overlap `|topK(a) ∩ topK(b)| / k` between the descending-order
/// rankings induced by two paired score slices (ties broken by index, as
/// in [`ranking`]). Returns 1.0 for `k = 0`; `k` is clamped to the slice
/// length.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn top_k_overlap(a: &[f64], b: &[f64], k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "top_k_overlap needs paired scores");
    let k = k.min(a.len());
    if k == 0 {
        return 1.0;
    }
    let top = |scores: &[f64]| -> Vec<usize> {
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&x, &y| scores[y].total_cmp(&scores[x]).then(x.cmp(&y)));
        order.truncate(k);
        order
    };
    let sa: std::collections::HashSet<usize> = top(a).into_iter().collect();
    let hits = top(b).into_iter().filter(|i| sa.contains(i)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::prepare_benchmark;
    use crate::PipelineConfig;
    use glaive_bench_suite::control::dijkstra;

    fn data() -> BenchData {
        prepare_benchmark(dijkstra::build(2), &PipelineConfig::quick_test())
    }

    #[test]
    fn fi_oracle_has_perfect_metrics() {
        let d = data();
        // Predicting the FI labels themselves gives accuracy 1.
        assert_eq!(bit_accuracy(&d.labels, &d), 1.0);
        // FI tuples rank identically to themselves: full coverage at any K.
        for k in [5.0, 25.0, 50.0, 100.0] {
            assert_eq!(top_k_coverage(&d.fi_tuples, &d, k), 1.0);
        }
        // Zero program vulnerability error against itself.
        assert!(program_vulnerability_error(&d.fi_tuples, &d) < 1e-12);
    }

    #[test]
    fn all_masked_estimate_has_nonzero_error() {
        let d = data();
        let masked: Vec<Option<VulnTuple>> = vec![Some(VulnTuple::MASKED); d.bench.program().len()];
        let err = program_vulnerability_error(&masked, &d);
        // Dijkstra certainly has some failing faults.
        assert!(err > 0.01, "error {err}");
        let pv = program_vulnerability(&masked, &d);
        assert!((pv.masked - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_bounds_and_monotone_set_size() {
        let d = data();
        let masked: Vec<Option<VulnTuple>> = vec![Some(VulnTuple::MASKED); d.bench.program().len()];
        for k in [5.0, 20.0, 60.0, 100.0] {
            let c = top_k_coverage(&masked, &d, k);
            assert!((0.0..=1.0).contains(&c));
        }
        assert!(top_k_size(&d, 10.0) <= top_k_size(&d, 50.0));
        assert!(top_k_size(&d, 100.0) <= d.covered_pcs().len());
    }

    #[test]
    fn at_full_budget_coverage_is_total_when_sets_saturate() {
        let d = data();
        // At K = 100%, |S_K| = N_v and both rankings' prefixes contain all
        // vulnerable instructions iff the estimator ranks all vulnerable
        // ones above non-vulnerable ones; the FI oracle trivially does.
        assert_eq!(top_k_coverage(&d.fi_tuples, &d, 100.0), 1.0);
    }

    #[test]
    fn ranking_is_deterministic_and_severity_ordered() {
        let d = data();
        let r1 = ranking(&d.fi_tuples, &d);
        let r2 = ranking(&d.fi_tuples, &d);
        assert_eq!(r1, r2);
        for w in r1.windows(2) {
            let ka = d.fi_tuples[w[0]].expect("covered").ranking_key();
            let kb = d.fi_tuples[w[1]].expect("covered").ranking_key();
            assert!(ka >= kb, "ranking not descending");
        }
    }

    #[test]
    fn confusion_matrix_diagonal_for_oracle() {
        let d = data();
        let m = confusion_matrix(&d.labels, &d);
        let off_diagonal: usize = (0..3)
            .flat_map(|t| (0..3).map(move |p| (t, p)))
            .filter(|&(t, p)| t != p)
            .map(|(t, p)| m[t][p])
            .sum();
        assert_eq!(off_diagonal, 0, "oracle predictions are exact");
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, d.bit_datapoints());
        // Oracle precision/recall is 1 for every class present.
        for (k, &(prec, rec)) in precision_recall(&m).iter().enumerate() {
            if m[k][k] > 0 {
                assert_eq!((prec, rec), (1.0, 1.0));
            }
        }
    }

    #[test]
    fn confusion_matrix_counts_misclassifications() {
        let d = data();
        // Predict everything as class 0 (Masked).
        let preds = vec![0usize; d.labels.len()];
        let m = confusion_matrix(&preds, &d);
        assert_eq!(m[1][0] + m[2][0] + m[0][0], d.bit_datapoints());
        let pr = precision_recall(&m);
        assert_eq!(pr[1], (0.0, 0.0), "never-predicted class has zero P/R");
    }

    #[test]
    fn program_vulnerability_components_sum_to_one() {
        let d = data();
        let pv = program_vulnerability(&d.fi_tuples, &d);
        assert!((pv.crash + pv.sdc + pv.masked - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_detects_perfect_and_inverse_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let inc = [10.0, 20.0, 30.0, 40.0, 50.0];
        let dec = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&xs, &inc) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &dec) + 1.0).abs() < 1e-12);
        assert_eq!(spearman(&xs, &[7.0; 5]), 0.0, "constant side is 0");
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0, "degenerate length");
    }

    #[test]
    fn spearman_averages_tied_ranks() {
        // xs has a two-way tie; the monotone ys must still give rho = 1
        // only when the tie is respected symmetrically.
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.5, 2.5, 4.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_overlap_counts_shared_leaders() {
        let a = [0.9, 0.1, 0.8, 0.2];
        let b = [0.9, 0.8, 0.1, 0.2];
        // top-2(a) = {0, 2}, top-2(b) = {0, 1} → one shared.
        assert!((top_k_overlap(&a, &b, 2) - 0.5).abs() < 1e-12);
        assert_eq!(top_k_overlap(&a, &a, 2), 1.0);
        assert_eq!(top_k_overlap(&a, &b, 0), 1.0, "empty set is covered");
        assert_eq!(top_k_overlap(&a, &b, 100), 1.0, "k clamps to length");
    }
}
