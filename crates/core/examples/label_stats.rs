//! Developer utility: prints the FI bit-label class balance of every
//! benchmark (Masked/SDC/Crash fractions and the majority-class baseline
//! accuracy a trivial classifier would achieve).
//!
//! Run with: `cargo run -p glaive --release --example label_stats`

use glaive::*;
fn main() {
    let config = PipelineConfig::default();
    for b in glaive_bench_suite::suite(7) {
        let d = prepare_benchmark(b, &config);
        let mut c = [0usize; 3];
        for (i, &m) in d.mask.iter().enumerate() {
            if m {
                c[d.labels[i]] += 1;
            }
        }
        let total: usize = c.iter().sum();
        let maj = *c.iter().max().unwrap() as f64 / total as f64;
        println!(
            "{:14} total={:6} masked={:.2} sdc={:.2} crash={:.2} majority={:.3}",
            d.bench.name,
            total,
            c[0] as f64 / total as f64,
            c[1] as f64 / total as f64,
            c[2] as f64 / total as f64,
            maj
        );
    }
}
