use glaive_graph::{CsrGraph, CsrView};
use glaive_nn::{
    relu, relu_backward, softmax_cross_entropy, softmax_rows, Adam, DetRng, Linear, Matrix,
};

use crate::kernels::{sage_backward_fused, sage_forward_fused, SampledCsr};

/// Hyperparameters of the augmented GraphSAGE model. Defaults follow the
/// paper (§IV): 3 layers, hidden dimension 128, learning rate 1e-3,
/// 10 epochs, neighbour sample size 50, ReLU, cross-entropy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SageConfig {
    /// Hidden embedding dimension.
    pub hidden: usize,
    /// Number of GraphSAGE layers (the last produces class logits).
    pub layers: usize,
    /// Number of output classes (3: Masked / SDC / Crash).
    pub classes: usize,
    /// Neighbours sampled per node per epoch during training.
    pub sample_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs (full-batch gradient steps per graph).
    pub epochs: usize,
    /// Seed for weight initialisation and neighbour sampling.
    pub seed: u64,
}

impl Default for SageConfig {
    fn default() -> Self {
        SageConfig {
            hidden: 128,
            layers: 3,
            classes: 3,
            sample_size: 50,
            lr: 1e-3,
            epochs: 10,
            seed: 1,
        }
    }
}

/// One labelled training graph: features, the aggregation neighbourhood as
/// a flat CSR graph (predecessors for GLAIVE, the symmetrised view for the
/// vanilla ablation), per-node class labels, and a mask selecting
/// labelled nodes.
#[derive(Debug, Clone, Copy)]
pub struct TrainGraph<'a> {
    /// `n × d` node feature matrix.
    pub features: &'a Matrix,
    /// Aggregation neighbourhood of each node (`graph.neighbors(v)`).
    pub graph: &'a CsrGraph,
    /// Class label per node (ignored where `mask` is false).
    pub labels: &'a [usize],
    /// Which nodes contribute to the loss.
    pub mask: &'a [bool],
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone)]
pub struct TrainStats {
    /// Mean masked loss per epoch (averaged over graphs).
    pub epoch_losses: Vec<f32>,
}

impl TrainStats {
    /// Loss of the final epoch.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Rejected model shape: a [`SageConfig`] field (or the feature width)
/// below its minimum legal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfigError {
    /// The offending field.
    pub field: &'static str,
    /// The smallest value the field accepts.
    pub min: usize,
}

impl std::fmt::Display for ModelConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid model config: `{}` must be at least {}",
            self.field, self.min
        )
    }
}

impl std::error::Error for ModelConfigError {}

/// The augmented GraphSAGE model (see crate docs).
#[derive(Debug, Clone)]
pub struct GraphSage {
    layers: Vec<Linear>,
    config: SageConfig,
    rng: DetRng,
}

impl GraphSage {
    /// Creates a model for `in_dim`-dimensional node features.
    ///
    /// # Errors
    ///
    /// [`ModelConfigError`] if the feature width is zero or the
    /// configuration has zero layers, hidden width or sample size, or
    /// fewer than two classes.
    pub fn try_new(in_dim: usize, config: &SageConfig) -> Result<GraphSage, ModelConfigError> {
        let floors = [
            ("in_dim", in_dim, 1),
            ("layers", config.layers, 1),
            ("classes", config.classes, 2),
            ("hidden", config.hidden, 1),
            ("sample_size", config.sample_size, 1),
        ];
        if let Some(&(field, _, min)) = floors.iter().find(|&&(_, value, min)| value < min) {
            return Err(ModelConfigError { field, min });
        }
        let mut rng = DetRng::new(config.seed);
        let mut layers = Vec::with_capacity(config.layers);
        let mut d = in_dim;
        for l in 0..config.layers {
            let out = if l + 1 == config.layers {
                config.classes
            } else {
                config.hidden
            };
            // Input is the concatenation [h_v ‖ mean(preds)].
            layers.push(Linear::glorot(2 * d, out, &mut rng));
            d = out;
        }
        Ok(GraphSage {
            layers,
            config: *config,
            rng,
        })
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &SageConfig {
        &self.config
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// A copy of the model with flat parameter `index` of `layer` shifted
    /// by `delta`. Parameters are ordered row-major weights then bias —
    /// the same flattening as [`glaive_nn::LinearGrads`] — so a
    /// finite-difference probe can walk every parameter and compare the
    /// numerical slope against [`GraphSage::compute_gradients`].
    ///
    /// # Panics
    ///
    /// Panics if `layer` or `index` is out of range.
    pub fn nudged(&self, layer: usize, index: usize, delta: f32) -> GraphSage {
        let mut copy = self.clone();
        let l = &copy.layers[layer];
        let w_len = l.weights().data().len();
        let (mut w, mut b) = (l.weights().clone(), l.bias().to_vec());
        if index < w_len {
            w.data_mut()[index] += delta;
        } else {
            b[index - w_len] += delta;
        }
        copy.layers[layer] = Linear::from_parts(w, b);
        copy
    }

    /// Read access to the layers (used by serialisation).
    pub(crate) fn layer_views(&self) -> &[Linear] {
        &self.layers
    }

    /// Reassembles a model from deserialised layers; `None` if the layer
    /// dimensions are inconsistent with `config` (each layer's input must
    /// be twice the previous output — the [h ‖ agg] concatenation).
    pub(crate) fn from_parts(layers: Vec<Linear>, config: SageConfig) -> Option<GraphSage> {
        if layers.len() != config.layers {
            return None;
        }
        let mut d = layers[0].in_dim() / 2;
        if layers[0].in_dim() != 2 * d {
            return None;
        }
        for (l, layer) in layers.iter().enumerate() {
            if layer.in_dim() != 2 * d {
                return None;
            }
            let want_out = if l + 1 == layers.len() {
                config.classes
            } else {
                config.hidden
            };
            if layer.out_dim() != want_out {
                return None;
            }
            d = layer.out_dim();
        }
        let rng = DetRng::new(config.seed);
        Some(GraphSage {
            layers,
            config,
            rng,
        })
    }

    /// Full forward pass over the given neighbourhood view through the
    /// fused aggregate→concat→linear kernel (the concatenated `[h ‖ agg]`
    /// matrix is never materialised); returns per-layer caches for
    /// backprop: `(layer inputs h_k, aggregates, pre-activations, final
    /// logits)`.
    #[allow(clippy::type_complexity)]
    fn forward(
        &self,
        features: &Matrix,
        neigh: CsrView<'_>,
    ) -> (Vec<Matrix>, Vec<Matrix>, Vec<Matrix>, Matrix) {
        let mut h = features.clone();
        let mut hs = Vec::with_capacity(self.layers.len());
        let mut aggs = Vec::with_capacity(self.layers.len());
        let mut pres = Vec::with_capacity(self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            let (agg, pre) = sage_forward_fused(layer, &h, neigh);
            let out = if l + 1 == self.layers.len() {
                pre.clone()
            } else {
                relu(&pre)
            };
            hs.push(h);
            aggs.push(agg);
            pres.push(pre);
            h = out;
        }
        (hs, aggs, pres, h)
    }

    /// Loss and per-layer gradients for one graph under the given sampled
    /// neighbourhood view (separated from the private training step, and public,
    /// so finite-difference tests can pin the analytic gradients of the
    /// kernel rewrites against numerical differentiation).
    pub fn compute_gradients(
        &self,
        graph: &TrainGraph<'_>,
        neigh: CsrView<'_>,
    ) -> (f32, Vec<glaive_nn::LinearGrads>) {
        let (hs, aggs, pres, logits) = self.forward(graph.features, neigh);
        let (loss, mut grad) = softmax_cross_entropy(&logits, graph.labels, Some(graph.mask));

        // Backwards through the layers, fused: the [h ‖ agg] gradient is
        // split inside the matmul and the aggregate half scattered back
        // through the mean, with no concatenated intermediate.
        let mut all_grads = Vec::with_capacity(self.layers.len());
        for l in (0..self.layers.len()).rev() {
            let is_last = l + 1 == self.layers.len();
            let d_pre = if is_last {
                grad
            } else {
                relu_backward(&pres[l], &grad)
            };
            if l > 0 {
                let (d_h, grads) =
                    sage_backward_fused(&self.layers[l], &hs[l], &aggs[l], neigh, &d_pre);
                all_grads.push(grads);
                grad = d_h;
            } else {
                // The raw features are not differentiated: skip the input
                // gradient entirely (the old path computed and dropped it).
                all_grads.push(self.layers[0].grads_concat(&hs[0], &aggs[0], &d_pre));
                grad = Matrix::zeros(0, 0);
            }
        }
        all_grads.reverse();
        (loss, all_grads)
    }

    /// Trains on the given graphs for the configured number of epochs with
    /// automatic data parallelism — equivalent to
    /// [`GraphSage::train_with_threads`] with `threads = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty or a graph's shapes are inconsistent.
    pub fn train(&mut self, graphs: &[TrainGraph<'_>]) -> TrainStats {
        self.train_with_threads(graphs, 0)
    }

    /// Trains on the given graphs for the configured number of epochs,
    /// computing per-graph gradients data-parallel across up to `threads`
    /// worker threads (`0` = the machine's available parallelism).
    ///
    /// The result is **bit-identical at every thread count**: per epoch,
    /// all neighbourhoods are resampled serially from the shared RNG
    /// stream (one reused workspace per graph, so steady-state epochs
    /// allocate no adjacency memory), the per-graph gradients — whose
    /// computation is read-only and embarrassingly parallel — are merged
    /// by a reduction tree whose shape depends only on the graph count,
    /// and one optimizer step is taken on the mean gradient. Threads only
    /// change *which worker* computes a gradient, never any accumulation
    /// order. With a single graph the loop degenerates to exactly the
    /// serial resample→step sequence of earlier releases.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty or a graph's shapes are inconsistent.
    pub fn train_with_threads(&mut self, graphs: &[TrainGraph<'_>], threads: usize) -> TrainStats {
        assert!(!graphs.is_empty(), "training needs at least one graph");
        for g in graphs {
            assert_eq!(
                g.features.rows(),
                g.graph.node_count(),
                "feature/neighbour count mismatch"
            );
            assert_eq!(
                g.features.rows(),
                g.labels.len(),
                "feature/label count mismatch"
            );
            assert_eq!(
                g.features.rows(),
                g.mask.len(),
                "feature/mask count mismatch"
            );
        }
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        }
        .min(graphs.len())
        .max(1);
        let mut opts: Vec<Adam> = self
            .layers
            .iter()
            .map(|l| Adam::new(self.config.lr, l.param_count()))
            .collect();
        let mut workspaces: Vec<SampledCsr> = graphs.iter().map(|_| SampledCsr::new()).collect();
        let k = self.config.sample_size;
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            // Serial resample in graph order: the RNG stream is shared, so
            // this phase is identical regardless of worker count.
            for (graph, ws) in graphs.iter().zip(&mut workspaces) {
                ws.resample(graph.graph, k, &mut self.rng);
            }
            // Read-only per-graph gradient computation, fanned out over
            // contiguous graph chunks.
            let mut results: Vec<Option<(f32, Vec<glaive_nn::LinearGrads>)>> =
                graphs.iter().map(|_| None).collect();
            if workers <= 1 {
                for ((graph, ws), slot) in graphs.iter().zip(&workspaces).zip(&mut results) {
                    *slot = Some(self.compute_gradients(graph, ws.view()));
                }
            } else {
                let per = graphs.len().div_ceil(workers);
                let model = &*self;
                std::thread::scope(|scope| {
                    for ((gs, wss), slots) in graphs
                        .chunks(per)
                        .zip(workspaces.chunks(per))
                        .zip(results.chunks_mut(per))
                    {
                        scope.spawn(move || {
                            for ((graph, ws), slot) in gs.iter().zip(wss).zip(slots) {
                                *slot = Some(model.compute_gradients(graph, ws.view()));
                            }
                        });
                    }
                });
            }
            let mut results: Vec<(f32, Vec<glaive_nn::LinearGrads>)> = results
                .into_iter()
                .map(|r| r.expect("worker ran"))
                .collect();
            reduce_into_first(&mut results);
            let (mut total, mut grads) = results.swap_remove(0);
            if graphs.len() > 1 {
                let inv = 1.0 / graphs.len() as f32;
                for g in &mut grads {
                    g.w.scale(inv);
                    for b in &mut g.b {
                        *b *= inv;
                    }
                }
                total *= inv;
            }
            for ((layer, grads), o) in self.layers.iter_mut().zip(&grads).zip(opts.iter_mut()) {
                layer.apply(o, grads);
            }
            epoch_losses.push(total);
        }
        TrainStats { epoch_losses }
    }

    /// Class probabilities for every node of an (unseen) graph, aggregating
    /// over full neighbourhoods.
    pub fn predict_proba(&self, features: &Matrix, graph: &CsrGraph) -> Matrix {
        self.predict_proba_view(features, graph.view())
    }

    /// [`GraphSage::predict_proba`] over a borrowed CSR view — the
    /// batched-inference entry point: a serving layer can stack several
    /// programs' features and the disjoint union of their graphs into one
    /// reused workspace and run a single forward pass. Every row of the
    /// model is row-local (aggregation reads only a node's own CSR row;
    /// linear layers, ReLU and softmax are row-wise), so each program's
    /// rows are bit-identical to a one-program call.
    pub fn predict_proba_view(&self, features: &Matrix, graph: CsrView<'_>) -> Matrix {
        assert_eq!(
            features.rows(),
            graph.node_count(),
            "feature/neighbour count mismatch"
        );
        let (_, _, _, logits) = self.forward(features, graph);
        softmax_rows(&logits)
    }

    /// The model's expected node-feature width (the first layer consumes
    /// `[h ‖ agg]`, twice this). Serving layers use it to reject models
    /// trained for a different feature schema before accepting traffic.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim() / 2
    }

    /// Hard label predictions (argmax of [`GraphSage::predict_proba`]).
    pub fn predict_labels(&self, features: &Matrix, graph: &CsrGraph) -> Vec<usize> {
        self.predict_proba(features, graph).argmax_rows()
    }
}

/// Merges all per-graph `(loss, gradients)` results into `results[0]` via
/// a fixed binary reduction tree: the slice splits at `len.div_ceil(2)`,
/// each half reduces recursively, and the right half's root adds into the
/// left's. The tree shape — and therefore every floating-point addition
/// order — depends only on the number of graphs, never on which thread
/// produced which result, which is what makes data-parallel training
/// bit-identical to serial.
fn reduce_into_first(results: &mut [(f32, Vec<glaive_nn::LinearGrads>)]) {
    if results.len() <= 1 {
        return;
    }
    let mid = results.len().div_ceil(2);
    let (left, right) = results.split_at_mut(mid);
    reduce_into_first(left);
    reduce_into_first(right);
    let (l, r) = (&mut left[0], &right[0]);
    l.0 += r.0;
    for (gl, gr) in l.1.iter_mut().zip(&r.1) {
        gl.w.add_assign(&gr.w);
        for (a, b) in gl.b.iter_mut().zip(&gr.b) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_graph::EdgeKind;

    fn small_config() -> SageConfig {
        SageConfig {
            hidden: 8,
            layers: 2,
            classes: 2,
            sample_size: 4,
            lr: 0.02,
            epochs: 120,
            seed: 3,
        }
    }

    /// Builds the CSR aggregation graph from per-node neighbour lists
    /// (`lists[v]` = nodes aggregated into `v`).
    fn csr_from_lists(lists: &[Vec<u32>]) -> CsrGraph {
        CsrGraph::from_edges(
            lists.len(),
            lists
                .iter()
                .enumerate()
                .flat_map(|(v, ns)| ns.iter().map(move |&u| (v as u32, u, EdgeKind::Data))),
        )
    }

    /// Labels are decided by the predecessor's feature, not the node's own:
    /// only a model that aggregates predecessor information can fit this.
    fn predecessor_xor_task() -> (Matrix, CsrGraph, Vec<usize>) {
        let n = 80;
        let mut rng = DetRng::new(11);
        let mut feats = Matrix::zeros(n, 2);
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut labels = vec![0usize; n];
        let mut classes = vec![0usize; n];
        for v in 0..n {
            let c = rng.next_below(2);
            classes[v] = c;
            feats[(v, c)] = 1.0;
        }
        for v in 1..n {
            let p = rng.next_below(v);
            neighbors[v] = vec![p as u32];
            labels[v] = classes[p];
        }
        labels[0] = classes[0];
        (feats, csr_from_lists(&neighbors), labels)
    }

    #[test]
    fn learns_predecessor_dependent_labels() {
        let (feats, graph, labels) = predecessor_xor_task();
        let mask: Vec<bool> = (0..labels.len()).map(|v| v != 0).collect();
        let graph = TrainGraph {
            features: &feats,
            graph: &graph,
            labels: &labels,
            mask: &mask,
        };
        let mut model = GraphSage::try_new(2, &small_config()).expect("valid model config");
        let stats = model.train(&[graph]);
        assert!(stats.final_loss() < 0.2, "loss {}", stats.final_loss());
        let pred = model.predict_labels(&feats, graph.graph);
        let correct = pred
            .iter()
            .zip(&labels)
            .zip(&mask)
            .filter(|((p, l), &m)| m && p == l)
            .count();
        let total = mask.iter().filter(|&&m| m).count();
        assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total}");
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (feats, graph, labels) = predecessor_xor_task();
        let mask = vec![true; labels.len()];
        let graph = TrainGraph {
            features: &feats,
            graph: &graph,
            labels: &labels,
            mask: &mask,
        };
        let mut a = GraphSage::try_new(2, &small_config()).expect("valid model config");
        let mut b = GraphSage::try_new(2, &small_config()).expect("valid model config");
        let sa = a.train(&[graph]);
        let sb = b.train(&[graph]);
        assert_eq!(sa.epoch_losses, sb.epoch_losses);
        assert_eq!(
            a.predict_labels(&feats, graph.graph),
            b.predict_labels(&feats, graph.graph)
        );
    }

    #[test]
    fn transfers_to_unseen_graph_with_same_rule() {
        let (feats, graph, labels) = predecessor_xor_task();
        let mask = vec![true; labels.len()];
        let graph = TrainGraph {
            features: &feats,
            graph: &graph,
            labels: &labels,
            mask: &mask,
        };
        let mut model = GraphSage::try_new(2, &small_config()).expect("valid model config");
        model.train(&[graph]);

        // A fresh graph generated with a different seed but the same rule.
        let n = 30;
        let mut rng = DetRng::new(99);
        let mut feats2 = Matrix::zeros(n, 2);
        let mut neigh2: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut labels2 = vec![0usize; n];
        let mut classes = vec![0usize; n];
        for v in 0..n {
            let c = rng.next_below(2);
            classes[v] = c;
            feats2[(v, c)] = 1.0;
        }
        for v in 1..n {
            let p = rng.next_below(v);
            neigh2[v] = vec![p as u32];
            labels2[v] = classes[p];
        }
        let graph2 = csr_from_lists(&neigh2);
        let pred = model.predict_labels(&feats2, &graph2);
        let correct = pred
            .iter()
            .zip(&labels2)
            .skip(1)
            .filter(|(p, l)| p == l)
            .count();
        assert!(correct as f64 / (n - 1) as f64 > 0.8, "{correct}/{}", n - 1);
    }

    #[test]
    fn probabilities_are_normalised() {
        let (feats, graph, labels) = predecessor_xor_task();
        let mask = vec![true; labels.len()];
        let graph = TrainGraph {
            features: &feats,
            graph: &graph,
            labels: &labels,
            mask: &mask,
        };
        let mut model = GraphSage::try_new(2, &small_config()).expect("valid model config");
        model.train(&[graph]);
        let probs = model.predict_proba(&feats, graph.graph);
        for r in 0..probs.rows() {
            let s: f32 = probs.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(probs.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn isolated_nodes_aggregate_zero_and_survive() {
        let feats = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let graph = CsrGraph::empty(2);
        let labels = vec![0, 1];
        let mask = vec![true, true];
        let graph = TrainGraph {
            features: &feats,
            graph: &graph,
            labels: &labels,
            mask: &mask,
        };
        let mut model = GraphSage::try_new(2, &small_config()).expect("valid model config");
        let stats = model.train(&[graph]);
        assert!(stats.final_loss().is_finite());
        assert_eq!(model.predict_labels(&feats, graph.graph), labels);
    }

    #[test]
    fn multiple_graphs_train_jointly() {
        let (f1, g1m, l1) = predecessor_xor_task();
        let m1 = vec![true; l1.len()];
        let g1 = TrainGraph {
            features: &f1,
            graph: &g1m,
            labels: &l1,
            mask: &m1,
        };
        let g2 = TrainGraph {
            features: &f1,
            graph: &g1m,
            labels: &l1,
            mask: &m1,
        };
        let mut model = GraphSage::try_new(2, &small_config()).expect("valid model config");
        let stats = model.train(&[g1, g2]);
        assert!(stats.final_loss() < 0.3);
    }

    #[test]
    #[should_panic(expected = "at least one graph")]
    fn empty_training_set_panics() {
        let mut model = GraphSage::try_new(2, &small_config()).expect("valid model config");
        model.train(&[]);
    }

    /// Finite-difference check of the full SAGE backward pass, including
    /// the gradient scattered through the predecessor-mean aggregation.
    #[test]
    fn analytic_gradients_match_numerical() {
        let feats = Matrix::from_vec(
            5,
            2,
            vec![0.3, -0.7, 1.1, 0.2, -0.4, 0.9, 0.0, 0.5, -1.2, -0.1],
        );
        // A small DAG with shared predecessors to exercise the scatter.
        let lists: Vec<Vec<u32>> = vec![vec![], vec![0], vec![0, 1], vec![1, 2], vec![2, 3]];
        let csr = csr_from_lists(&lists);
        let labels = vec![0usize, 1, 0, 1, 0];
        let mask = vec![true, true, false, true, true];
        let graph = TrainGraph {
            features: &feats,
            graph: &csr,
            labels: &labels,
            mask: &mask,
        };
        let config = SageConfig {
            hidden: 3,
            layers: 3,
            classes: 2,
            sample_size: 10,
            lr: 0.01,
            epochs: 1,
            seed: 4,
        };
        let model = GraphSage::try_new(2, &config).expect("valid model config");
        let (_, grads) = model.compute_gradients(&graph, csr.view());

        let eps = 2e-3f32;
        let loss_of = |m: &GraphSage| {
            let (_, _, _, logits) = m.forward(&feats, csr.view());
            softmax_cross_entropy(&logits, &labels, Some(&mask)).0
        };
        // Probe several entries in every layer (including the aggregate
        // half of the concatenated input, columns >= in_dim).
        for (l, grad) in grads.iter().enumerate().take(config.layers) {
            let rows = model.layers[l].weights().rows();
            let cols = model.layers[l].weights().cols();
            for &(r, c) in &[(0usize, 0usize), (rows - 1, cols - 1), (rows / 2, 0)] {
                let mut plus = model.clone();
                plus.layers[l] = {
                    let mut w = plus.layers[l].weights().clone();
                    let b = plus.layers[l].bias().to_vec();
                    w[(r, c)] += eps;
                    Linear::from_parts(w, b)
                };
                let mut minus = model.clone();
                minus.layers[l] = {
                    let mut w = minus.layers[l].weights().clone();
                    let b = minus.layers[l].bias().to_vec();
                    w[(r, c)] -= eps;
                    Linear::from_parts(w, b)
                };
                let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
                let analytic = grad.w[(r, c)];
                assert!(
                    (numeric - analytic).abs() < 2e-2,
                    "layer {l} dW[{r},{c}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Golden parity with the pre-CSR implementation.
    //
    // `legacy_*` below reproduce the nested-`Vec<Vec<u32>>` code path this
    // crate shipped before the CSR refactor, verbatim (including the
    // per-edge row copy in the backward scatter). The tests require the
    // CSR path to be *bit-identical*: same per-epoch losses, same
    // gradients, same probabilities.
    // ------------------------------------------------------------------

    fn legacy_aggregate(h: &Matrix, neigh: &[Vec<u32>]) -> Matrix {
        let mut agg = Matrix::zeros(h.rows(), h.cols());
        for (v, ns) in neigh.iter().enumerate() {
            if ns.is_empty() {
                continue;
            }
            let inv = 1.0 / ns.len() as f32;
            let row = agg.row_mut(v);
            for &u in ns {
                for (a, &b) in row.iter_mut().zip(h.row(u as usize)) {
                    *a += b * inv;
                }
            }
        }
        agg
    }

    fn legacy_sample(rng: &mut DetRng, k: usize, neighbors: &[Vec<u32>]) -> Vec<Vec<u32>> {
        neighbors
            .iter()
            .map(|ns| {
                if ns.len() <= k {
                    ns.clone()
                } else {
                    let mut pool = ns.clone();
                    for i in 0..k {
                        let j = i + rng.next_below(pool.len() - i);
                        pool.swap(i, j);
                    }
                    pool.truncate(k);
                    pool
                }
            })
            .collect()
    }

    fn legacy_forward(
        model: &GraphSage,
        features: &Matrix,
        neigh: &[Vec<u32>],
    ) -> (Vec<Matrix>, Vec<Matrix>, Matrix) {
        let mut h = features.clone();
        let mut inputs = Vec::new();
        let mut pres = Vec::new();
        for (l, layer) in model.layers.iter().enumerate() {
            let agg = legacy_aggregate(&h, neigh);
            let z = h.hconcat(&agg);
            let pre = layer.forward(&z);
            let out = if l + 1 == model.layers.len() {
                pre.clone()
            } else {
                relu(&pre)
            };
            inputs.push(z);
            pres.push(pre);
            h = out;
        }
        (inputs, pres, h)
    }

    fn legacy_gradients(
        model: &GraphSage,
        features: &Matrix,
        neigh: &[Vec<u32>],
        labels: &[usize],
        mask: &[bool],
    ) -> (f32, Vec<glaive_nn::LinearGrads>) {
        let (inputs, pres, logits) = legacy_forward(model, features, neigh);
        let (loss, mut grad) = softmax_cross_entropy(&logits, labels, Some(mask));
        let mut all_grads = Vec::new();
        for l in (0..model.layers.len()).rev() {
            let is_last = l + 1 == model.layers.len();
            let d_pre = if is_last {
                grad
            } else {
                relu_backward(&pres[l], &grad)
            };
            let (d_z, grads) = model.layers[l].backward(&inputs[l], &d_pre);
            all_grads.push(grads);
            if l > 0 {
                let d_in = inputs[l].cols() / 2;
                let (d_self, d_agg) = d_z.hsplit(d_in);
                let mut d_h = d_self;
                for (v, ns) in neigh.iter().enumerate() {
                    if ns.is_empty() {
                        continue;
                    }
                    let inv = 1.0 / ns.len() as f32;
                    for &u in ns {
                        let src = d_agg.row(v).to_vec();
                        let dst = d_h.row_mut(u as usize);
                        for (a, b) in dst.iter_mut().zip(src) {
                            *a += b * inv;
                        }
                    }
                }
                grad = d_h;
            } else {
                grad = Matrix::zeros(0, 0);
            }
        }
        all_grads.reverse();
        (loss, all_grads)
    }

    fn legacy_train(
        model: &mut GraphSage,
        features: &Matrix,
        neighbors: &[Vec<u32>],
        labels: &[usize],
        mask: &[bool],
    ) -> Vec<f32> {
        let mut opts: Vec<Adam> = model
            .layers
            .iter()
            .map(|l| Adam::new(model.config.lr, l.param_count()))
            .collect();
        let k = model.config.sample_size;
        let mut epoch_losses = Vec::new();
        for _ in 0..model.config.epochs {
            let sampled = legacy_sample(&mut model.rng, k, neighbors);
            let (loss, all_grads) = legacy_gradients(model, features, &sampled, labels, mask);
            for ((layer, grads), o) in model.layers.iter_mut().zip(&all_grads).zip(opts.iter_mut())
            {
                layer.apply(o, grads);
            }
            epoch_losses.push(loss);
        }
        epoch_losses
    }

    /// A dense-ish task where many nodes exceed the sample size, so the
    /// sampler's RNG stream matters, with sorted de-duplicated neighbour
    /// lists (the invariant the legacy builder guaranteed).
    fn dense_task() -> (Matrix, Vec<Vec<u32>>, Vec<usize>, Vec<bool>) {
        dense_task_seeded(21)
    }

    fn dense_task_seeded(seed: u64) -> (Matrix, Vec<Vec<u32>>, Vec<usize>, Vec<bool>) {
        let n = 50;
        let mut rng = DetRng::new(seed);
        let feats = Matrix::from_fn(n, 3, |_, _| rng.uniform(-1.0, 1.0));
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, list) in lists.iter_mut().enumerate().skip(1) {
            let deg = 1 + rng.next_below(9.min(v));
            for _ in 0..deg {
                list.push(rng.next_below(v) as u32);
            }
            list.sort_unstable();
            list.dedup();
        }
        let labels: Vec<usize> = (0..n).map(|v| v % 2).collect();
        let mask: Vec<bool> = (0..n).map(|v| v % 3 != 0).collect();
        (feats, lists, labels, mask)
    }

    // ------------------------------------------------------------------
    // Reduction determinism: data-parallel training must be bit-identical
    // to serial at every thread count.
    // ------------------------------------------------------------------

    /// Five distinct labelled graphs (different seeds) for multi-graph
    /// training, so the chunk boundaries differ at every thread count.
    fn five_tasks() -> Vec<(Matrix, CsrGraph, Vec<usize>, Vec<bool>)> {
        (0..5u64)
            .map(|s| {
                let (f, lists, l, m) = dense_task_seeded(31 + s);
                (f, csr_from_lists(&lists), l, m)
            })
            .collect()
    }

    #[test]
    fn training_is_bit_identical_at_any_thread_count() {
        let tasks = five_tasks();
        let graphs: Vec<TrainGraph<'_>> = tasks
            .iter()
            .map(|(f, g, l, m)| TrainGraph {
                features: f,
                graph: g,
                labels: l,
                mask: m,
            })
            .collect();
        let config = SageConfig {
            hidden: 6,
            layers: 2,
            classes: 2,
            sample_size: 3,
            lr: 0.02,
            epochs: 5,
            seed: 29,
        };
        let mut reference: Option<(Vec<u32>, Vec<u8>)> = None;
        for threads in [1usize, 2, 3, 4, 8] {
            let mut model = GraphSage::try_new(3, &config).expect("valid model config");
            let stats = model.train_with_threads(&graphs, threads);
            let loss_bits: Vec<u32> = stats.epoch_losses.iter().map(|l| l.to_bits()).collect();
            let model_bytes = model.to_bytes();
            match &reference {
                None => reference = Some((loss_bits, model_bytes)),
                Some((want_losses, want_bytes)) => {
                    assert_eq!(&loss_bits, want_losses, "{threads}-thread losses diverged");
                    assert_eq!(
                        &model_bytes, want_bytes,
                        "{threads}-thread model bytes diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn per_graph_gradients_are_thread_invariant_and_merge_deterministically() {
        let tasks = five_tasks();
        let graphs: Vec<TrainGraph<'_>> = tasks
            .iter()
            .map(|(f, g, l, m)| TrainGraph {
                features: f,
                graph: g,
                labels: l,
                mask: m,
            })
            .collect();
        let config = SageConfig {
            hidden: 5,
            layers: 3,
            classes: 2,
            sample_size: 4,
            lr: 0.01,
            epochs: 1,
            seed: 43,
        };
        let model = GraphSage::try_new(3, &config).expect("valid model config");

        // Serial per-graph gradients over full neighbourhoods.
        let serial: Vec<(f32, Vec<glaive_nn::LinearGrads>)> = graphs
            .iter()
            .map(|g| model.compute_gradients(g, g.graph.view()))
            .collect();

        // The same gradients computed concurrently, one thread per graph:
        // compute_gradients is a pure read-only function, so every
        // per-graph result must be bitwise the one serial produced.
        let mut threaded: Vec<Option<(f32, Vec<glaive_nn::LinearGrads>)>> =
            graphs.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            for (g, slot) in graphs.iter().zip(&mut threaded) {
                let model = &model;
                scope.spawn(move || *slot = Some(model.compute_gradients(g, g.graph.view())));
            }
        });
        let mut threaded: Vec<(f32, Vec<glaive_nn::LinearGrads>)> = threaded
            .into_iter()
            .map(|r| r.expect("worker ran"))
            .collect();
        for (i, (s, t)) in serial.iter().zip(&threaded).enumerate() {
            assert_eq!(s.0.to_bits(), t.0.to_bits(), "graph {i} loss");
            for (gs, gt) in s.1.iter().zip(&t.1) {
                assert_eq!(gs.w.data(), gt.w.data(), "graph {i} weight grads");
                assert_eq!(gs.b, gt.b, "graph {i} bias grads");
            }
        }

        // And the fixed tree merges them identically however they arrived.
        let mut serial = serial;
        reduce_into_first(&mut serial);
        reduce_into_first(&mut threaded);
        assert_eq!(serial[0].0.to_bits(), threaded[0].0.to_bits());
        for (gs, gt) in serial[0].1.iter().zip(&threaded[0].1) {
            assert_eq!(gs.w.data(), gt.w.data());
            assert_eq!(gs.b, gt.b);
        }
    }

    #[test]
    fn csr_gradients_match_legacy_bitwise() {
        let (feats, lists, labels, mask) = dense_task();
        let csr = csr_from_lists(&lists);
        let config = SageConfig {
            hidden: 6,
            layers: 3,
            classes: 2,
            sample_size: 4,
            lr: 0.01,
            epochs: 1,
            seed: 17,
        };
        let model = GraphSage::try_new(3, &config).expect("valid model config");
        let graph = TrainGraph {
            features: &feats,
            graph: &csr,
            labels: &labels,
            mask: &mask,
        };
        let (loss_new, grads_new) = model.compute_gradients(&graph, csr.view());
        let (loss_old, grads_old) = legacy_gradients(&model, &feats, &lists, &labels, &mask);
        assert_eq!(loss_new.to_bits(), loss_old.to_bits());
        assert_eq!(grads_new.len(), grads_old.len());
        for (gn, go) in grads_new.iter().zip(&grads_old) {
            assert_eq!(gn.w.data(), go.w.data());
            assert_eq!(gn.b, go.b);
        }
    }

    #[test]
    fn csr_training_matches_legacy_bitwise() {
        let (feats, lists, labels, mask) = dense_task();
        let csr = csr_from_lists(&lists);
        let config = SageConfig {
            hidden: 6,
            layers: 2,
            classes: 2,
            sample_size: 3,
            lr: 0.02,
            epochs: 8,
            seed: 29,
        };

        let mut legacy = GraphSage::try_new(3, &config).expect("valid model config");
        let legacy_losses = legacy_train(&mut legacy, &feats, &lists, &labels, &mask);

        let mut fresh = GraphSage::try_new(3, &config).expect("valid model config");
        let stats = fresh.train(&[TrainGraph {
            features: &feats,
            graph: &csr,
            labels: &labels,
            mask: &mask,
        }]);

        let new_bits: Vec<u32> = stats.epoch_losses.iter().map(|l| l.to_bits()).collect();
        let old_bits: Vec<u32> = legacy_losses.iter().map(|l| l.to_bits()).collect();
        assert_eq!(new_bits, old_bits, "per-epoch losses diverged");

        let probs_new = fresh.predict_proba(&feats, &csr);
        let (_, _, logits_old) = legacy_forward(&legacy, &feats, &lists);
        let probs_old = softmax_rows(&logits_old);
        assert_eq!(probs_new.data(), probs_old.data());
        assert_eq!(fresh.predict_labels(&feats, &csr), probs_old.argmax_rows());
    }

    #[test]
    fn sampled_workspace_matches_legacy_sampler() {
        let (_, lists, _, _) = dense_task();
        let csr = csr_from_lists(&lists);
        let mut rng_old = DetRng::new(41);
        let mut rng_new = DetRng::new(41);
        let mut ws = SampledCsr::new();
        for _ in 0..4 {
            let old = legacy_sample(&mut rng_old, 3, &lists);
            ws.resample(&csr, 3, &mut rng_new);
            let v = ws.view();
            for (node, row) in old.iter().enumerate() {
                assert_eq!(v.neighbors(node), &row[..], "node {node}");
            }
        }
    }
}
