//! Binary serialisation for trained models, so a GLAIVE model can be
//! trained once and shipped — the deployment mode the paper motivates
//! (train on a benchmark corpus, apply to unseen programs forever).
//!
//! Format: a little-endian stream with a magic/version header, the
//! [`SageConfig`], the input dimension, and each layer's weight matrix and
//! bias. No external serialisation crates; the format is stable across
//! platforms of either endianness (everything goes through `to_le_bytes`).

use std::fmt;

use glaive_nn::{Linear, Matrix};

use crate::model::{GraphSage, SageConfig};

const MAGIC: &[u8; 8] = b"GLAIVE01";

/// Error returned when decoding a serialised model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelDecodeError {
    /// The buffer does not start with the expected magic/version.
    BadMagic,
    /// The buffer ended before the declared content.
    Truncated,
    /// A structural invariant failed (e.g. impossible dimensions).
    Corrupt(&'static str),
}

impl fmt::Display for ModelDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelDecodeError::BadMagic => write!(f, "not a GLAIVE model (bad magic)"),
            ModelDecodeError::Truncated => write!(f, "model data truncated"),
            ModelDecodeError::Corrupt(what) => write!(f, "corrupt model: {what}"),
        }
    }
}

impl std::error::Error for ModelDecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelDecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(ModelDecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, ModelDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn usize(&mut self) -> Result<usize, ModelDecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| ModelDecodeError::Corrupt("size overflows usize"))
    }

    fn f32(&mut self) -> Result<f32, ModelDecodeError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, ModelDecodeError> {
        // Guard against absurd declared lengths before allocating.
        if n > self.buf.len() / 4 + 1 {
            return Err(ModelDecodeError::Truncated);
        }
        (0..n).map(|_| self.f32()).collect()
    }
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

impl GraphSage {
    /// Serialises the trained model (config + weights) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let cfg = self.config();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_usize(&mut out, cfg.hidden);
        put_usize(&mut out, cfg.layers);
        put_usize(&mut out, cfg.classes);
        put_usize(&mut out, cfg.sample_size);
        out.extend_from_slice(&cfg.lr.to_le_bytes());
        put_usize(&mut out, cfg.epochs);
        out.extend_from_slice(&cfg.seed.to_le_bytes());
        put_usize(&mut out, self.layer_views().len());
        for layer in self.layer_views() {
            put_usize(&mut out, layer.weights().rows());
            put_usize(&mut out, layer.weights().cols());
            for &v in layer.weights().data() {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for &v in layer.bias() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Restores a model previously produced by [`GraphSage::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelDecodeError`] for truncated, foreign or structurally
    /// inconsistent data.
    pub fn from_bytes(bytes: &[u8]) -> Result<GraphSage, ModelDecodeError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(ModelDecodeError::BadMagic);
        }
        let config = SageConfig {
            hidden: r.usize()?,
            layers: r.usize()?,
            classes: r.usize()?,
            sample_size: r.usize()?,
            lr: r.f32()?,
            epochs: r.usize()?,
            seed: r.u64()?,
        };
        if config.layers == 0 || config.classes < 2 || config.hidden == 0 {
            return Err(ModelDecodeError::Corrupt("invalid configuration"));
        }
        let layer_count = r.usize()?;
        if layer_count != config.layers {
            return Err(ModelDecodeError::Corrupt("layer count mismatch"));
        }
        let mut layers = Vec::with_capacity(layer_count);
        for _ in 0..layer_count {
            let rows = r.usize()?;
            let cols = r.usize()?;
            if rows == 0 || cols == 0 {
                return Err(ModelDecodeError::Corrupt("empty layer"));
            }
            let w = r.f32_vec(rows * cols)?;
            let b = r.f32_vec(cols)?;
            layers.push(Linear::from_parts(Matrix::from_vec(rows, cols, w), b));
        }
        GraphSage::from_parts(layers, config)
            .ok_or(ModelDecodeError::Corrupt("layer dimensions do not chain"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainGraph;
    use glaive_graph::{CsrGraph, EdgeKind};
    use glaive_nn::DetRng;

    fn trained_model() -> (GraphSage, Matrix, CsrGraph) {
        let mut rng = DetRng::new(3);
        let n = 20;
        let feats = Matrix::from_fn(n, 4, |_, _| rng.uniform(-1.0, 1.0));
        let preds = CsrGraph::from_edges(n, (1..n as u32).map(|v| (v, v - 1, EdgeKind::Data)));
        let labels: Vec<usize> = (0..n).map(|v| v % 3).collect();
        let mask = vec![true; n];
        let config = SageConfig {
            hidden: 8,
            layers: 2,
            classes: 3,
            sample_size: 5,
            lr: 0.01,
            epochs: 10,
            seed: 9,
        };
        let mut model = GraphSage::try_new(4, &config).expect("valid model config");
        model.train(&[TrainGraph {
            features: &feats,
            graph: &preds,
            labels: &labels,
            mask: &mask,
        }]);
        (model, feats, preds)
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let (model, feats, preds) = trained_model();
        let bytes = model.to_bytes();
        let restored = GraphSage::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(restored.config(), model.config());
        assert_eq!(
            restored.predict_proba(&feats, &preds).data(),
            model.predict_proba(&feats, &preds).data()
        );
    }

    #[test]
    fn rejects_foreign_data() {
        assert!(matches!(
            GraphSage::from_bytes(b"not a m"),
            Err(ModelDecodeError::Truncated)
        ));
        assert!(matches!(
            GraphSage::from_bytes(b"WRONGMAGICxxxxxxxxxxxxxxxxxxx"),
            Err(ModelDecodeError::BadMagic)
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let (model, _, _) = trained_model();
        let bytes = model.to_bytes();
        for cut in [8usize, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                GraphSage::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_tampered_layer_counts() {
        let (model, _, _) = trained_model();
        let mut bytes = model.to_bytes();
        // The layer-count field sits after magic + 6 config fields.
        let pos = 8 + 8 * 7;
        bytes[pos] = bytes[pos].wrapping_add(1);
        assert!(matches!(
            GraphSage::from_bytes(&bytes),
            Err(ModelDecodeError::Corrupt(_)) | Err(ModelDecodeError::Truncated)
        ));
    }
}
