//! The GLAIVE model: GraphSAGE augmented with predecessor-only MEAN
//! aggregation (paper §III-C, Eq. (2)–(3)).
//!
//! Per layer `k`, each node embedding is
//! `h_v^k = σ(W^k · [h_v^{k-1} ‖ mean_{u ∈ PR(v)} h_u^{k-1}])`
//! where `PR(v)` are the node's *predecessors* in the bit-level CDFG — the
//! direction along which soft errors propagate. Aggregating only over
//! predecessors (instead of all neighbours, as vanilla GraphSAGE does) is
//! the paper's key model change; the vanilla variant is available for the
//! ablation by passing symmetrised neighbour lists.
//!
//! The model is **inductive**: it never sees node identities, only features
//! and neighbourhood structure, so a model trained on some programs' graphs
//! transfers to unseen programs without retraining (paper §V-A).
//!
//! Training is full-batch with per-epoch neighbour resampling (sample size
//! 50 as in the paper). The paper's 256-node minibatching is replaced by
//! full-batch gradient steps — with our graph sizes one full-batch step
//! processes roughly as many labelled nodes as the paper's epoch of
//! minibatches (documented substitution, see DESIGN.md §1).
//!
//! Graphs enter and leave this crate as flat, kind-tagged CSR adjacencies
//! ([`glaive_graph::CsrGraph`]); the aggregation kernels in [`kernels`]
//! run over contiguous CSR ranges with no per-node allocation, and
//! per-epoch neighbour sampling reuses one [`SampledCsr`] workspace.
//!
//! # Example
//!
//! ```
//! use glaive_graph::{CsrGraph, EdgeKind};
//! use glaive_nn::Matrix;
//! use glaive_gnn::{GraphSage, SageConfig, TrainGraph};
//!
//! // A 4-node chain 0 → 1 → 2 → 3 whose labels depend on the predecessor:
//! // node v's aggregation row holds its predecessor v-1.
//! let features = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
//! let preds = CsrGraph::from_edges(4, (1..4u32).map(|v| (v, v - 1, EdgeKind::Data)));
//! let labels = vec![0, 1, 0, 1];
//! let mask = vec![true; 4];
//! let graph = TrainGraph {
//!     features: &features,
//!     graph: &preds,
//!     labels: &labels,
//!     mask: &mask,
//! };
//! let config = SageConfig { hidden: 8, layers: 2, classes: 2, epochs: 60, ..SageConfig::default() };
//! let mut model = GraphSage::try_new(2, &config).expect("valid model config");
//! let stats = model.train(&[graph]);
//! assert!(stats.final_loss() < stats.epoch_losses[0]);
//! let pred = model.predict_labels(&features, &preds);
//! assert_eq!(pred, labels);
//! ```

pub mod kernels;
mod model;
mod serdes;

pub use kernels::SampledCsr;
pub use model::{GraphSage, ModelConfigError, SageConfig, TrainGraph, TrainStats};
pub use serdes::ModelDecodeError;
