//! CSR-driven aggregation kernels and the neighbour-sampling workspace.
//!
//! All kernels operate on flat [`CsrView`] ranges — contiguous `&[u32]`
//! neighbour slices — so the inner loops are allocation-free and touch
//! memory sequentially. The forward mean-aggregate is row-blocked across
//! std scoped threads for large graphs (each output row depends only on
//! the shared input matrix, so the split is deterministic); the backward
//! scatter stays serial because different source rows accumulate into the
//! same destination rows and the summation order is part of the
//! reproducibility contract.

use glaive_graph::{CsrGraph, CsrView};
use glaive_nn::{DetRng, Linear, LinearGrads, Matrix};

/// Below this many multiply-adds the scoped-thread fan-out costs more than
/// it saves and the serial path runs instead.
const PARALLEL_WORK_THRESHOLD: usize = 1 << 18;

/// Mean-aggregates `h` over each node's neighbourhood: row `v` of the
/// result is the mean of `h`'s rows listed in `graph.neighbors(v)`; nodes
/// without neighbours aggregate to zero.
///
/// Rows are accumulated in CSR order, so the result is bit-identical
/// regardless of how many threads run — threads split the *output* rows,
/// never one row's summation.
///
/// # Panics
///
/// Panics if `graph` has a different node count than `h` has rows.
pub fn mean_aggregate(h: &Matrix, graph: CsrView<'_>) -> Matrix {
    assert_eq!(
        h.rows(),
        graph.node_count(),
        "feature/neighbour count mismatch"
    );
    let cols = h.cols();
    let mut out = Matrix::zeros(h.rows(), cols);
    let work = graph.edge_count() * cols;
    let threads = if work < PARALLEL_WORK_THRESHOLD {
        1
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    if threads <= 1 || out.rows() <= 1 {
        aggregate_rows(h, graph, 0, out.data_mut());
        return out;
    }
    let rows_per = out.rows().div_ceil(threads);
    std::thread::scope(|scope| {
        for (block, chunk) in out.data_mut().chunks_mut(rows_per * cols).enumerate() {
            scope.spawn(move || aggregate_rows(h, graph, block * rows_per, chunk));
        }
    });
    out
}

/// Fills one contiguous block of output rows, starting at node `start`.
fn aggregate_rows(h: &Matrix, graph: CsrView<'_>, start: usize, block: &mut [f32]) {
    let cols = h.cols();
    for (r, row_out) in block.chunks_mut(cols).enumerate() {
        let ns = graph.neighbors(start + r);
        if ns.is_empty() {
            continue;
        }
        let inv = 1.0 / ns.len() as f32;
        for &u in ns {
            for (a, &b) in row_out.iter_mut().zip(h.row(u as usize)) {
                *a += b * inv;
            }
        }
    }
}

/// Backward of [`mean_aggregate`]: scatters each node's aggregate gradient
/// back onto its neighbours, scaled by `1/deg`. Accumulates into `d_h`.
///
/// The source row is borrowed once per node (`d_agg` and `d_h` are
/// distinct matrices, so no copy is needed) and destination rows receive
/// contributions in ascending source-node order.
///
/// # Panics
///
/// Panics if the matrix shapes disagree with the graph.
pub fn scatter_mean_backward(d_agg: &Matrix, graph: CsrView<'_>, d_h: &mut Matrix) {
    assert_eq!(d_agg.rows(), graph.node_count(), "gradient/graph mismatch");
    assert_eq!(d_agg.rows(), d_h.rows(), "gradient shape mismatch");
    assert_eq!(d_agg.cols(), d_h.cols(), "gradient shape mismatch");
    for v in 0..graph.node_count() {
        let ns = graph.neighbors(v);
        if ns.is_empty() {
            continue;
        }
        let inv = 1.0 / ns.len() as f32;
        let src = d_agg.row(v);
        for &u in ns {
            for (a, &b) in d_h.row_mut(u as usize).iter_mut().zip(src) {
                *a += b * inv;
            }
        }
    }
}

/// Fused GraphSAGE layer forward: aggregate → concat → linear without ever
/// materialising the concatenated `[h ‖ agg]` matrix (the linear layer
/// reads both halves in place via [`Linear::forward_concat`]). Returns
/// `(agg, pre_activation)` — both are needed by the backward pass.
///
/// Bit-identical to `layer.forward(&h.hconcat(&mean_aggregate(h, neigh)))`:
/// the fused matmul walks the virtual concatenation in the same
/// element order.
pub fn sage_forward_fused(layer: &Linear, h: &Matrix, neigh: CsrView<'_>) -> (Matrix, Matrix) {
    let agg = mean_aggregate(h, neigh);
    let pre = layer.forward_concat(h, &agg);
    (agg, pre)
}

/// Fused GraphSAGE layer backward: splits the pre-activation gradient into
/// its self/aggregate halves inside the matmul (no materialised `d_z`, no
/// `hsplit` copy) and scatters the aggregate half back through the mean
/// onto the neighbours. Returns `(d_h, parameter_grads)` where `d_h`
/// already contains both the direct and the scattered contribution.
///
/// Bit-identical to the unfused `backward` + `hsplit` +
/// [`scatter_mean_backward`] sequence.
pub fn sage_backward_fused(
    layer: &Linear,
    h: &Matrix,
    agg: &Matrix,
    neigh: CsrView<'_>,
    d_pre: &Matrix,
) -> (Matrix, LinearGrads) {
    let (mut d_h, d_agg, grads) = layer.backward_concat(h, agg, d_pre);
    scatter_mean_backward(&d_agg, neigh, &mut d_h);
    (d_h, grads)
}

/// A reusable neighbour-sampling workspace: the sampled neighbourhood of a
/// graph, stored as its own small CSR.
///
/// [`SampledCsr::resample`] draws up to `k` neighbours per node without
/// replacement (partial Fisher–Yates over an index window) and rebuilds
/// the workspace in place. All three buffers retain their capacity across
/// calls — at most `k · n` targets plus an `n + 1` offset array plus a
/// max-degree scratch pool — so steady-state training epochs allocate
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct SampledCsr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    pool: Vec<u32>,
}

impl SampledCsr {
    /// An empty workspace; buffers grow on first [`SampledCsr::resample`].
    pub fn new() -> SampledCsr {
        SampledCsr::default()
    }

    /// Resamples: each node keeps its full (sorted) neighbour row if it has
    /// at most `k` neighbours, otherwise `k` distinct neighbours drawn via
    /// partial Fisher–Yates, emitted in swap order.
    ///
    /// Only rows longer than `k` consume randomness — exactly `k` draws of
    /// `rng.next_below(deg - i)` each, in ascending node order — so a given
    /// `(graph, k, rng)` state always yields the same sample.
    pub fn resample(&mut self, graph: &CsrGraph, k: usize, rng: &mut DetRng) {
        assert!(k >= 1, "sample size must be positive");
        let n = graph.node_count();
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.targets.clear();
        self.targets.reserve(graph.edge_count().min(k * n));
        self.offsets.push(0);
        for v in 0..n {
            let row = graph.neighbors(v);
            if row.len() <= k {
                self.targets.extend_from_slice(row);
            } else {
                self.pool.clear();
                self.pool.extend_from_slice(row);
                for i in 0..k {
                    let j = i + rng.next_below(self.pool.len() - i);
                    self.pool.swap(i, j);
                }
                self.targets.extend_from_slice(&self.pool[..k]);
            }
            self.offsets.push(self.targets.len() as u32);
        }
    }

    /// The sampled neighbourhood as a CSR view.
    ///
    /// # Panics
    ///
    /// Panics if called before the first [`SampledCsr::resample`].
    pub fn view(&self) -> CsrView<'_> {
        assert!(!self.offsets.is_empty(), "resample before viewing");
        CsrView::new(&self.offsets, &self.targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_graph::EdgeKind;

    fn chain(n: usize) -> CsrGraph {
        CsrGraph::from_edges(n, (1..n).map(|v| (v as u32, v as u32 - 1, EdgeKind::Data)))
    }

    #[test]
    fn aggregate_means_neighbour_rows() {
        let g = CsrGraph::from_edges(
            3,
            [
                (1u32, 0u32, EdgeKind::Data),
                (2, 0, EdgeKind::Data),
                (2, 1, EdgeKind::Data),
            ],
        );
        let h = Matrix::from_vec(3, 2, vec![2.0, 4.0, 6.0, 8.0, 1.0, 1.0]);
        let agg = mean_aggregate(&h, g.view());
        assert_eq!(agg.row(0), &[0.0, 0.0]);
        assert_eq!(agg.row(1), &[2.0, 4.0]);
        assert_eq!(agg.row(2), &[4.0, 6.0]);
    }

    #[test]
    fn scatter_is_the_adjoint_of_aggregate() {
        // <aggregate(h), g> == <h, scatter(g)> for any h, g.
        let mut rng = DetRng::new(7);
        let g = CsrGraph::from_edges(
            6,
            (0..12u32).map(|i| {
                let a = i % 6;
                let b = (i * 5 + 1) % 6;
                (a, b, EdgeKind::Data)
            }),
        );
        let h = Matrix::from_fn(6, 3, |_, _| rng.uniform(-1.0, 1.0));
        let grad = Matrix::from_fn(6, 3, |_, _| rng.uniform(-1.0, 1.0));
        let agg = mean_aggregate(&h, g.view());
        let mut scattered = Matrix::zeros(6, 3);
        scatter_mean_backward(&grad, g.view(), &mut scattered);
        let lhs: f32 = agg.data().iter().zip(grad.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = h
            .data()
            .iter()
            .zip(scattered.data())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn sampling_caps_rows_and_reuses_buffers() {
        // Node 0's row has 10 entries (sampled down to 3); node 1's has 2
        // (kept verbatim); the rest are empty.
        let g = CsrGraph::from_edges(
            12,
            (1..11u32)
                .map(|t| (0u32, t, EdgeKind::Data))
                .chain([(1u32, 10u32, EdgeKind::Data), (1, 11, EdgeKind::Data)]),
        );
        let mut ws = SampledCsr::new();
        let mut rng = DetRng::new(1);
        ws.resample(&g, 3, &mut rng);
        let v = ws.view();
        assert_eq!(v.node_count(), 12);
        assert_eq!(v.neighbors(0).len(), 3);
        assert_eq!(v.neighbors(1).len(), 2);
        for node in 0..12 {
            assert!(v.neighbors(node).len() <= 3);
            // Sampled entries are distinct members of the original row.
            let mut s = v.neighbors(node).to_vec();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), v.neighbors(node).len());
            for &t in v.neighbors(node) {
                assert!(g.neighbors(node).contains(&t));
            }
        }
        // Resampling reuses capacity: pointers stay stable once warm.
        ws.resample(&g, 3, &mut rng);
        let cap = (ws.offsets.capacity(), ws.targets.capacity());
        for _ in 0..5 {
            ws.resample(&g, 3, &mut rng);
        }
        assert_eq!(cap, (ws.offsets.capacity(), ws.targets.capacity()));
    }

    #[test]
    fn sampling_is_deterministic_for_a_given_rng_state() {
        let g = chain(40).symmetrised();
        let mut a = SampledCsr::new();
        let mut b = SampledCsr::new();
        let mut rng_a = DetRng::new(5);
        let mut rng_b = DetRng::new(5);
        for _ in 0..3 {
            a.resample(&g, 1, &mut rng_a);
            b.resample(&g, 1, &mut rng_b);
            assert_eq!(a.offsets, b.offsets);
            assert_eq!(a.targets, b.targets);
        }
    }

    #[test]
    fn small_rows_are_copied_verbatim_without_consuming_rng() {
        let g = chain(8);
        let mut ws = SampledCsr::new();
        let mut rng = DetRng::new(9);
        ws.resample(&g, 4, &mut rng);
        // Every row has degree <= 1 <= k: no draws happened.
        assert_eq!(rng.next_below(1 << 30), DetRng::new(9).next_below(1 << 30));
        for v in 0..8 {
            assert_eq!(ws.view().neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn fused_sage_kernels_match_unfused_bitwise() {
        let mut rng = DetRng::new(13);
        let g = CsrGraph::from_edges(
            9,
            (0..20u32).map(|i| (i % 9, (i * 7 + 2) % 9, EdgeKind::Data)),
        );
        let h = Matrix::from_fn(9, 5, |_, _| rng.uniform(-1.0, 1.0));
        let layer = Linear::glorot(10, 4, &mut rng);
        let d_pre = Matrix::from_fn(9, 4, |_, _| rng.uniform(-1.0, 1.0));

        let (agg, pre) = sage_forward_fused(&layer, &h, g.view());
        let agg_ref = mean_aggregate(&h, g.view());
        let z = h.hconcat(&agg_ref);
        let pre_ref = layer.forward(&z);
        assert_eq!(agg.data(), agg_ref.data());
        for (a, b) in pre.data().iter().zip(pre_ref.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let (d_h, grads) = sage_backward_fused(&layer, &h, &agg, g.view(), &d_pre);
        let (d_z, grads_ref) = layer.backward(&z, &d_pre);
        let (d_self, d_agg) = d_z.hsplit(5);
        let mut d_h_ref = d_self;
        scatter_mean_backward(&d_agg, g.view(), &mut d_h_ref);
        for (a, b) in d_h.data().iter().zip(d_h_ref.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in grads.w.data().iter().zip(grads_ref.w.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(grads.b, grads_ref.b);
    }

    #[test]
    fn parallel_and_serial_aggregation_agree_bitwise() {
        // Big enough to cross PARALLEL_WORK_THRESHOLD with wide features.
        let n = 2000;
        let mut rng = DetRng::new(3);
        let g = CsrGraph::from_edges(
            n,
            (0..8 * n as u32).map(|i| {
                let a = i % n as u32;
                let b = (i * 31 + 7) % n as u32;
                (a, b, EdgeKind::Data)
            }),
        );
        let h = Matrix::from_fn(n, 64, |_, _| rng.uniform(-1.0, 1.0));
        let fast = mean_aggregate(&h, g.view());
        let mut slow = Matrix::zeros(n, 64);
        aggregate_rows(&h, g.view(), 0, slow.data_mut());
        assert_eq!(fast.data(), slow.data());
    }
}
