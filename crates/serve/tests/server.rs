//! End-to-end tests of the model server: differential correctness under
//! concurrency, graceful shutdown, and wire-level robustness against
//! corrupted frames.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use glaive_cdfg::{Cdfg, CdfgConfig, FEATURE_DIM};
use glaive_gnn::{GraphSage, SageConfig};
use glaive_isa::{AluOp, Asm, BranchCond, Program, Reg};
use glaive_nn::Matrix;
use glaive_serve::protocol::{read_frame, MAGIC};
use glaive_serve::{
    Client, ErrorCode, ProgramSpec, ProtocolError, Request, Response, Server, ServerConfig,
};

const STRIDE: usize = 16;

/// Writes arbitrary bytes with the wire length prefix, bypassing the
/// sealed [`glaive_serve::protocol::Frame`] API — production code cannot
/// do this, which is exactly what the corruption tests need.
fn write_raw(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

fn model() -> GraphSage {
    GraphSage::try_new(
        FEATURE_DIM,
        &SageConfig {
            hidden: 8,
            layers: 2,
            classes: 3,
            sample_size: 4,
            lr: 1e-2,
            epochs: 1,
            seed: 9,
        },
    )
    .expect("valid model config")
}

/// Three small, structurally distinct programs so coalesced batches mix
/// different graph shapes.
fn programs() -> Vec<Program> {
    let mut out = Vec::new();

    let mut a = Asm::new("straightline");
    a.li(Reg(1), 2)
        .li(Reg(2), 40)
        .alu(AluOp::Add, Reg(3), Reg(1), Reg(2))
        .out(Reg(3))
        .halt();
    out.push(a.finish().expect("assembles"));

    let mut b = Asm::new("looped");
    let top = b.label();
    b.li(Reg(1), 5).li(Reg(2), 0);
    b.bind(top)
        .alu(AluOp::Add, Reg(2), Reg(2), Reg(1))
        .alu_imm(AluOp::Sub, Reg(1), Reg(1), 1)
        .branch(BranchCond::Ne, Reg(1), Reg(0), top)
        .out(Reg(2))
        .halt();
    out.push(b.finish().expect("assembles"));

    let mut c = Asm::new("memory");
    c.set_mem_words(4);
    c.li(Reg(1), 7)
        .store(Reg(1), Reg(0), 1)
        .load(Reg(2), Reg(0), 1)
        .alu_imm(AluOp::Mul, Reg(2), Reg(2), 6)
        .out(Reg(2))
        .halt();
    out.push(c.finish().expect("assembles"));

    out
}

fn serial_probs(model: &GraphSage, program: &Program) -> Matrix {
    let cdfg = Cdfg::build(program, &CdfgConfig { bit_stride: STRIDE });
    let features = Matrix::from_vec(cdfg.node_count(), FEATURE_DIM, cdfg.feature_matrix());
    model.predict_proba(&features, cdfg.preds_csr())
}

/// Concurrent clients hammering the coalescing path must each receive
/// results bit-identical to single-program serial inference with the same
/// weights — the service-level differential guarantee.
#[test]
fn batched_inference_is_bit_identical_to_serial_under_concurrency() {
    let model = model();
    let programs = programs();
    let references: Vec<Matrix> = programs.iter().map(|p| serial_probs(&model, p)).collect();
    let programs = Arc::new(programs);
    let references = Arc::new(references);

    const CLIENTS: usize = 6;
    const REQUESTS: usize = 8;
    let server = Server::bind(
        model,
        "127.0.0.1:0",
        ServerConfig {
            workers: CLIENTS,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mismatches = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let programs = programs.clone();
            let references = references.clone();
            let mismatches = mismatches.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                for r in 0..REQUESTS {
                    let which = (id + r) % programs.len();
                    let spec = ProgramSpec::Raw(programs[which].clone());
                    let reply = client
                        .predict(spec, STRIDE as u32, 5, true)
                        .expect("predict");
                    let serial = &references[which];
                    assert_eq!(reply.node_count as usize, serial.rows());
                    assert_eq!(reply.tuples.len(), programs[which].len());
                    let bits = reply.bit_probs.as_deref().expect("requested bit probs");
                    let identical = bits.len() == serial.rows()
                        && bits.iter().enumerate().all(|(row, got)| {
                            got.iter()
                                .zip(serial.row(row))
                                .all(|(a, b)| a.to_bits() == b.to_bits())
                        });
                    if !identical {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    assert_eq!(mismatches.load(Ordering::Relaxed), 0, "batched ≠ serial");

    let mut control = Client::connect(addr).expect("control");
    let stats = control.stats().expect("stats");
    assert!(
        stats.predictions >= (CLIENTS * REQUESTS) as u64,
        "all predictions counted"
    );
    assert_eq!(stats.errors, 0, "no server-side errors");
    control.shutdown_server().expect("shutdown");
    let final_stats = handle.join().expect("clean exit");
    assert!(final_stats.requests > stats.requests, "stats monotone");
}

/// Shutdown is graceful: the ack arrives, the server thread exits, and the
/// port stops accepting work.
#[test]
fn shutdown_is_acknowledged_and_terminal() {
    let server = Server::bind(model(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping before shutdown");
    client.shutdown_server().expect("shutdown acknowledged");
    handle.join().expect("server run returns");

    // The listener is gone: a fresh connection either fails outright or
    // dies on first use.
    if let Ok(mut late) = Client::connect(addr) {
        assert!(late.ping().is_err(), "server still serving after shutdown");
    }
}

/// Every single-byte flip of a sealed request payload must decode to a
/// typed error — magic, opcode, body and checksum positions alike.
#[test]
fn request_frames_reject_every_single_byte_flip_and_truncation() {
    let request = Request::Predict {
        spec: ProgramSpec::Raw(programs().remove(1)),
        stride: STRIDE as u32,
        top_k: 4,
        want_bits: true,
    };
    let payload = request.to_frame().into_bytes();
    assert!(payload.len() > MAGIC.len() + 8);
    for pos in 0..payload.len() {
        for flip in [0x01u8, 0xff] {
            let mut tampered = payload.clone();
            tampered[pos] ^= flip;
            assert!(
                Request::from_frame(&tampered).is_err(),
                "request flip {flip:#04x} at byte {pos} was not rejected"
            );
        }
    }
    for len in 0..payload.len() {
        assert!(
            Request::from_frame(&payload[..len]).is_err(),
            "request truncation to {len} bytes was not rejected"
        );
    }
}

/// The same property for response payloads, which carry f32 matrices and
/// optional sections.
#[test]
fn response_frames_reject_every_single_byte_flip_and_truncation() {
    let response = Response::Predict(glaive_serve::PredictReply {
        tuples: vec![Some([0.25, 0.5, 0.25]), None, Some([0.0, 0.125, 0.875])],
        top_k: vec![2, 0],
        node_count: 9,
        batch_size: 3,
        bit_probs: Some(vec![[0.5, 0.25, 0.25]; 9]),
    });
    let payload = response.to_frame().into_bytes();
    for pos in 0..payload.len() {
        for flip in [0x01u8, 0xff] {
            let mut tampered = payload.clone();
            tampered[pos] ^= flip;
            assert!(
                Response::from_frame(&tampered).is_err(),
                "response flip {flip:#04x} at byte {pos} was not rejected"
            );
        }
    }
    for len in 0..payload.len() {
        assert!(
            Response::from_frame(&payload[..len]).is_err(),
            "response truncation to {len} bytes was not rejected"
        );
    }
}

/// The flip/truncation property extends to the budget opcode pair: a
/// tampered `BudgetQuery` request or reply never decodes.
#[test]
fn budget_frames_reject_every_single_byte_flip_and_truncation() {
    let request = Request::Budget {
        spec: ProgramSpec::Raw(programs().remove(1)),
        stride: STRIDE as u32,
        overhead_pct: 5,
    };
    let response = Response::Budget(glaive_serve::BudgetReply {
        items: vec![
            glaive_serve::BudgetItem {
                pc: 2,
                cycles: 31,
                score: 1.5,
            },
            glaive_serve::BudgetItem {
                pc: 5,
                cycles: 9,
                score: 0.25,
            },
        ],
        node_count: 40,
        batch_size: 1,
        total_cycles: 800,
        budget_cycles: 40,
        spent_cycles: 40,
        covered: 1.75,
    });
    let req_payload = request.to_frame().into_bytes();
    let resp_payload = response.to_frame().into_bytes();
    for (what, payload) in [("request", req_payload), ("response", resp_payload)] {
        for pos in 0..payload.len() {
            for flip in [0x01u8, 0xff] {
                let mut tampered = payload.clone();
                tampered[pos] ^= flip;
                let rejected = if what == "request" {
                    Request::from_frame(&tampered).is_err()
                } else {
                    Response::from_frame(&tampered).is_err()
                };
                assert!(
                    rejected,
                    "budget {what} flip {flip:#04x} at byte {pos} was not rejected"
                );
            }
        }
        for len in 0..payload.len() {
            let rejected = if what == "request" {
                Request::from_frame(&payload[..len]).is_err()
            } else {
                Response::from_frame(&payload[..len]).is_err()
            };
            assert!(
                rejected,
                "budget {what} truncation to {len} bytes was not rejected"
            );
        }
    }
}

/// The budget opcode end-to-end: the same query twice against a live
/// server returns identical replies (greedy selection is deterministic),
/// the selection honors its own arithmetic (`budget = total·pct/100`,
/// `spent ≤ budget`, `spent = Σ chosen cycles`, `covered = Σ chosen
/// scores`), and chosen PCs are real instructions that executed.
#[test]
fn budget_query_is_deterministic_and_honors_the_cycle_budget() {
    let program = programs().remove(1); // the looped kernel: uneven residency
    let n_pcs = program.len();
    let server = Server::bind(model(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    let spec = ProgramSpec::Raw(program);
    let first = client
        .budget(spec.clone(), STRIDE as u32, 50)
        .expect("budget");
    let second = client
        .budget(spec.clone(), STRIDE as u32, 50)
        .expect("budget again");
    assert_eq!(first, second, "budget selection must be deterministic");

    assert!(first.total_cycles > 0, "the golden run executed something");
    assert_eq!(
        first.budget_cycles,
        first.total_cycles * 50 / 100,
        "budget is the requested share of golden cycles"
    );
    assert!(first.spent_cycles <= first.budget_cycles, "over budget");
    assert!(
        !first.items.is_empty(),
        "50% budget on a tiny kernel picks something"
    );
    assert_eq!(
        first.spent_cycles,
        first.items.iter().map(|i| i.cycles).sum::<u64>(),
        "spent is the sum of chosen costs"
    );
    let score_sum: f32 = first.items.iter().map(|i| i.score).sum();
    assert!(
        (first.covered - score_sum).abs() < 1e-4,
        "covered ≠ Σ scores"
    );
    for item in &first.items {
        assert!((item.pc as usize) < n_pcs, "chosen PC outside the program");
        assert!(item.cycles > 0, "a chosen PC must have executed");
    }

    // A zero budget picks nothing but still answers.
    let zero = client.budget(spec, STRIDE as u32, 0).expect("zero budget");
    assert!(zero.items.is_empty());
    assert_eq!(zero.spent_cycles, 0);

    client.shutdown_server().expect("shutdown");
    handle.join().expect("clean exit");
}

/// A program whose golden run cannot finish (an infinite loop trips the
/// instruction ceiling) is rejected with a typed `BadRequest` — the cycle
/// budget is undefined without a finished baseline — and the server keeps
/// serving.
#[test]
fn budget_query_rejects_programs_whose_golden_run_never_halts() {
    let mut a = Asm::new("spinner");
    let top = a.label();
    a.bind(top)
        .alu_imm(AluOp::Add, Reg(1), Reg(1), 1)
        .branch(BranchCond::Eq, Reg(0), Reg(0), top)
        .halt();
    let spinner = a.finish().expect("assembles");

    let server = Server::bind(model(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut client = Client::connect(addr).expect("connect");
    match client.budget(ProgramSpec::Raw(spinner), STRIDE as u32, 5) {
        Err(glaive_serve::ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(
                message.contains("golden run"),
                "unexpected rejection reason: {message}"
            );
        }
        other => panic!("expected a typed BadRequest, got {other:?}"),
    }
    client.ping().expect("server healthy after rejection");
    client.shutdown_server().expect("shutdown");
    handle.join().expect("clean exit");
}

/// A live server answers a corrupted frame with a typed `BadRequest`
/// error — it neither dies nor hangs — and keeps serving well-formed
/// requests afterwards.
#[test]
fn server_survives_corrupt_frames_on_the_wire() {
    let server = Server::bind(model(), "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut payload = Request::Ping.to_frame().into_bytes();
    let last = payload.len() - 1;
    payload[last] ^= 0xff; // break the checksum
    let mut stream = std::net::TcpStream::connect(addr).expect("raw connect");
    // The sealed-frame API refuses to carry these bytes, so the attacker
    // frames them by hand: u32 length prefix, then the raw payload.
    write_raw(&mut stream, &payload).expect("send corrupt frame");
    let reply = read_frame(&mut stream).expect("server answers");
    match Response::from_frame(&reply) {
        Ok(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest error, got {other:?}"),
    }
    drop(stream);

    // The server is still healthy.
    let mut client = Client::connect(addr).expect("connect after corruption");
    client.ping().expect("ping after corruption");
    client.shutdown_server().expect("shutdown");
    handle.join().expect("clean exit");
}

/// Oversized length prefixes are rejected before any allocation.
#[test]
fn read_frame_rejects_oversized_length_prefix() {
    let mut bogus: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0x00];
    match read_frame(&mut bogus) {
        Err(ProtocolError::FrameTooLarge(_)) => {}
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}

/// A resilient client under seeded chaos — corrupted frames, short ops,
/// delays, hard disconnects on its own connections — still receives
/// replies bit-identical to serial inference: checksums catch every
/// mangled frame and the retry loop re-sends on a fresh connection.
#[test]
fn resilient_client_under_chaos_is_bit_identical_to_serial() {
    use glaive_serve::ResilientClient;
    use glaive_wire::{ChaosConfig, ChaosPlan, RetryPolicy};

    let model = model();
    let programs = programs();
    let references: Vec<Matrix> = programs.iter().map(|p| serial_probs(&model, p)).collect();

    let server = Server::bind(model, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    let plan = ChaosPlan::new(ChaosConfig::new(0x5E4E_C4A0).with_fault_ppm(3_000));
    let mut client = ResilientClient::new(
        addr.to_string(),
        RetryPolicy::patient(std::time::Duration::from_secs(60)),
    )
    .with_chaos(plan.clone(), 0);
    for r in 0..12 {
        let which = r % programs.len();
        let reply = client
            .predict(
                &ProgramSpec::Raw(programs[which].clone()),
                STRIDE as u32,
                5,
                true,
            )
            .expect("resilient predict survives chaos");
        let serial = &references[which];
        let bits = reply.bit_probs.as_deref().expect("requested bit probs");
        assert_eq!(bits.len(), serial.rows());
        for (row, got) in bits.iter().enumerate() {
            for (a, b) in got.iter().zip(serial.row(row)) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit divergence at row {row}");
            }
        }
    }
    assert!(
        plan.report().total() > 0,
        "the schedule must actually inject faults for this test to mean anything"
    );

    let mut control = Client::connect(addr).expect("control");
    control.shutdown_server().expect("shutdown");
    handle.join().expect("clean exit");
}

/// Pipelining: one client writes K predict requests back-to-back on a
/// single socket before reading anything. The server must answer all K in
/// request order, each bit-identical to serial inference — the in-order
/// reply queue cannot reorder or drop slots however the frames coalesce.
#[test]
fn pipelined_requests_on_one_socket_reply_in_order_and_bit_identical() {
    use glaive_serve::protocol::write_frame;

    let model = model();
    let programs = programs();
    let references: Vec<Matrix> = programs.iter().map(|p| serial_probs(&model, p)).collect();

    let server = Server::bind(model, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    const K: usize = 12;
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("read timeout");
    for i in 0..K {
        let request = Request::Predict {
            spec: ProgramSpec::Raw(programs[i % programs.len()].clone()),
            stride: STRIDE as u32,
            top_k: 5,
            want_bits: true,
        };
        write_frame(&mut stream, &request.to_frame()).expect("send pipelined request");
    }

    for i in 0..K {
        let payload = read_frame(&mut stream).expect("reply arrives");
        let reply = match Response::from_frame(&payload).expect("reply decodes") {
            Response::Predict(reply) => reply,
            other => panic!("reply {i} was not a prediction: {other:?}"),
        };
        let serial = &references[i % references.len()];
        assert_eq!(
            reply.node_count as usize,
            serial.rows(),
            "reply {i} answers the wrong request — ordering broke"
        );
        let bits = reply.bit_probs.as_deref().expect("requested bit probs");
        assert_eq!(bits.len(), serial.rows());
        for (row, got) in bits.iter().enumerate() {
            for (a, b) in got.iter().zip(serial.row(row)) {
                assert_eq!(a.to_bits(), b.to_bits(), "reply {i} diverged at row {row}");
            }
        }
    }
    drop(stream);

    let mut control = Client::connect(addr).expect("control");
    control.shutdown_server().expect("shutdown");
    handle.join().expect("clean exit");
}

/// Admission control: with the in-flight bound pinned to 1, a pipelined
/// burst must see typed `Busy` rejections (carrying the configured retry
/// hint), every accepted request still answers bit-identically, reply
/// order is preserved across the Busy/Predict mix, and the rejection
/// counters surface in stats.
#[test]
fn saturated_server_sheds_load_with_typed_busy_replies() {
    use glaive_serve::protocol::write_frame;

    let model = model();
    let program = programs().remove(0);
    let serial = serial_probs(&model, &program);

    let server = Server::bind(
        model,
        "127.0.0.1:0",
        ServerConfig {
            queue_bound: 1,
            busy_retry_ms: 7,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    const K: usize = 16;
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("read timeout");
    for _ in 0..K {
        let request = Request::Predict {
            spec: ProgramSpec::Raw(program.clone()),
            stride: STRIDE as u32,
            top_k: 5,
            want_bits: true,
        };
        write_frame(&mut stream, &request.to_frame()).expect("send burst request");
    }

    let (mut answered, mut busy) = (0usize, 0usize);
    for i in 0..K {
        let payload = read_frame(&mut stream).expect("reply arrives");
        match Response::from_frame(&payload).expect("reply decodes") {
            Response::Predict(reply) => {
                answered += 1;
                let bits = reply.bit_probs.as_deref().expect("requested bit probs");
                assert_eq!(bits.len(), serial.rows());
                for (row, got) in bits.iter().enumerate() {
                    for (a, b) in got.iter().zip(serial.row(row)) {
                        assert_eq!(a.to_bits(), b.to_bits(), "reply {i} diverged at row {row}");
                    }
                }
            }
            Response::Busy { retry_after_ms } => {
                busy += 1;
                assert_eq!(retry_after_ms, 7, "Busy must carry the configured hint");
            }
            other => panic!("reply {i} was neither Predict nor Busy: {other:?}"),
        }
    }
    assert_eq!(answered + busy, K);
    assert!(answered >= 1, "at least the first request must be admitted");
    assert!(
        busy >= 1,
        "a burst of {K} against queue_bound=1 must shed load"
    );
    drop(stream);

    let mut control = Client::connect(addr).expect("control");
    let stats = control.stats().expect("stats");
    assert_eq!(stats.busy_rejections, busy as u64);
    assert!(stats.queue_depth_max >= 1);
    assert_eq!(stats.errors, 0, "Busy is not an error");
    control.shutdown_server().expect("shutdown");
    handle.join().expect("clean exit");
}

/// `ResilientClient` treats `Busy` as transient backpressure: it keeps the
/// connection, sleeps at least the server's hint, and retries on the SAME
/// socket — proven by a scripted server that answers Busy twice and then
/// Pong without ever accepting a second connection.
#[test]
fn resilient_client_retries_busy_on_the_same_connection() {
    use glaive_serve::protocol::write_frame;
    use glaive_serve::ResilientClient;
    use glaive_wire::RetryPolicy;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind scripted server");
    let addr = listener.local_addr().expect("addr");
    let script = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("single accept");
        for reply in [
            Response::Busy { retry_after_ms: 5 },
            Response::Busy { retry_after_ms: 5 },
            Response::Pong,
        ] {
            let payload = read_frame(&mut stream).expect("request arrives");
            match Request::from_frame(&payload).expect("request decodes") {
                Request::Ping => {}
                other => panic!("scripted server expected Ping, got {other:?}"),
            }
            write_frame(&mut stream, &reply.to_frame()).expect("scripted reply");
        }
        // A second accept would mean the client dropped the connection on
        // Busy; the listener is closed here, so that would surface as a
        // client-side connect error and fail the test.
    });

    let mut client = ResilientClient::new(
        addr.to_string(),
        RetryPolicy::patient(std::time::Duration::from_secs(30)),
    );
    client.ping().expect("ping succeeds after two Busy replies");
    let report = client.report();
    assert_eq!(report.busy_responses, 2, "both Busy replies counted");
    assert!(report.retries >= 2, "each Busy consumed a retry");
    script.join().expect("scripted server");
}

/// A peer that opens a frame and then stalls mid-payload is disconnected
/// once the server's `stall` deadline passes — it cannot pin a connection
/// worker — and the server keeps serving others.
#[test]
fn stalled_peer_is_cut_off_and_cannot_hang_a_worker() {
    use std::io::{Read as _, Write as _};
    use std::time::{Duration, Instant};

    let server = Server::bind(
        model(),
        "127.0.0.1:0",
        ServerConfig {
            stall: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.spawn();

    // Promise 100 payload bytes, deliver 10, go silent mid-frame.
    let mut staller = std::net::TcpStream::connect(addr).expect("raw connect");
    staller
        .write_all(&100u32.to_le_bytes())
        .expect("length prefix");
    staller.write_all(&[0u8; 10]).expect("partial payload");
    staller.flush().expect("flush");

    // Within the stall deadline (plus poll slack) the server answers
    // with a typed error frame and hangs up: an error reply, then EOF.
    staller
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let start = Instant::now();
    let reply = read_frame(&mut staller).expect("typed error before hangup");
    match Response::from_frame(&reply) {
        Ok(Response::Error { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("stalled"), "unexpected reason: {message}");
        }
        other => panic!("expected a stall error, got {other:?}"),
    }
    let mut sink = Vec::new();
    let got = staller.read_to_end(&mut sink).expect("EOF, not a timeout");
    assert_eq!(got, 0, "connection must be closed after the error");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "stalled peer held its worker for {:?}",
        start.elapsed()
    );

    // The worker the staller occupied is free again.
    let mut client = Client::connect(addr).expect("connect after staller");
    client.ping().expect("ping after staller");
    client.shutdown_server().expect("shutdown");
    handle.join().expect("clean exit");
}
