//! `glaive-serve`: a long-lived batched-inference model server.
//!
//! The pipeline crates answer "how vulnerable is this program?" by
//! rebuilding everything from scratch per invocation. This crate turns the
//! trained estimator into a *service*: load a GraphSAGE model once, then
//! answer per-instruction vulnerability queries over TCP at serving
//! latency — no fault injection, no retraining, graph extraction amortised
//! across requests.
//!
//! Architecture (see `DESIGN.md` §11 and §15):
//!
//! - [`protocol`] — the `GLVSRV02` length-prefixed, checksummed wire
//!   format; every malformed frame decodes to a typed
//!   [`ProtocolError`], never a panic.
//! - [`cache`] — a content-addressed, sharded LRU of prepared programs
//!   (CDFG + features), keyed by [`program_fingerprint`].
//! - [`batch`] — request coalescing: concurrent requests merge into one
//!   block-diagonal forward pass that is bit-identical to serial
//!   inference (every GraphSAGE op is row-local).
//! - [`server`] — a readiness-driven event loop (one poll thread owns
//!   every socket, requests pipeline per connection, a bounded admission
//!   queue sheds overload as typed `Busy` replies), the
//!   graph-preparation worker pool and the batcher thread, with
//!   `RunControl`-style cooperative shutdown and
//!   [`Stage::Inference`](glaive::telemetry::Stage) telemetry.
//! - [`client`] — a blocking client used by the CLI `query` subcommand
//!   and the differential tests, plus a retrying [`ResilientClient`]
//!   that honors `Busy` backoff hints.
//!
//! # Example
//!
//! ```no_run
//! use glaive_serve::{Client, ProgramSpec, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let model: glaive_gnn::GraphSage = unimplemented!();
//! let handle = Server::bind(model, "127.0.0.1:0", ServerConfig::default())?.spawn();
//! let mut client = Client::connect(handle.addr())?;
//! let spec = ProgramSpec::Suite { name: "dijkstra".into(), seed: 7 };
//! let reply = client.predict(spec, 8, 10, false)?;
//! println!("protect PCs {:?}", reply.top_k);
//! client.shutdown_server()?;
//! handle.join()?;
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use batch::{BatchResult, BatchWorkspace, InferenceJob, JobQueue};
pub use cache::{program_fingerprint, GraphCache, PreparedProgram};
pub use client::{Client, ClientError, ClientReport, ResilientClient};
pub use protocol::{
    BudgetItem, BudgetReply, ErrorCode, PredictReply, ProgramSpec, ProtocolError, Request,
    Response, StatsReply, WireTuple,
};
pub use server::{ServeError, Server, ServerConfig, ServerHandle};
