//! Request coalescing: concurrent predict requests are merged into one
//! multi-graph forward pass over a block-diagonal disjoint union of their
//! CDFGs.
//!
//! Batching is **bit-identical** to one-at-a-time inference because every
//! operation in the GraphSAGE forward pass is row-local: mean aggregation
//! reads only a node's own CSR row, the linear layers accumulate per
//! output row, and ReLU/softmax are row-wise. A disjoint union introduces
//! no cross-program edges, so each program's rows see exactly the
//! neighbourhoods — and therefore exactly the floating-point operation
//! sequences — they would see alone.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

use glaive_gnn::GraphSage;
use glaive_graph::CsrView;
use glaive_nn::Matrix;

use crate::cache::PreparedProgram;

/// A closable multi-producer queue: connection workers push, the batcher
/// drains everything pending in one go (that drain *is* the coalescing
/// policy — whatever arrived since the last forward pass forms the next
/// batch).
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    cv: Condvar,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> JobQueue<T> {
    /// An empty, open queue.
    pub fn new() -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues one item. Returns `false` (dropping the item) if the queue
    /// is already closed.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("job queue lock");
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        self.cv.notify_one();
        true
    }

    /// Blocks until at least one item is available, then drains *all*
    /// pending items. Returns `None` once the queue is closed and empty.
    pub fn drain_wait(&self) -> Option<Vec<T>> {
        let mut state = self.state.lock().expect("job queue lock");
        loop {
            if !state.items.is_empty() {
                return Some(state.items.drain(..).collect());
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).expect("job queue wait");
        }
    }

    /// Blocks for a single item. Returns `None` once closed and empty.
    pub fn pop_wait(&self) -> Option<T> {
        let mut state = self.state.lock().expect("job queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).expect("job queue wait");
        }
    }

    /// Closes the queue: pushes start failing, and blocked consumers wake
    /// with `None` once the backlog drains.
    pub fn close(&self) {
        self.state.lock().expect("job queue lock").closed = true;
        self.cv.notify_all();
    }

    /// Closes the queue *and* discards its backlog, returning the dropped
    /// items. For abnormal consumer exits: dropping a queued
    /// [`InferenceJob`] drops its reply `Sender`, so producers blocked on
    /// the matching receiver wake with a disconnect error instead of
    /// waiting for a batch that will never run.
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut state = self.state.lock().expect("job queue lock");
        state.closed = true;
        let backlog = state.items.drain(..).collect();
        self.cv.notify_all();
        backlog
    }

    /// Whether [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("job queue lock").closed
    }
}

impl<T> Default for JobQueue<T> {
    fn default() -> Self {
        JobQueue::new()
    }
}

/// The result of one coalesced forward pass, from the perspective of a
/// single request.
pub struct BatchResult {
    /// Per-bit-node class probabilities for this request's program only.
    pub probs: Matrix,
    /// How many requests shared the forward pass.
    pub batch_size: u32,
}

/// One queued predict request: the prepared program plus the channel its
/// slice of the batched result goes back on.
pub struct InferenceJob {
    /// Cached program, CDFG and features.
    pub prepared: Arc<PreparedProgram>,
    /// Where to deliver this program's probability rows. A dropped
    /// receiver (client gone) is ignored.
    pub reply: mpsc::Sender<BatchResult>,
}

/// Reusable staging buffers for the batched forward pass — the
/// `SampledCsr` discipline: allocate on the first batch, reuse capacity
/// forever after, so steady-state serving does no per-request graph
/// allocation.
#[derive(Default)]
pub struct BatchWorkspace {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    feats: Vec<f32>,
}

impl BatchWorkspace {
    /// A workspace with empty buffers.
    pub fn new() -> BatchWorkspace {
        BatchWorkspace::default()
    }

    /// Runs coalesced forward passes over `jobs` and delivers each job its
    /// own probability rows over its reply channel. Returns the number of
    /// jobs served. A thin adapter over [`BatchWorkspace::run_prepared`]
    /// for callers that route results through channels.
    pub fn run_batch(&mut self, model: &GraphSage, jobs: &[InferenceJob]) -> usize {
        let prepared: Vec<Arc<PreparedProgram>> = jobs.iter().map(|j| j.prepared.clone()).collect();
        let results = self.run_prepared(model, &prepared);
        for (job, result) in jobs.iter().zip(results) {
            // The client may have hung up while queued; its slot in the
            // batch is already paid for, so just drop the result.
            let _ = job.reply.send(result);
        }
        jobs.len()
    }

    /// Runs coalesced forward passes over `prepared` and returns one
    /// [`BatchResult`] per program, in input order.
    ///
    /// The staged union indexes nodes and edges with `u32` (the CSR
    /// discipline), so a drained backlog whose totals exceed `u32::MAX` is
    /// split into consecutive chunks that each fit — the bases can never
    /// wrap. Splitting preserves bit-identical results because every
    /// forward-pass operation is row-local (see the module docs).
    pub fn run_prepared(
        &mut self,
        model: &GraphSage,
        prepared: &[Arc<PreparedProgram>],
    ) -> Vec<BatchResult> {
        let mut out = Vec::with_capacity(prepared.len());
        let mut rest = prepared;
        while !rest.is_empty() {
            let take = chunk_len(rest);
            self.run_chunk(model, &rest[..take], &mut out);
            rest = &rest[take..];
        }
        out
    }

    /// One forward pass over `chunk`, whose node/edge totals are already
    /// known to fit in `u32`; appends one result per program to `out`.
    fn run_chunk(
        &mut self,
        model: &GraphSage,
        chunk: &[Arc<PreparedProgram>],
        out: &mut Vec<BatchResult>,
    ) {
        let batch_size = chunk.len() as u32;
        let total_nodes: usize = chunk.iter().map(|p| p.cdfg.node_count()).sum();
        let total_edges: usize = chunk.iter().map(|p| p.cdfg.preds_csr().edge_count()).sum();

        // Block-diagonal disjoint union of the predecessor graphs, staged
        // into the reusable buffers (same shifting scheme as
        // `CsrGraph::disjoint_union`, without the owned-graph allocation).
        self.offsets.clear();
        self.targets.clear();
        self.feats.clear();
        self.offsets.reserve(total_nodes + 1);
        self.targets.reserve(total_edges);
        self.offsets.push(0);
        let mut node_base = 0u32;
        let mut edge_base = 0u32;
        for p in chunk {
            let g = p.cdfg.preds_csr();
            self.offsets
                .extend(g.offsets()[1..].iter().map(|&o| edge_base + o));
            self.targets
                .extend(g.targets().iter().map(|&t| node_base + t));
            self.feats.extend_from_slice(p.features.data());
            node_base += g.node_count() as u32;
            edge_base += g.edge_count() as u32;
        }

        let dim = glaive_cdfg::FEATURE_DIM;
        let features = Matrix::from_vec(total_nodes, dim, std::mem::take(&mut self.feats));
        let probs = model.predict_proba_view(&features, CsrView::new(&self.offsets, &self.targets));
        // Reclaim the staging allocation for the next batch.
        self.feats = features.into_vec();

        let classes = probs.cols();
        let mut row = 0usize;
        for p in chunk {
            let n = p.cdfg.node_count();
            let slice = &probs.data()[row * classes..(row + n) * classes];
            row += n;
            out.push(BatchResult {
                probs: Matrix::from_vec(n, classes, slice.to_vec()),
                batch_size,
            });
        }
    }
}

/// Length of the longest `prepared` prefix whose summed node and edge
/// counts both fit in `u32` (always ≥ 1: a single program's CSR is
/// `u32`-indexed by construction, so one program always fits).
fn chunk_len(prepared: &[Arc<PreparedProgram>]) -> usize {
    chunk_len_by(prepared.iter().map(|p| {
        let g = p.cdfg.preds_csr();
        (g.node_count() as u32, g.edge_count() as u32)
    }))
}

/// [`chunk_len`] over bare `(node_count, edge_count)` sizes, so the
/// overflow boundary is testable without multi-gigabyte graphs.
fn chunk_len_by(sizes: impl Iterator<Item = (u32, u32)>) -> usize {
    let mut nodes = 0u32;
    let mut edges = 0u32;
    let mut len = 0;
    for (n, e) in sizes {
        match (nodes.checked_add(n), edges.checked_add(e)) {
            (Some(n), Some(e)) => {
                nodes = n;
                edges = e;
                len += 1;
            }
            _ => return len.max(1),
        }
    }
    len.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_cdfg::CdfgConfig;
    use glaive_gnn::SageConfig;
    use glaive_isa::{AluOp, Asm, Reg};

    fn program(tag: i64, extra: usize) -> glaive_isa::Program {
        let mut asm = Asm::new("batch-test");
        asm.set_mem_words(4);
        asm.li(Reg(1), tag);
        for i in 0..extra {
            asm.alu_imm(AluOp::Add, Reg(2), Reg(1), i as i64);
        }
        asm.store(Reg(2), Reg(0), 0).out(Reg(2)).halt();
        asm.finish().expect("assembles")
    }

    fn model() -> GraphSage {
        GraphSage::try_new(
            glaive_cdfg::FEATURE_DIM,
            &SageConfig {
                hidden: 8,
                layers: 2,
                ..SageConfig::default()
            },
        )
        .expect("valid model config")
    }

    #[test]
    fn batched_pass_is_bit_identical_to_serial() {
        let model = model();
        let config = CdfgConfig { bit_stride: 8 };
        let prepared: Vec<Arc<PreparedProgram>> = [(1, 2), (9, 5), (-3, 1)]
            .iter()
            .map(|&(tag, extra)| Arc::new(PreparedProgram::build(program(tag, extra), &config)))
            .collect();

        let mut receivers = Vec::new();
        let jobs: Vec<InferenceJob> = prepared
            .iter()
            .map(|p| {
                let (tx, rx) = mpsc::channel();
                receivers.push(rx);
                InferenceJob {
                    prepared: p.clone(),
                    reply: tx,
                }
            })
            .collect();

        let mut ws = BatchWorkspace::new();
        assert_eq!(ws.run_batch(&model, &jobs), 3);

        for (p, rx) in prepared.iter().zip(receivers) {
            let got = rx.recv().expect("batch delivers");
            assert_eq!(got.batch_size, 3);
            let serial = model.predict_proba(&p.features, p.cdfg.preds_csr());
            assert_eq!(got.probs.rows(), serial.rows());
            // Bit-identical, not approximately equal.
            let same = got
                .probs
                .data()
                .iter()
                .zip(serial.data())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "batched probabilities diverge from serial");
        }
    }

    #[test]
    fn workspace_buffers_are_reused_across_batches() {
        let model = model();
        let config = CdfgConfig { bit_stride: 8 };
        let p = Arc::new(PreparedProgram::build(program(5, 3), &config));
        let mut ws = BatchWorkspace::new();
        for round in 0..3 {
            let (tx, rx) = mpsc::channel();
            let jobs = vec![InferenceJob {
                prepared: p.clone(),
                reply: tx,
            }];
            ws.run_batch(&model, &jobs);
            let got = rx.recv().expect("delivered");
            assert_eq!(got.batch_size, 1, "round {round}");
        }
        assert!(ws.feats.capacity() > 0, "staging buffer retained");
    }

    #[test]
    fn chunking_splits_before_u32_bases_can_wrap() {
        const M: u32 = u32::MAX;
        // Everything fits: one chunk.
        assert_eq!(chunk_len_by([(10, 20), (30, 40)].into_iter()), 2);
        // Node total would wrap at the third item.
        assert_eq!(
            chunk_len_by([(M / 2, 1), (M / 2, 1), (2, 1)].into_iter()),
            2
        );
        // Edge total would wrap at the second item.
        assert_eq!(chunk_len_by([(1, M), (1, 1)].into_iter()), 1);
        // A single over-large head still forms a chunk of one.
        assert_eq!(chunk_len_by([(M, M), (1, 1)].into_iter()), 1);
    }

    #[test]
    fn queue_coalesces_and_closes() {
        let q: JobQueue<u32> = JobQueue::new();
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.drain_wait(), Some(vec![1, 2]));
        q.close();
        assert!(!q.push(3), "closed queue accepts no work");
        assert_eq!(q.drain_wait(), None);
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn close_and_drain_discards_backlog_and_wakes_senders() {
        let q: JobQueue<mpsc::Sender<u32>> = JobQueue::new();
        let (tx, rx) = mpsc::channel();
        q.push(tx);
        assert!(!q.is_closed());
        let backlog = q.close_and_drain();
        assert!(q.is_closed());
        assert_eq!(backlog.len(), 1);
        drop(backlog);
        // The queued sender is gone: a blocked receiver disconnects
        // instead of waiting forever.
        assert!(rx.recv().is_err());
        assert!(q.pop_wait().is_none(), "drained queue has no backlog");
    }

    #[test]
    fn queue_drains_backlog_after_close() {
        let q: JobQueue<u32> = JobQueue::new();
        q.push(7);
        q.close();
        assert_eq!(q.pop_wait(), Some(7), "backlog survives close");
        assert_eq!(q.pop_wait(), None);
    }
}
