//! Content-addressed reuse of prepared programs: a request's CDFG and
//! feature matrix depend only on the instruction stream and the stride, so
//! repeat queries for the same program skip graph extraction entirely.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use glaive_cdfg::{Cdfg, CdfgConfig};
use glaive_isa::Program;
use glaive_nn::Matrix;

/// Everything inference needs about one program, built once per distinct
/// `(program, stride)` and shared across requests.
#[derive(Debug)]
pub struct PreparedProgram {
    /// The program itself (for PC → instruction rendering client-side).
    pub program: Program,
    /// Its bit-level CDFG at the requested stride.
    pub cdfg: Cdfg,
    /// `node_count × FEATURE_DIM` Table-I node features.
    pub features: Matrix,
}

impl PreparedProgram {
    /// Builds the CDFG and feature matrix for `program` at `stride`
    /// (already validated to lie in the CDFG's accepted range).
    pub fn build(program: Program, config: &CdfgConfig) -> PreparedProgram {
        let cdfg = Cdfg::build(&program, config);
        let features = Matrix::from_vec(
            cdfg.node_count(),
            glaive_cdfg::FEATURE_DIM,
            cdfg.feature_matrix(),
        );
        PreparedProgram {
            program,
            cdfg,
            features,
        }
    }
}

/// Content fingerprint of a `(program, stride)` pair: domain-prefixed
/// FNV-1a over the stride and the stable instruction encodings. Initial
/// memory is deliberately excluded — inference reads only static program
/// structure, so two runs of the same binary on different inputs share an
/// entry.
pub fn program_fingerprint(program: &Program, stride: usize) -> u64 {
    let mut bytes = Vec::with_capacity(32 + program.len() * glaive_isa::INSTR_ENCODING_LEN);
    bytes.extend_from_slice(b"glaive-serve/program\0");
    bytes.extend_from_slice(&(stride as u64).to_le_bytes());
    bytes.extend_from_slice(&(program.mem_words() as u64).to_le_bytes());
    bytes.extend_from_slice(&(program.len() as u64).to_le_bytes());
    for instr in program.instrs() {
        bytes.extend_from_slice(&instr.encode());
    }
    crate::protocol::fnv1a(&bytes)
}

struct Entry {
    prepared: Arc<PreparedProgram>,
    /// The stride the entry was built at — together with
    /// `prepared.program` this is the full fingerprint preimage, compared
    /// on lookup so a 64-bit FNV collision can never serve another
    /// program's graph.
    stride: usize,
    last_used: u64,
}

/// A bounded, sharded LRU of [`PreparedProgram`]s keyed by
/// [`program_fingerprint`]. Lookups bump recency; inserts beyond a
/// shard's capacity evict that shard's least-recently-used entry. Entries
/// are `Arc`-shared, so an eviction never invalidates an in-flight batch.
///
/// # Sharding
///
/// The cache splits into `shards` independent LRU domains, each behind
/// its own mutex; a key's shard is selected by its low fingerprint bits
/// (`key & (shards − 1)`, with `shards` rounded up to a power of two).
/// FNV-1a avalanches the preimage across all 64 bits, so the low bits
/// spread keys uniformly, and concurrent requests for *different*
/// programs contend only when they land in the same shard — the
/// single-mutex contention wall this replaces. Recency is tracked per
/// shard; there is no global LRU order, which is exactly the trade that
/// makes a lookup touch one lock instead of all of them.
pub struct GraphCache {
    shards: Vec<Mutex<CacheShard>>,
    mask: u64,
}

struct CacheShard {
    map: HashMap<u64, Entry>,
    capacity: usize,
    tick: u64,
}

impl GraphCache {
    /// A single-shard cache holding at most `capacity` prepared programs
    /// (`capacity` is clamped to ≥ 1 — a cache that can hold nothing
    /// would rebuild the active program on every request). One shard
    /// preserves a global LRU order; servers use
    /// [`GraphCache::with_shards`].
    pub fn new(capacity: usize) -> GraphCache {
        GraphCache::with_shards(capacity, 1)
    }

    /// A cache of `shards` independent LRU domains (rounded up to a power
    /// of two, clamped to ≥ 1) with a *total* capacity of at least
    /// `capacity`: each shard holds `ceil(capacity / shards)`, clamped to
    /// ≥ 1.
    pub fn with_shards(capacity: usize, shards: usize) -> GraphCache {
        let n = shards.max(1).next_power_of_two();
        let per_shard = capacity.max(1).div_ceil(n).max(1);
        GraphCache {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(CacheShard {
                        map: HashMap::new(),
                        capacity: per_shard,
                        tick: 0,
                    })
                })
                .collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of independent LRU shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: u64) -> &Mutex<CacheShard> {
        &self.shards[(key & self.mask) as usize]
    }

    /// Returns the entry for `key`, building it with `build` on a miss.
    /// The boolean is `true` on a hit.
    ///
    /// A hit requires more than a matching key: the stored entry's stride
    /// and program must equal `(program, stride)` — the full fingerprint
    /// preimage — so an FNV-1a collision (trivially constructible for a
    /// 64-bit non-cryptographic hash) degrades to a rebuild instead of
    /// silently serving another program's graph.
    ///
    /// The build runs outside the cache lock (graph extraction is the
    /// expensive part), so concurrent missers of the same key may build
    /// twice; last writer wins and both get a usable graph.
    pub fn get_or_build(
        &self,
        key: u64,
        program: &Program,
        stride: usize,
        build: impl FnOnce() -> PreparedProgram,
    ) -> (Arc<PreparedProgram>, bool) {
        if let Some(hit) = self.lookup(key, program, stride) {
            return (hit, true);
        }
        let prepared = Arc::new(build());
        self.insert(key, stride, prepared.clone());
        (prepared, false)
    }

    fn lookup(&self, key: u64, program: &Program, stride: usize) -> Option<Arc<PreparedProgram>> {
        let mut shard = self.shard(key).lock().expect("graph cache lock");
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.map.get_mut(&key)?;
        if entry.stride != stride || entry.prepared.program != *program {
            return None;
        }
        entry.last_used = tick;
        Some(entry.prepared.clone())
    }

    fn insert(&self, key: u64, stride: usize, prepared: Arc<PreparedProgram>) {
        let mut shard = self.shard(key).lock().expect("graph cache lock");
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= shard.capacity && !shard.map.contains_key(&key) {
            if let Some(&lru) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&lru);
            }
        }
        shard.map.insert(
            key,
            Entry {
                prepared,
                stride,
                last_used: tick,
            },
        );
    }

    /// Number of cached programs across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("graph cache lock").map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_isa::{AluOp, Asm, Reg};

    fn program(tag: i64) -> Program {
        let mut asm = Asm::new("cache-test");
        asm.set_mem_words(4);
        asm.li(Reg(1), tag)
            .alu_imm(AluOp::Add, Reg(2), Reg(1), 1)
            .out(Reg(2))
            .halt();
        asm.finish().expect("assembles")
    }

    fn prepared(tag: i64) -> PreparedProgram {
        PreparedProgram::build(program(tag), &CdfgConfig { bit_stride: 16 })
    }

    #[test]
    fn fingerprint_separates_programs_and_strides() {
        let a = program_fingerprint(&program(1), 8);
        let b = program_fingerprint(&program(2), 8);
        let c = program_fingerprint(&program(1), 16);
        assert_ne!(a, b, "different instructions, same fingerprint");
        assert_ne!(a, c, "different strides, same fingerprint");
        assert_eq!(a, program_fingerprint(&program(1), 8), "not deterministic");
    }

    #[test]
    fn cache_hits_after_build_and_evicts_lru() {
        let cache = GraphCache::new(2);
        let (p1, p2, p3) = (program(1), program(2), program(3));
        let (first, hit) = cache.get_or_build(1, &p1, 16, || prepared(1));
        assert!(!hit);
        let (again, hit) = cache.get_or_build(1, &p1, 16, || panic!("must not rebuild"));
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &again));

        cache.get_or_build(2, &p2, 16, || prepared(2));
        // Touch key 1 so key 2 is the LRU, then overflow.
        cache.get_or_build(1, &p1, 16, || panic!("must not rebuild"));
        cache.get_or_build(3, &p3, 16, || prepared(3));
        assert_eq!(cache.len(), 2);
        let (_, hit) = cache.get_or_build(1, &p1, 16, || panic!("key 1 was just touched"));
        assert!(hit);
        let (_, hit) = cache.get_or_build(2, &p2, 16, || prepared(2));
        assert!(!hit, "key 2 should have been evicted as the LRU");
    }

    #[test]
    fn fingerprint_collisions_rebuild_instead_of_serving_the_wrong_program() {
        let cache = GraphCache::new(4);
        let (p1, p2) = (program(1), program(2));
        // Force both programs onto the same 64-bit key, as a constructed
        // FNV-1a collision would.
        let (stored, hit) = cache.get_or_build(42, &p1, 16, || prepared(1));
        assert!(!hit);
        let (got, hit) = cache.get_or_build(42, &p2, 16, || prepared(2));
        assert!(!hit, "colliding key must not count as a hit");
        assert!(
            !Arc::ptr_eq(&stored, &got),
            "collision served another program's prepared graph"
        );
        assert_eq!(got.program, p2);
        // Same program at a different stride under the same key: also a miss.
        let (_, hit) = cache.get_or_build(42, &p2, 8, || prepared(2));
        assert!(!hit, "stride mismatch must not count as a hit");
    }

    /// A key pinned to `shard` (low bits) carrying `tag` above the shard
    /// index, for tests that need to steer keys into specific shards.
    fn sharded_key(shard: u64, tag: u64, shard_count: u64) -> u64 {
        shard | (tag * shard_count)
    }

    #[test]
    fn shard_count_rounds_up_and_new_is_one_shard() {
        assert_eq!(GraphCache::new(8).shard_count(), 1);
        assert_eq!(GraphCache::with_shards(8, 3).shard_count(), 4);
        assert_eq!(GraphCache::with_shards(8, 8).shard_count(), 8);
        assert_eq!(GraphCache::with_shards(1, 0).shard_count(), 1);
    }

    #[test]
    fn eviction_order_is_tracked_per_shard() {
        // 4 shards × 2 entries each. Overflowing shard 0 must evict shard
        // 0's LRU and leave every other shard untouched.
        let cache = GraphCache::with_shards(8, 4);
        let key = |shard, tag| sharded_key(shard, tag, 4);
        let (p1, p2, p3, p4) = (program(1), program(2), program(3), program(4));

        cache.get_or_build(key(0, 1), &p1, 16, || prepared(1));
        cache.get_or_build(key(0, 2), &p2, 16, || prepared(2));
        cache.get_or_build(key(1, 1), &p4, 16, || prepared(4));
        // Touch shard 0's first key so its second is the LRU, then
        // overflow shard 0.
        cache.get_or_build(key(0, 1), &p1, 16, || panic!("must not rebuild"));
        cache.get_or_build(key(0, 3), &p3, 16, || prepared(3));

        let (_, hit) = cache.get_or_build(key(0, 1), &p1, 16, || panic!("was just touched"));
        assert!(hit, "recently used entry survives its shard's eviction");
        let (_, hit) = cache.get_or_build(key(0, 2), &p2, 16, || prepared(2));
        assert!(!hit, "shard 0's LRU entry was evicted");
        let (_, hit) = cache.get_or_build(key(1, 1), &p4, 16, || panic!("other shard touched"));
        assert!(hit, "an overflow in shard 0 must never evict from shard 1");
    }

    #[test]
    fn collision_check_holds_within_each_shard() {
        let cache = GraphCache::with_shards(8, 4);
        let (p1, p2) = (program(1), program(2));
        for shard in 0..4u64 {
            let key = sharded_key(shard, 9, 4);
            let (stored, hit) = cache.get_or_build(key, &p1, 16, || prepared(1));
            assert!(!hit);
            let (got, hit) = cache.get_or_build(key, &p2, 16, || prepared(2));
            assert!(!hit, "shard {shard}: colliding key must miss");
            assert!(
                !Arc::ptr_eq(&stored, &got),
                "shard {shard}: collision served the wrong program"
            );
            assert_eq!(got.program, p2);
        }
    }

    #[test]
    fn concurrent_hit_miss_storm_across_shards_stays_consistent() {
        let cache = GraphCache::with_shards(16, 8);
        let programs: Vec<Program> = (0..8).map(program).collect();
        let keys: Vec<u64> = (0..8).map(|i| sharded_key(i % 8, i / 8, 8)).collect();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let cache = &cache;
                let programs = &programs;
                let keys = &keys;
                scope.spawn(move || {
                    for r in 0..64usize {
                        let i = (t * 13 + r * 7) % programs.len();
                        let tag = i as i64;
                        let (got, _) =
                            cache.get_or_build(keys[i], &programs[i], 16, || prepared(tag));
                        // Whoever built it, the entry must be *this*
                        // program's graph.
                        assert_eq!(got.program, programs[i]);
                        assert_eq!(got.cdfg.node_count(), got.features.rows());
                    }
                });
            }
        });
        assert!(cache.len() <= 16, "total occupancy within capacity");
        // After the storm every key must be resident: 8 distinct keys
        // spread over 8 shards of capacity 2 can never evict each other.
        for (key, prog) in keys.iter().zip(&programs) {
            let (_, hit) = cache.get_or_build(*key, prog, 16, || panic!("must be resident"));
            assert!(hit);
        }
    }
}
