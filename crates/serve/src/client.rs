//! Blocking clients for the `GLVSRV02` protocol.
//!
//! [`Client`] is the bare connection: one stream, synchronous
//! request/response, first failure surfaces immediately. It works over
//! any byte stream ([`Client::over`]), which is how the chaos layer and
//! in-memory tests slot in beneath it.
//!
//! [`ResilientClient`] is the production edge: the same typed operations,
//! but transient failures — transport errors, corrupted frames (caught by
//! the frame checksum on either side), a server draining — are retried
//! under a [`RetryPolicy`] with a fresh connection per attempt, giving up
//! with [`ClientError::RetriesExhausted`] wrapping the last failure. A
//! request is only ever *re-sent whole* on a *new* connection, so a
//! half-written frame on a dead socket can never interleave with its
//! retry. The one exception is a typed [`ClientError::Busy`] admission
//! rejection: the connection is provably healthy (the server answered in
//! an orderly way), so the retry keeps it and waits at least the
//! server-provided `retry_after_ms` hint.

use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use glaive_wire::{sleep_cancellable, Backoff, ChaosPlan, RetryPolicy};

use crate::protocol::{
    read_frame, write_frame, BudgetReply, ErrorCode, PredictReply, ProgramSpec, ProtocolError,
    Request, Response, StatsReply,
};

/// Read/write deadline on a bare [`Client`] connection: a server that
/// stops responding fails the request instead of hanging the caller.
const CLIENT_DEADLINE: Duration = Duration::from_secs(30);

/// A client-side failure: transport/decoding problems or a server-issued
/// rejection.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The frame could not be exchanged or decoded.
    Protocol(ProtocolError),
    /// The server answered with an error frame.
    Server {
        /// Machine-readable rejection class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Admission control turned the request away: the server's bounded
    /// queue is full. The connection is still healthy — retry the same
    /// request after the server's hint, without redialling.
    Busy {
        /// Server-suggested delay before retrying, in milliseconds.
        retry_after_ms: u32,
    },
    /// The server answered with a frame of the wrong kind.
    UnexpectedReply,
    /// A retry loop gave up: consecutive transient failures outlasted
    /// the [`RetryPolicy`] budget. Wraps the last failure.
    RetriesExhausted {
        /// Attempts taken before giving up.
        attempts: u32,
        /// The transient failure that exhausted the budget.
        last: Box<ClientError>,
    },
}

impl ClientError {
    /// Whether retrying on a fresh connection may succeed. Transport and
    /// decode failures are transient (so is a server-side `BadRequest`:
    /// under fault injection it means *our* frame got corrupted in
    /// flight, and the checksum caught it server-side); rejections about
    /// the request's *content* — unknown benchmark, bad stride, model
    /// mismatch — are deterministic and final.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Protocol(_) | ClientError::UnexpectedReply | ClientError::Busy { .. } => {
                true
            }
            ClientError::Server { code, .. } => matches!(
                code,
                ErrorCode::BadRequest | ErrorCode::ShuttingDown | ErrorCode::Internal
            ),
            ClientError::RetriesExhausted { .. } => false,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server rejected: {code}: {message}")
            }
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy: retry after {retry_after_ms} ms")
            }
            ClientError::UnexpectedReply => write!(f, "server sent a mismatched reply kind"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Protocol(ProtocolError::from(e))
    }
}

/// A connected client over any byte stream.
pub struct Client {
    stream: Box<dyn ClientStream>,
}

/// The stream bound a [`Client`] needs; blanket-implemented so any
/// `Read + Write + Send` transport (a `TcpStream`, a chaos wrapper, an
/// in-memory pipe) qualifies.
trait ClientStream: Read + Write + Send {}
impl<S: Read + Write + Send> ClientStream for S {}

impl Client {
    /// Connects to a running server, with nodelay and the default
    /// read/write deadlines applied.
    ///
    /// # Errors
    ///
    /// Transport failures while connecting.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(CLIENT_DEADLINE))?;
        stream.set_write_timeout(Some(CLIENT_DEADLINE))?;
        Ok(Client::over(stream))
    }

    /// A client over an already-established stream (chaos-wrapped socket,
    /// in-memory pipe…). The caller owns the stream's deadlines.
    pub fn over(stream: impl Read + Write + Send + 'static) -> Client {
        Client {
            stream: Box::new(stream),
        }
    }

    /// Sends one request and reads its reply.
    ///
    /// # Errors
    ///
    /// Transport or decode failures ([`ClientError::Protocol`]); server
    /// rejections surface through the typed convenience methods instead.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_frame())?;
        let payload = read_frame(&mut self.stream)?;
        Ok(Response::from_frame(&payload)?)
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        extract: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, ClientError> {
        match self.request(request)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            Response::Busy { retry_after_ms } => Err(ClientError::Busy { retry_after_ms }),
            other => extract(other).ok_or(ClientError::UnexpectedReply),
        }
    }

    /// Estimates per-instruction vulnerability for `spec`.
    ///
    /// # Errors
    ///
    /// Server rejections (unknown benchmark, bad stride, draining) as
    /// [`ClientError::Server`]; transport failures as
    /// [`ClientError::Protocol`].
    pub fn predict(
        &mut self,
        spec: ProgramSpec,
        stride: u32,
        top_k: u32,
        want_bits: bool,
    ) -> Result<PredictReply, ClientError> {
        self.expect(
            &Request::Predict {
                spec,
                stride,
                top_k,
                want_bits,
            },
            |r| match r {
                Response::Predict(p) => Some(p),
                _ => None,
            },
        )
    }

    /// Asks the server to pick a protection set for `spec` under a cycle
    /// budget of `overhead_pct`% of the program's golden-run runtime.
    ///
    /// # Errors
    ///
    /// As for [`Client::predict`]; additionally a typed `BadRequest` when
    /// the golden run of `spec` does not halt cleanly (the budget is
    /// undefined without a finished baseline).
    pub fn budget(
        &mut self,
        spec: ProgramSpec,
        stride: u32,
        overhead_pct: u32,
    ) -> Result<BudgetReply, ClientError> {
        self.expect(
            &Request::Budget {
                spec,
                stride,
                overhead_pct,
            },
            |r| match r {
                Response::Budget(b) => Some(b),
                _ => None,
            },
        )
    }

    /// Reads the server's counters.
    ///
    /// # Errors
    ///
    /// As for [`Client::predict`].
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        self.expect(&Request::Stats, |r| match r {
            Response::Stats(s) => Some(s),
            _ => None,
        })
    }

    /// Round-trips a liveness probe.
    ///
    /// # Errors
    ///
    /// As for [`Client::predict`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect(&Request::Ping, |r| match r {
            Response::Pong => Some(()),
            _ => None,
        })
    }

    /// Asks the server to drain and exit. The connection is unusable
    /// afterwards.
    ///
    /// # Errors
    ///
    /// As for [`Client::predict`].
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.expect(&Request::Shutdown, |r| match r {
            Response::ShutdownAck => Some(()),
            _ => None,
        })
    }
}

/// What a [`ResilientClient`] survived: the robustness columns the bench
/// harnesses report next to latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientReport {
    /// Transient failures retried (each one preceded a backoff wait).
    pub retries: u64,
    /// Typed `Busy` admission rejections plus `ShuttingDown` rejections
    /// among those (the server was saturated or draining).
    pub busy_responses: u64,
    /// Fresh connections dialled beyond the first.
    pub reconnects: u64,
}

/// A [`Client`] wrapped in reconnect-and-retry: each operation runs under
/// a fresh [`Backoff`], transient failures drop the connection and redial,
/// and a [`ClientReport`] tallies what was survived.
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    chaos: Option<ChaosPlan>,
    stream_base: u64,
    dials: u64,
    client: Option<Client>,
    report: ClientReport,
}

impl ResilientClient {
    /// A resilient client for the server at `addr`. No connection is made
    /// until the first operation.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> ResilientClient {
        ResilientClient {
            addr: addr.into(),
            policy,
            chaos: None,
            stream_base: 0,
            dials: 0,
            client: None,
            report: ClientReport::default(),
        }
    }

    /// Wraps every connection in a seeded
    /// [`ChaosTransport`](glaive_wire::ChaosTransport): connection `n`
    /// uses stream id `stream_base + n`, so retries draw fresh fault
    /// schedules and concurrent clients can partition the id space.
    #[must_use]
    pub fn with_chaos(mut self, plan: ChaosPlan, stream_base: u64) -> ResilientClient {
        self.chaos = Some(plan);
        self.stream_base = stream_base;
        self
    }

    /// The robustness tallies so far.
    pub fn report(&self) -> ClientReport {
        self.report
    }

    fn ensure(&mut self) -> Result<&mut Client, ClientError> {
        if self.client.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(CLIENT_DEADLINE))?;
            stream.set_write_timeout(Some(CLIENT_DEADLINE))?;
            let client = match &self.chaos {
                Some(plan) => Client::over(plan.wrap(stream, self.stream_base + self.dials)),
                None => Client::over(stream),
            };
            self.dials += 1;
            if self.dials > 1 {
                self.report.reconnects += 1;
            }
            self.client = Some(client);
        }
        Ok(self.client.as_mut().expect("client just ensured"))
    }

    fn with_retry<T>(
        &mut self,
        op: impl Fn(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut backoff = Backoff::new(self.policy);
        loop {
            let attempt = self.ensure().and_then(&op);
            match attempt {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_transient() => return Err(e),
                Err(e @ ClientError::Busy { .. }) => {
                    let ClientError::Busy { retry_after_ms } = e else {
                        unreachable!("matched Busy");
                    };
                    // An orderly admission rejection: the connection is
                    // healthy, so keep it and re-send after the server's
                    // hint (at least — the local backoff schedule still
                    // sets the floor and spends the attempt budget, so a
                    // permanently saturated server exhausts retries).
                    self.report.busy_responses += 1;
                    self.report.retries += 1;
                    match backoff.next_delay() {
                        Some(delay) => {
                            let hint = Duration::from_millis(u64::from(retry_after_ms));
                            sleep_cancellable(delay.max(hint), None);
                        }
                        None => {
                            return Err(ClientError::RetriesExhausted {
                                attempts: backoff.attempts(),
                                last: Box::new(e),
                            })
                        }
                    }
                }
                Err(e) => {
                    if matches!(
                        &e,
                        ClientError::Server {
                            code: ErrorCode::ShuttingDown,
                            ..
                        }
                    ) {
                        self.report.busy_responses += 1;
                    }
                    // The connection is suspect after any failure — the
                    // retry re-sends the whole request on a fresh one.
                    self.client = None;
                    self.report.retries += 1;
                    match backoff.next_delay() {
                        Some(delay) => {
                            sleep_cancellable(delay, None);
                        }
                        None => {
                            return Err(ClientError::RetriesExhausted {
                                attempts: backoff.attempts(),
                                last: Box::new(e),
                            })
                        }
                    }
                }
            }
        }
    }

    /// [`Client::predict`] with retry-on-transient.
    ///
    /// # Errors
    ///
    /// Fatal rejections immediately; [`ClientError::RetriesExhausted`]
    /// once the policy's budget is spent.
    pub fn predict(
        &mut self,
        spec: &ProgramSpec,
        stride: u32,
        top_k: u32,
        want_bits: bool,
    ) -> Result<PredictReply, ClientError> {
        self.with_retry(|c| c.predict(spec.clone(), stride, top_k, want_bits))
    }

    /// [`Client::budget`] with retry-on-transient.
    ///
    /// # Errors
    ///
    /// As for [`ResilientClient::predict`].
    pub fn budget(
        &mut self,
        spec: &ProgramSpec,
        stride: u32,
        overhead_pct: u32,
    ) -> Result<BudgetReply, ClientError> {
        self.with_retry(|c| c.budget(spec.clone(), stride, overhead_pct))
    }

    /// [`Client::stats`] with retry-on-transient.
    ///
    /// # Errors
    ///
    /// As for [`ResilientClient::predict`].
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        self.with_retry(|c| c.stats())
    }

    /// [`Client::ping`] with retry-on-transient.
    ///
    /// # Errors
    ///
    /// As for [`ResilientClient::predict`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.with_retry(|c| c.ping())
    }
}
