//! A blocking client for the `GLVSRV01` protocol: one persistent
//! connection, synchronous request/response.

use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, PredictReply, ProgramSpec, ProtocolError, Request,
    Response, StatsReply,
};

/// A client-side failure: transport/decoding problems or a server-issued
/// rejection.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The frame could not be exchanged or decoded.
    Protocol(ProtocolError),
    /// The server answered with an error frame.
    Server {
        /// Machine-readable rejection class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a frame of the wrong kind.
    UnexpectedReply,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server rejected: {code}: {message}")
            }
            ClientError::UnexpectedReply => write!(f, "server sent a mismatched reply kind"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Protocol(ProtocolError::from(e))
    }
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Transport failures while connecting.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and reads its reply.
    ///
    /// # Errors
    ///
    /// Transport or decode failures ([`ClientError::Protocol`]); server
    /// rejections surface through the typed convenience methods instead.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_frame())?;
        let payload = read_frame(&mut self.stream)?;
        Ok(Response::from_frame(&payload)?)
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        extract: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, ClientError> {
        match self.request(request)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => extract(other).ok_or(ClientError::UnexpectedReply),
        }
    }

    /// Estimates per-instruction vulnerability for `spec`.
    ///
    /// # Errors
    ///
    /// Server rejections (unknown benchmark, bad stride, draining) as
    /// [`ClientError::Server`]; transport failures as
    /// [`ClientError::Protocol`].
    pub fn predict(
        &mut self,
        spec: ProgramSpec,
        stride: u32,
        top_k: u32,
        want_bits: bool,
    ) -> Result<PredictReply, ClientError> {
        self.expect(
            &Request::Predict {
                spec,
                stride,
                top_k,
                want_bits,
            },
            |r| match r {
                Response::Predict(p) => Some(p),
                _ => None,
            },
        )
    }

    /// Reads the server's counters.
    ///
    /// # Errors
    ///
    /// As for [`Client::predict`].
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        self.expect(&Request::Stats, |r| match r {
            Response::Stats(s) => Some(s),
            _ => None,
        })
    }

    /// Round-trips a liveness probe.
    ///
    /// # Errors
    ///
    /// As for [`Client::predict`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect(&Request::Ping, |r| match r {
            Response::Pong => Some(()),
            _ => None,
        })
    }

    /// Asks the server to drain and exit. The connection is unusable
    /// afterwards.
    ///
    /// # Errors
    ///
    /// As for [`Client::predict`].
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.expect(&Request::Shutdown, |r| match r {
            Response::ShutdownAck => Some(()),
            _ => None,
        })
    }
}
