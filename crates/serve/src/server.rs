//! The long-lived model server: accept loop, connection worker pool, and
//! the single batching inference thread they feed.
//!
//! Threading model:
//!
//! - the **accept loop** polls a non-blocking listener and hands sockets
//!   to the connection queue;
//! - `workers` **connection workers** each own one socket at a time,
//!   decode frames, resolve programs through the [`GraphCache`], enqueue
//!   inference jobs and write replies;
//! - one **batcher** thread owns the model and a [`BatchWorkspace`]; each
//!   time it wakes it drains *every* pending job into one coalesced
//!   forward pass, so concurrency turns directly into batch size.
//!
//! Shutdown follows the `RunControl` cancellation contract from the
//! fault-injection campaigns: a shared `AtomicBool`, checked at every
//! blocking boundary (accept poll, socket read timeout, queue close).
//! A `Shutdown` frame — or an external holder of [`Server::cancel_flag`]
//! — flips it; in-flight requests drain, then the threads unwind in
//! dependency order.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use glaive::telemetry::{NullObserver, Observer, Stage};
use glaive_bench_suite::suite;
use glaive_cdfg::CdfgConfig;
use glaive_gnn::GraphSage;
use glaive_isa::Program;

use crate::batch::{BatchWorkspace, InferenceJob, JobQueue};
use crate::cache::{program_fingerprint, GraphCache, PreparedProgram};
use crate::protocol::{
    write_frame, ErrorCode, PredictReply, ProgramSpec, Request, Response, StatsReply, WireTuple,
};
use glaive_wire::{read_frame_cancellable, ReadOutcome};

/// How often blocking points re-check the cancellation flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server construction failure.
#[derive(Debug)]
pub enum ServeError {
    /// A [`ServerConfig`] field is out of range (zero workers or cache
    /// slots).
    Config {
        /// The offending field.
        field: &'static str,
    },
    /// The model cannot serve CDFG features (wrong input width or class
    /// count) — refusing at bind time beats corrupt answers at runtime.
    Model(String),
    /// Binding or configuring the listener failed.
    Io(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config { field } => {
                write!(f, "invalid server config: `{field}` must be at least 1")
            }
            ServeError::Model(m) => write!(f, "unsuitable model: {m}"),
            ServeError::Io(e) => write!(f, "bind failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection worker threads (concurrent in-flight requests; also the
    /// upper bound on coalesced batch size).
    pub workers: usize,
    /// Prepared-program LRU capacity.
    pub cache_capacity: usize,
    /// Mid-frame progress deadline per connection: a client that starts
    /// a frame and then stalls is cut off (typed error, connection
    /// closed) instead of pinning a connection worker forever. Idle
    /// connections between requests are exempt. Writes to a client that
    /// stops draining its socket time out on the same deadline.
    pub stall: Duration,
}

impl ServerConfig {
    /// Validating constructor: a server needs at least one connection
    /// worker and one cache slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] naming the zero field.
    pub fn try_new(workers: usize, cache_capacity: usize) -> Result<ServerConfig, ServeError> {
        let config = ServerConfig {
            workers,
            cache_capacity,
            ..ServerConfig::default()
        };
        config.validate()?;
        Ok(config)
    }

    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.workers < 1 {
            return Err(ServeError::Config { field: "workers" });
        }
        if self.cache_capacity < 1 {
            return Err(ServeError::Config {
                field: "cache_capacity",
            });
        }
        if self.stall.is_zero() {
            return Err(ServeError::Config { field: "stall" });
        }
        Ok(())
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 8,
            cache_capacity: 32,
            stall: Duration::from_secs(5),
        }
    }
}

/// Monotonic serving counters, shared across all server threads.
#[derive(Debug, Default)]
struct ServeStats {
    requests: AtomicU64,
    predictions: AtomicU64,
    batches: AtomicU64,
    peak_batch: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    errors: AtomicU64,
}

impl ServeStats {
    fn snapshot(&self) -> StatsReply {
        StatsReply {
            requests: self.requests.load(Ordering::Relaxed),
            predictions: self.predictions.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            peak_batch: self.peak_batch.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    fn record_batch(&self, size: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.peak_batch.fetch_max(size, Ordering::Relaxed);
    }
}

/// A bound, not-yet-running model server.
pub struct Server {
    model: GraphSage,
    listener: TcpListener,
    addr: SocketAddr,
    cancel: Arc<AtomicBool>,
    config: ServerConfig,
    observer: Arc<dyn Observer>,
}

impl Server {
    /// Binds a listener and validates that `model` can serve CDFG inputs.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] when the model's input width or class count
    /// does not match the CDFG feature contract; [`ServeError::Io`] when
    /// the address cannot be bound.
    pub fn bind(
        model: GraphSage,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        config.validate()?;
        if model.input_dim() != glaive_cdfg::FEATURE_DIM {
            return Err(ServeError::Model(format!(
                "model expects {}-dim node features, CDFG produces {}",
                model.input_dim(),
                glaive_cdfg::FEATURE_DIM
            )));
        }
        if model.config().classes != 3 {
            return Err(ServeError::Model(format!(
                "model has {} output classes, vulnerability estimation needs 3",
                model.config().classes
            )));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            model,
            listener,
            addr,
            cancel: Arc::new(AtomicBool::new(false)),
            config,
            observer: Arc::new(NullObserver),
        })
    }

    /// Attaches a telemetry observer (batch timings flow to it as
    /// [`Stage::Inference`], cache activity as `cache_lookup("graph", …)`).
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Server {
        self.observer = observer;
        self
    }

    /// The bound address (the OS-chosen port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cancellation flag — the same contract as
    /// `glaive_faultsim::RunControl::cancel`. Storing `true` drains the
    /// server and returns [`Server::run`].
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        self.cancel.clone()
    }

    /// Serves until the cancellation flag is set (by a `Shutdown` frame or
    /// an external holder of [`Server::cancel_flag`]), then drains and
    /// returns the final counters.
    ///
    /// # Errors
    ///
    /// Only fatal listener failures; per-connection errors are counted and
    /// answered, never fatal.
    pub fn run(self) -> io::Result<StatsReply> {
        let stats = Arc::new(ServeStats::default());
        let shared = Shared {
            cancel: self.cancel.clone(),
            stats: stats.clone(),
            cache: GraphCache::new(self.config.cache_capacity),
            batch_queue: JobQueue::new(),
            observer: self.observer.clone(),
            stall: self.config.stall,
        };
        let conn_queue: JobQueue<TcpStream> = JobQueue::new();
        let model = &self.model;
        let shared = &shared;
        let conn_queue = &conn_queue;

        std::thread::scope(|scope| -> io::Result<()> {
            let batcher = scope.spawn(move || {
                // Runs on every exit — including a panic inside
                // `run_batch`. Without it, jobs queued behind a dead
                // batcher keep their reply `Sender`s alive inside the
                // still-open queue, so workers block in `recv` forever and
                // the shutdown joins deadlock.
                let _guard = BatcherExitGuard { shared };
                let mut workspace = BatchWorkspace::new();
                while let Some(jobs) = shared.batch_queue.drain_wait() {
                    let start = Instant::now();
                    shared.observer.stage_started(Stage::Inference, "batch");
                    let served = workspace.run_batch(model, &jobs);
                    shared.stats.record_batch(served as u64);
                    shared.observer.stage_finished(
                        Stage::Inference,
                        "batch",
                        start.elapsed(),
                        served as u64,
                    );
                }
            });

            let workers: Vec<_> = (0..self.config.workers.max(1))
                .map(|_| {
                    scope.spawn(move || {
                        while let Some(stream) = conn_queue.pop_wait() {
                            handle_connection(stream, shared);
                        }
                    })
                })
                .collect();

            // Accept loop: poll the non-blocking listener against the
            // cancellation flag.
            while !self.cancel.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        conn_queue.push(stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        self.cancel.store(true, Ordering::Relaxed);
                        conn_queue.close();
                        shared.batch_queue.close();
                        return Err(e);
                    }
                }
            }

            // Drain order matters: stop feeding workers, let them finish
            // their in-flight requests, then let the batcher run dry.
            conn_queue.close();
            for w in workers {
                let _ = w.join();
            }
            shared.batch_queue.close();
            let _ = batcher.join();
            Ok(())
        })?;

        Ok(stats.snapshot())
    }

    /// Runs the server on a background thread, returning a handle for
    /// shutdown and joining — the in-process harness the differential and
    /// concurrency tests drive.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let cancel = self.cancel.clone();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            cancel,
            thread,
        }
    }
}

/// A running background server (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    cancel: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<io::Result<StatsReply>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without a client connection.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Waits for the server to drain and returns its final counters.
    ///
    /// # Errors
    ///
    /// The run loop's fatal listener error, if any.
    ///
    /// # Panics
    ///
    /// If the server thread itself panicked.
    pub fn join(self) -> io::Result<StatsReply> {
        self.thread.join().expect("server thread panicked")
    }
}

/// Everything a connection worker needs, shared across the pool.
struct Shared {
    cancel: Arc<AtomicBool>,
    stats: Arc<ServeStats>,
    cache: GraphCache,
    batch_queue: JobQueue<InferenceJob>,
    observer: Arc<dyn Observer>,
    stall: Duration,
}

/// Cleanup run when the batcher thread exits for *any* reason. A normal
/// exit (queue closed during shutdown) makes these no-ops; a panic in
/// `run_batch` turns into an orderly drain: cancellation flips so the
/// accept loop and workers unwind, and dropping the queued jobs drops
/// their reply senders so blocked `handle_predict` calls wake immediately.
struct BatcherExitGuard<'a> {
    shared: &'a Shared,
}

impl Drop for BatcherExitGuard<'_> {
    fn drop(&mut self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
        drop(self.shared.batch_queue.close_and_drain());
    }
}

/// Outcome of one cancellable frame read.
/// Serves one client connection until it closes, errors, or the server
/// drains.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(shared.stall));
    loop {
        let payload = match read_frame_cancellable(&mut stream, &shared.cancel, Some(shared.stall))
        {
            ReadOutcome::Frame(p) => p,
            ReadOutcome::Closed | ReadOutcome::Cancelled => return,
            ReadOutcome::Failed(err) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: err.to_string(),
                };
                let _ = write_frame(&mut stream, &resp.to_frame());
                return;
            }
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        let (response, hang_up) = match Request::from_frame(&payload) {
            Ok(Request::Ping) => (Response::Pong, false),
            Ok(Request::Stats) => (Response::Stats(shared.stats.snapshot()), false),
            Ok(Request::Shutdown) => {
                shared.cancel.store(true, Ordering::Relaxed);
                (Response::ShutdownAck, true)
            }
            Ok(Request::Predict {
                spec,
                stride,
                top_k,
                want_bits,
            }) => (
                handle_predict(shared, spec, stride, top_k, want_bits),
                false,
            ),
            Err(err) => (
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message: err.to_string(),
                },
                false,
            ),
        };
        if matches!(response, Response::Error { .. }) {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        if write_frame(&mut stream, &response.to_frame()).is_err() || hang_up {
            return;
        }
    }
}

/// Resolves, prepares, batches and aggregates one predict request.
fn handle_predict(
    shared: &Shared,
    spec: ProgramSpec,
    stride: u32,
    top_k: u32,
    want_bits: bool,
) -> Response {
    let Some(cdfg_config) = usize::try_from(stride)
        .ok()
        .and_then(CdfgConfig::try_with_stride)
    else {
        return Response::Error {
            code: ErrorCode::BadStride,
            message: format!("stride {stride} outside 1..={}", glaive_isa::WORD_BITS),
        };
    };
    let program = match resolve_program(&spec) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let name = program.name().to_string();

    let key = program_fingerprint(&program, cdfg_config.bit_stride);
    let (prepared, hit) = shared
        .cache
        .get_or_build(key, &program, cdfg_config.bit_stride, || {
            PreparedProgram::build(program.clone(), &cdfg_config)
        });
    shared.observer.cache_lookup("graph", &name, hit);
    if hit {
        shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    let (tx, rx) = mpsc::channel();
    let job = InferenceJob {
        prepared: prepared.clone(),
        reply: tx,
    };
    if !shared.batch_queue.push(job) {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".into(),
        };
    }
    // Wait for the batcher with a timeout rather than a bare `recv`: if
    // the batcher thread dies, its exit guard closes the queue and drops
    // queued jobs, so either the disconnect arrives or a timeout observes
    // the closed queue — a worker never blocks here forever.
    let result = loop {
        match rx.recv_timeout(POLL_INTERVAL) {
            Ok(result) => break result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.batch_queue.is_closed() {
                    return Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server drained before the batch ran".into(),
                    };
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server drained before the batch ran".into(),
                };
            }
        }
    };

    let program_len = prepared.program.len();
    let tuples = glaive::aggregate_bit_probs(&prepared.cdfg, program_len, &result.probs);
    let wire_tuples: Vec<Option<WireTuple>> = tuples
        .iter()
        .map(|t| t.map(|v| [v.crash as f32, v.sdc as f32, v.masked as f32]))
        .collect();

    // Protection set: covered PCs by descending severity, PC order as the
    // deterministic tie-break.
    let mut ranked: Vec<u32> = tuples
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_some())
        .map(|(pc, _)| pc as u32)
        .collect();
    ranked.sort_by(|&a, &b| {
        let ka = tuples[a as usize]
            .expect("filtered to covered")
            .ranking_key();
        let kb = tuples[b as usize]
            .expect("filtered to covered")
            .ranking_key();
        kb.total_cmp(&ka).then(a.cmp(&b))
    });
    ranked.truncate(top_k as usize);

    shared.stats.predictions.fetch_add(1, Ordering::Relaxed);
    Response::Predict(PredictReply {
        node_count: prepared.cdfg.node_count() as u32,
        batch_size: result.batch_size,
        tuples: wire_tuples,
        top_k: ranked,
        bit_probs: want_bits.then(|| {
            (0..result.probs.rows())
                .map(|r| {
                    let row = result.probs.row(r);
                    [row[0], row[1], row[2]]
                })
                .collect()
        }),
    })
}

/// Compiles the requested program (suite lookup or client-shipped raw
/// instructions).
fn resolve_program(spec: &ProgramSpec) -> Result<Program, Response> {
    match spec {
        ProgramSpec::Suite { name, seed } => suite(*seed)
            .into_iter()
            .find(|b| b.name == name.as_str())
            .map(|b| b.program().clone())
            .ok_or_else(|| Response::Error {
                code: ErrorCode::UnknownBenchmark,
                message: format!("no suite benchmark named `{name}`"),
            }),
        ProgramSpec::Raw(program) => Ok(program.clone()),
    }
}
