//! The readiness-driven model server: one poll-thread event loop over
//! non-blocking sockets, a graph-preparation worker pool, and the single
//! batching inference thread they feed.
//!
//! Threading model:
//!
//! - the **poll thread** (the caller of [`Server::run`]) owns every
//!   connection: it accepts sockets, pumps each connection's
//!   [`FrameReader`]/[`FrameWriter`] state machines, answers control
//!   frames (ping/stats/shutdown) inline, admits predict requests under
//!   the bounded queue — answering [`Response::Busy`] with a retry hint
//!   once `queue_bound` requests are in flight — and polices the stall
//!   deadline. Requests *pipeline*: a client may write many frames before
//!   reading a reply, and replies are flushed strictly in request order
//!   per connection;
//! - `workers` **prep workers** resolve programs and build CDFGs through
//!   the sharded [`GraphCache`], then queue inference jobs;
//! - one **batcher** thread owns the model and a [`BatchWorkspace`]; each
//!   time it wakes it drains *every* pending job into one coalesced
//!   forward pass, so concurrency turns directly into batch size. Results
//!   flow back to the poll thread as completions tagged with a
//!   `(connection, generation, sequence)` token, so a slot reused by a
//!   new connection can never receive a stale reply.
//!
//! Shutdown follows the `RunControl` cancellation contract from the
//! fault-injection campaigns: a shared `AtomicBool`, checked at every
//! loop boundary. A `Shutdown` frame — or an external holder of
//! [`Server::cancel_flag`] — flips it; admitted requests drain and flush
//! (bounded by the stall deadline), then the threads unwind in
//! dependency order.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use glaive::telemetry::{NullObserver, Observer, Stage};
use glaive_bench_suite::suite;
use glaive_cdfg::CdfgConfig;
use glaive_gnn::GraphSage;
use glaive_isa::Program;
use glaive_sim::ExecConfig;
use glaive_timing::{try_profile, InOrderCost, ProtectionItem, ProtectionSelector, TimingProfile};
use glaive_wire::{FramePoll, FrameReader, FrameWriter};

use crate::batch::{BatchResult, BatchWorkspace, JobQueue};
use crate::cache::{program_fingerprint, GraphCache, PreparedProgram};
use crate::protocol::{
    BudgetItem, BudgetReply, ErrorCode, Frame, PredictReply, ProgramSpec, Request, Response,
    StatsReply, WireTuple,
};

/// Idle-backoff schedule for poll iterations that made no progress: spin
/// (cheapest wake-up) for the first burst of idle iterations, then yield
/// the CPU in 50 µs naps, and only fall back to the old 1 ms sleep once
/// the loop has been idle long enough that latency no longer matters.
/// This takes the idle event loop's added latency floor for a new arrival
/// from ~1 ms to effectively zero under bursty load.
const IDLE_SPIN_ITERS: u32 = 64;
const IDLE_NAP_ITERS: u32 = 256;
const IDLE_NAP: Duration = Duration::from_micros(50);
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// Frames decoded per connection per poll iteration, so one firehose
/// connection cannot starve the rest of the loop.
const FRAME_BURST: usize = 64;

/// Server construction failure.
#[derive(Debug)]
pub enum ServeError {
    /// A [`ServerConfig`] field is out of range (zero workers, cache
    /// slots, queue bound…).
    Config {
        /// The offending field.
        field: &'static str,
    },
    /// The model cannot serve CDFG features (wrong input width or class
    /// count) — refusing at bind time beats corrupt answers at runtime.
    Model(String),
    /// Binding or configuring the listener failed.
    Io(io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config { field } => {
                write!(f, "invalid server config: `{field}` must be at least 1")
            }
            ServeError::Model(m) => write!(f, "unsuitable model: {m}"),
            ServeError::Io(e) => write!(f, "bind failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Graph-preparation worker threads (concurrent CDFG builds).
    pub workers: usize,
    /// Prepared-program LRU capacity (total across shards).
    pub cache_capacity: usize,
    /// Independent LRU shards in the graph cache (rounded up to a power
    /// of two).
    pub cache_shards: usize,
    /// Admission bound: predict requests in flight (admitted but not yet
    /// answered) before further ones are turned away with a typed
    /// [`Response::Busy`] instead of queueing unbounded latency.
    pub queue_bound: usize,
    /// The retry hint carried by [`Response::Busy`], in milliseconds.
    pub busy_retry_ms: u32,
    /// Per-connection progress deadline: a peer that starts a frame and
    /// then stalls, or stops draining its replies, is cut off (typed
    /// error where possible, connection closed) instead of holding
    /// event-loop state forever. Idle connections between requests are
    /// exempt. Also bounds the shutdown drain.
    pub stall: Duration,
}

impl ServerConfig {
    /// Validating constructor over the two most commonly tuned knobs: a
    /// server needs at least one prep worker and one cache slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] naming the zero field.
    pub fn try_new(workers: usize, cache_capacity: usize) -> Result<ServerConfig, ServeError> {
        let config = ServerConfig {
            workers,
            cache_capacity,
            ..ServerConfig::default()
        };
        config.validate()?;
        Ok(config)
    }

    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.workers < 1 {
            return Err(ServeError::Config { field: "workers" });
        }
        if self.cache_capacity < 1 {
            return Err(ServeError::Config {
                field: "cache_capacity",
            });
        }
        if self.cache_shards < 1 {
            return Err(ServeError::Config {
                field: "cache_shards",
            });
        }
        if self.queue_bound < 1 {
            return Err(ServeError::Config {
                field: "queue_bound",
            });
        }
        if self.busy_retry_ms < 1 {
            return Err(ServeError::Config {
                field: "busy_retry_ms",
            });
        }
        if self.stall.is_zero() {
            return Err(ServeError::Config { field: "stall" });
        }
        Ok(())
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 8,
            cache_capacity: 32,
            cache_shards: 8,
            queue_bound: 256,
            busy_retry_ms: 25,
            stall: Duration::from_secs(5),
        }
    }
}

/// Monotonic serving counters, shared across all server threads.
#[derive(Debug, Default)]
struct ServeStats {
    requests: AtomicU64,
    predictions: AtomicU64,
    batches: AtomicU64,
    peak_batch: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    errors: AtomicU64,
    busy_rejections: AtomicU64,
    stall_evictions: AtomicU64,
    queue_depth_max: AtomicU64,
}

impl ServeStats {
    fn snapshot(&self) -> StatsReply {
        StatsReply {
            requests: self.requests.load(Ordering::Relaxed),
            predictions: self.predictions.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            peak_batch: self.peak_batch.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            stall_evictions: self.stall_evictions.load(Ordering::Relaxed),
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed),
        }
    }

    fn record_batch(&self, size: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.peak_batch.fetch_max(size, Ordering::Relaxed);
    }
}

/// A bound, not-yet-running model server.
pub struct Server {
    model: GraphSage,
    listener: TcpListener,
    addr: SocketAddr,
    cancel: Arc<AtomicBool>,
    config: ServerConfig,
    observer: Arc<dyn Observer>,
}

impl Server {
    /// Binds a listener and validates that `model` can serve CDFG inputs.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] when the model's input width or class count
    /// does not match the CDFG feature contract; [`ServeError::Io`] when
    /// the address cannot be bound.
    pub fn bind(
        model: GraphSage,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        config.validate()?;
        if model.input_dim() != glaive_cdfg::FEATURE_DIM {
            return Err(ServeError::Model(format!(
                "model expects {}-dim node features, CDFG produces {}",
                model.input_dim(),
                glaive_cdfg::FEATURE_DIM
            )));
        }
        if model.config().classes != 3 {
            return Err(ServeError::Model(format!(
                "model has {} output classes, vulnerability estimation needs 3",
                model.config().classes
            )));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            model,
            listener,
            addr,
            cancel: Arc::new(AtomicBool::new(false)),
            config,
            observer: Arc::new(NullObserver),
        })
    }

    /// Attaches a telemetry observer (batch timings flow to it as
    /// [`Stage::Inference`], cache activity as `cache_lookup("graph", …)`).
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Server {
        self.observer = observer;
        self
    }

    /// The bound address (the OS-chosen port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The cancellation flag — the same contract as
    /// `glaive_faultsim::RunControl::cancel`. Storing `true` drains the
    /// server and returns [`Server::run`].
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        self.cancel.clone()
    }

    /// Serves until the cancellation flag is set (by a `Shutdown` frame or
    /// an external holder of [`Server::cancel_flag`]), then drains and
    /// returns the final counters.
    ///
    /// # Errors
    ///
    /// Only fatal listener failures; per-connection errors are counted and
    /// answered, never fatal.
    pub fn run(self) -> io::Result<StatsReply> {
        let stats = Arc::new(ServeStats::default());
        let shared = Shared {
            cancel: self.cancel.clone(),
            stats: stats.clone(),
            cache: GraphCache::with_shards(self.config.cache_capacity, self.config.cache_shards),
            prep_queue: JobQueue::new(),
            batch_queue: JobQueue::new(),
            observer: self.observer.clone(),
            admitted: AtomicU64::new(0),
            queue_bound: self.config.queue_bound as u64,
            busy_retry_ms: self.config.busy_retry_ms,
            stall: self.config.stall,
        };
        let (completions_tx, completions_rx) = mpsc::channel::<Completion>();
        let model = &self.model;
        let shared = &shared;

        std::thread::scope(|scope| -> io::Result<()> {
            let batcher = {
                let tx = completions_tx.clone();
                scope.spawn(move || batcher_loop(model, shared, &tx))
            };
            let preps: Vec<_> = (0..self.config.workers.max(1))
                .map(|_| {
                    let tx = completions_tx.clone();
                    scope.spawn(move || prep_loop(shared, &tx))
                })
                .collect();
            drop(completions_tx);

            let result = poll_loop(&self.listener, shared, &completions_rx);

            // Drain order matters: stop feeding the prep pool, let it
            // finish building, then let the batcher run dry.
            shared.prep_queue.close();
            for p in preps {
                let _ = p.join();
            }
            shared.batch_queue.close();
            let _ = batcher.join();
            result
        })?;

        Ok(stats.snapshot())
    }

    /// Runs the server on a background thread, returning a handle for
    /// shutdown and joining — the in-process harness the differential and
    /// concurrency tests drive.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let cancel = self.cancel.clone();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            cancel,
            thread,
        }
    }
}

/// A running background server (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    cancel: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<io::Result<StatsReply>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without a client connection.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Waits for the server to drain and returns its final counters.
    ///
    /// # Errors
    ///
    /// The run loop's fatal listener error, if any.
    ///
    /// # Panics
    ///
    /// If the server thread itself panicked.
    pub fn join(self) -> io::Result<StatsReply> {
        self.thread.join().expect("server thread panicked")
    }
}

/// Everything the server threads share.
struct Shared {
    cancel: Arc<AtomicBool>,
    stats: Arc<ServeStats>,
    cache: GraphCache,
    prep_queue: JobQueue<PrepTask>,
    batch_queue: JobQueue<ServeJob>,
    observer: Arc<dyn Observer>,
    /// Predict requests admitted but not yet answered — the quantity the
    /// admission bound polices. Only the poll thread increments (it is
    /// the only admitter); completion paths decrement.
    admitted: AtomicU64,
    queue_bound: u64,
    busy_retry_ms: u32,
    stall: Duration,
}

/// Routes a completed reply back to its exact request slot: connection
/// index, the connection's generation (slot reuse), and the per-connection
/// request sequence (pipelining order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Token {
    conn: usize,
    gen: u64,
    seq: u64,
}

/// What an admitted inference request asks the server to compute.
enum TaskKind {
    /// Per-instruction vulnerability estimates (the original opcode).
    Predict { top_k: u32, want_bits: bool },
    /// A budgeted protection-set selection over those estimates.
    Budget { overhead_pct: u32 },
}

/// An admitted inference request on its way to the prep pool.
struct PrepTask {
    token: Token,
    spec: ProgramSpec,
    stride: u32,
    kind: TaskKind,
}

/// What the batcher must do with a prepared program's forward pass.
enum JobKind {
    Predict {
        top_k: u32,
        want_bits: bool,
    },
    /// Budget selection carries the golden-run timing profile the prep
    /// worker collected (the cost side of the knapsack).
    Budget {
        overhead_pct: u32,
        profile: TimingProfile,
    },
}

/// A prepared program on its way to the batcher.
struct ServeJob {
    token: Token,
    prepared: Arc<PreparedProgram>,
    kind: JobKind,
}

/// A finished reply travelling back to the poll thread.
struct Completion {
    token: Token,
    frame: Frame,
}

/// One slot in a connection's in-order reply queue: either still being
/// computed (identified by its request sequence) or ready to flush.
enum ReplySlot {
    Waiting(u64),
    Ready(Frame),
}

/// One client connection owned by the poll thread.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    writer: FrameWriter,
    /// Replies in request order; only the `Ready` prefix may flush.
    replies: VecDeque<ReplySlot>,
    next_seq: u64,
    gen: u64,
    last_progress: Instant,
    /// Stop reading; close once every pending reply has flushed.
    hang_up: bool,
}

enum ConnStatus {
    Alive { advanced: bool },
    Kill,
}

/// Delivers a finished response for an admitted request: the send happens
/// *before* the in-flight count drops, so the poll thread can never
/// observe a drained queue while a completion is still in the channel.
fn complete(shared: &Shared, tx: &mpsc::Sender<Completion>, token: Token, resp: &Response) {
    if matches!(resp, Response::Error { .. }) {
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
    }
    let _ = tx.send(Completion {
        token,
        frame: resp.to_frame(),
    });
    shared.admitted.fetch_sub(1, Ordering::Relaxed);
}

/// The graph-preparation worker: stride validation, program resolution,
/// sharded cache lookup/build, then hand-off to the batcher. A panic in
/// one build (a hostile program hitting a bug) answers that request with
/// a typed internal error instead of wedging its reply slot.
fn prep_loop(shared: &Shared, completions: &mpsc::Sender<Completion>) {
    while let Some(task) = shared.prep_queue.pop_wait() {
        let PrepTask {
            token,
            spec,
            stride,
            kind,
        } = task;
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (prepared, init_mem) = prepare(shared, &spec, stride)?;
            let kind = match kind {
                TaskKind::Predict { top_k, want_bits } => JobKind::Predict { top_k, want_bits },
                TaskKind::Budget { overhead_pct } => JobKind::Budget {
                    overhead_pct,
                    profile: golden_profile(&prepared.program, &init_mem)?,
                },
            };
            Ok::<_, Response>((prepared, kind))
        }));
        match built {
            Ok(Ok((prepared, kind))) => {
                let accepted = shared.batch_queue.push(ServeJob {
                    token,
                    prepared,
                    kind,
                });
                if !accepted {
                    complete(
                        shared,
                        completions,
                        token,
                        &Response::Error {
                            code: ErrorCode::ShuttingDown,
                            message: "server drained before the batch ran".into(),
                        },
                    );
                }
            }
            Ok(Err(resp)) => complete(shared, completions, token, &resp),
            Err(_) => complete(
                shared,
                completions,
                token,
                &Response::Error {
                    code: ErrorCode::Internal,
                    message: "graph preparation failed".into(),
                },
            ),
        }
    }
}

/// Resolves and prepares one inference request up to (but not including)
/// inference, also handing back the program's input image (budget tasks
/// profile the golden run on it).
fn prepare(
    shared: &Shared,
    spec: &ProgramSpec,
    stride: u32,
) -> Result<(Arc<PreparedProgram>, Vec<u64>), Response> {
    let Some(cdfg_config) = usize::try_from(stride)
        .ok()
        .and_then(CdfgConfig::try_with_stride)
    else {
        return Err(Response::Error {
            code: ErrorCode::BadStride,
            message: format!("stride {stride} outside 1..={}", glaive_isa::WORD_BITS),
        });
    };
    let (program, init_mem) = resolve_program(spec)?;
    let name = program.name().to_string();

    let key = program_fingerprint(&program, cdfg_config.bit_stride);
    let (prepared, hit) = shared
        .cache
        .get_or_build(key, &program, cdfg_config.bit_stride, || {
            PreparedProgram::build(program.clone(), &cdfg_config)
        });
    shared.observer.cache_lookup("graph", &name, hit);
    if hit {
        shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
    }
    Ok((prepared, init_mem))
}

/// Compiles the requested program (suite lookup or client-shipped raw
/// instructions) together with its input memory image (empty for raw
/// programs — the client shipped no inputs).
fn resolve_program(spec: &ProgramSpec) -> Result<(Program, Vec<u64>), Response> {
    match spec {
        ProgramSpec::Suite { name, seed } => suite(*seed)
            .into_iter()
            .find(|b| b.name == name.as_str())
            .map(|b| (b.program().clone(), b.init_mem))
            .ok_or_else(|| Response::Error {
                code: ErrorCode::UnknownBenchmark,
                message: format!("no suite benchmark named `{name}`"),
            }),
        ProgramSpec::Raw(program) => Ok((program.clone(), Vec::new())),
    }
}

/// Collects the golden-run timing profile a budget selection prices
/// against. A program that traps, hangs past the execution budget, or
/// ships an oversized input image cannot be priced — that is a typed
/// rejection, not a server fault.
fn golden_profile(program: &Program, init_mem: &[u64]) -> Result<TimingProfile, Response> {
    match try_profile(
        program,
        init_mem,
        &ExecConfig::default(),
        InOrderCost::default(),
    ) {
        Ok((result, profile)) if result.status.is_clean() => Ok(profile),
        Ok((result, _)) => Err(Response::Error {
            code: ErrorCode::BadRequest,
            message: format!(
                "golden run did not halt cleanly ({:?}): cycle costs are undefined",
                result.status
            ),
        }),
        Err(e) => Err(Response::Error {
            code: ErrorCode::BadRequest,
            message: format!("golden run failed: {e}"),
        }),
    }
}

/// Cleanup run when the batcher thread exits for *any* reason. A normal
/// exit (queue closed during shutdown) makes these no-ops; a panic in
/// the forward pass turns into an orderly drain: cancellation flips so
/// the poll loop unwinds, and the queued jobs are answered with typed
/// errors so their reply slots and the in-flight count resolve.
struct BatcherExitGuard<'a> {
    shared: &'a Shared,
    completions: &'a mpsc::Sender<Completion>,
}

impl Drop for BatcherExitGuard<'_> {
    fn drop(&mut self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
        for job in self.shared.batch_queue.close_and_drain() {
            complete(
                self.shared,
                self.completions,
                job.token,
                &Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server drained before the batch ran".into(),
                },
            );
        }
    }
}

/// The batching inference thread: drain everything pending, one coalesced
/// forward pass, one completion per job.
fn batcher_loop(model: &GraphSage, shared: &Shared, completions: &mpsc::Sender<Completion>) {
    let _guard = BatcherExitGuard {
        shared,
        completions,
    };
    let mut workspace = BatchWorkspace::new();
    while let Some(jobs) = shared.batch_queue.drain_wait() {
        let start = Instant::now();
        shared.observer.stage_started(Stage::Inference, "batch");
        let prepared: Vec<Arc<PreparedProgram>> = jobs.iter().map(|j| j.prepared.clone()).collect();
        let results = workspace.run_prepared(model, &prepared);
        shared.stats.record_batch(jobs.len() as u64);
        shared.observer.stage_finished(
            Stage::Inference,
            "batch",
            start.elapsed(),
            jobs.len() as u64,
        );
        for (job, result) in jobs.iter().zip(results) {
            let resp = match &job.kind {
                JobKind::Predict { top_k, want_bits } => {
                    predict_reply(job, *top_k, *want_bits, &result)
                }
                JobKind::Budget {
                    overhead_pct,
                    profile,
                } => budget_reply(job, *overhead_pct, profile, &result),
            };
            shared.stats.predictions.fetch_add(1, Ordering::Relaxed);
            complete(shared, completions, job.token, &resp);
        }
    }
}

/// Aggregates one job's slice of a batched result into its wire reply.
fn predict_reply(job: &ServeJob, top_k: u32, want_bits: bool, result: &BatchResult) -> Response {
    let prepared = &job.prepared;
    let program_len = prepared.program.len();
    let tuples = glaive::aggregate_bit_probs(&prepared.cdfg, program_len, &result.probs);
    let wire_tuples: Vec<Option<WireTuple>> = tuples
        .iter()
        .map(|t| t.map(|v| [v.crash as f32, v.sdc as f32, v.masked as f32]))
        .collect();

    // Protection set: covered PCs by descending severity, PC order as the
    // deterministic tie-break.
    let mut ranked: Vec<u32> = tuples
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_some())
        .map(|(pc, _)| pc as u32)
        .collect();
    ranked.sort_by(|&a, &b| {
        let ka = tuples[a as usize]
            .expect("filtered to covered")
            .ranking_key();
        let kb = tuples[b as usize]
            .expect("filtered to covered")
            .ranking_key();
        kb.total_cmp(&ka).then(a.cmp(&b))
    });
    ranked.truncate(top_k as usize);

    Response::Predict(PredictReply {
        node_count: prepared.cdfg.node_count() as u32,
        batch_size: result.batch_size,
        tuples: wire_tuples,
        top_k: ranked,
        bit_probs: want_bits.then(|| {
            (0..result.probs.rows())
                .map(|r| {
                    let row = result.probs.row(r);
                    [row[0], row[1], row[2]]
                })
                .collect()
        }),
    })
}

/// Turns one job's forward pass plus its golden-run profile into a
/// budgeted protection set: instructions the model scored (value: the
/// `2·crash + sdc` ranking key) that actually executed (cost: their
/// golden-run cycles under the in-order model), greedily selected under a
/// `overhead_pct`% cycle budget by [`ProtectionSelector`]. Fully
/// deterministic: density order with cross-multiplied exact comparison,
/// ties broken by ascending PC.
fn budget_reply(
    job: &ServeJob,
    overhead_pct: u32,
    profile: &TimingProfile,
    result: &BatchResult,
) -> Response {
    let prepared = &job.prepared;
    let program_len = prepared.program.len();
    let tuples = glaive::aggregate_bit_probs(&prepared.cdfg, program_len, &result.probs);

    let items: Vec<ProtectionItem> = tuples
        .iter()
        .enumerate()
        .filter_map(|(pc, t)| {
            let t = (*t)?;
            let timing = profile.per_pc.get(pc)?;
            if timing.executions == 0 {
                return None; // never executed: protecting it covers nothing
            }
            Some(ProtectionItem {
                pc,
                value: t.ranking_key(),
                cost: timing.cycles,
            })
        })
        .collect();

    let selector = ProtectionSelector::with_overhead_pct(profile.total_cycles, overhead_pct);
    let selection = selector.select(&items);

    Response::Budget(BudgetReply {
        items: selection
            .chosen
            .iter()
            .map(|item| BudgetItem {
                pc: item.pc as u32,
                cycles: item.cost,
                score: item.value as f32,
            })
            .collect(),
        node_count: prepared.cdfg.node_count() as u32,
        batch_size: result.batch_size,
        total_cycles: profile.total_cycles,
        budget_cycles: selection.budget,
        spent_cycles: selection.spent,
        covered: selection.covered as f32,
    })
}

/// The event loop proper: accept, route completions, pump every
/// connection, police stalls, drain on cancellation.
fn poll_loop(
    listener: &TcpListener,
    shared: &Shared,
    completions: &mpsc::Receiver<Completion>,
) -> io::Result<()> {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_gen: u64 = 0;
    let mut drain_deadline: Option<Instant> = None;
    // Consecutive no-progress iterations, driving the idle backoff.
    let mut idle_iters: u32 = 0;

    loop {
        let mut progressed = false;
        let draining = shared.cancel.load(Ordering::Relaxed);

        if !draining {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        next_gen += 1;
                        let conn = Conn {
                            stream,
                            reader: FrameReader::new(),
                            writer: FrameWriter::new(),
                            replies: VecDeque::new(),
                            next_seq: 0,
                            gen: next_gen,
                            last_progress: Instant::now(),
                            hang_up: false,
                        };
                        match free.pop() {
                            Some(i) => conns[i] = Some(conn),
                            None => conns.push(Some(conn)),
                        }
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        shared.cancel.store(true, Ordering::Relaxed);
                        return Err(e);
                    }
                }
            }
        }

        while let Ok(done) = completions.try_recv() {
            progressed = true;
            let Token {
                conn: idx,
                gen,
                seq,
            } = done.token;
            let Some(Some(conn)) = conns.get_mut(idx) else {
                continue;
            };
            if conn.gen != gen {
                continue; // the slot was reused by a newer connection
            }
            if let Some(slot) = conn
                .replies
                .iter_mut()
                .find(|s| matches!(s, ReplySlot::Waiting(q) if *q == seq))
            {
                *slot = ReplySlot::Ready(done.frame);
            }
        }

        for (idx, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            match service_conn(conn, idx, shared, draining) {
                ConnStatus::Alive { advanced } => progressed |= advanced,
                ConnStatus::Kill => {
                    *slot = None;
                    free.push(idx);
                    progressed = true;
                }
            }
        }

        if draining {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + shared.stall);
            let inflight = shared.admitted.load(Ordering::Relaxed);
            let flushed = conns
                .iter()
                .flatten()
                .all(|c| c.writer.is_idle() && c.replies.is_empty());
            let batcher_dead = shared.batch_queue.is_closed();
            if (inflight == 0 && flushed) || batcher_dead || Instant::now() > deadline {
                return Ok(());
            }
        }

        if !progressed {
            idle_iters = idle_iters.saturating_add(1);
            if idle_iters <= IDLE_SPIN_ITERS {
                std::hint::spin_loop();
            } else if idle_iters <= IDLE_NAP_ITERS {
                std::thread::sleep(IDLE_NAP);
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        } else {
            idle_iters = 0;
        }
    }
}

/// One poll-loop visit to one connection: read and dispatch up to a burst
/// of frames, promote in-order ready replies into the writer, flush, and
/// police the stall deadline.
fn service_conn(conn: &mut Conn, idx: usize, shared: &Shared, draining: bool) -> ConnStatus {
    let mut advanced = false;

    if !conn.hang_up && !draining {
        let buffered_before = conn.reader.buffered();
        for _ in 0..FRAME_BURST {
            match conn.reader.poll(&mut conn.stream) {
                Ok(FramePoll::Ready) => {
                    advanced = true;
                    process_frame(conn, idx, shared);
                    conn.reader.consume();
                    if conn.hang_up {
                        break;
                    }
                }
                Ok(FramePoll::Pending) => break,
                Ok(FramePoll::Closed) => {
                    // Clean EOF. If replies are still owed (the peer
                    // half-closed after pipelining requests), flush them
                    // first; otherwise the conversation is over.
                    if conn.replies.is_empty() && conn.writer.is_idle() {
                        return ConnStatus::Kill;
                    }
                    conn.hang_up = true;
                    break;
                }
                Err(err) => {
                    // Unframeable traffic: answer (after any replies
                    // already owed, in order) and hang up.
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    conn.replies.push_back(ReplySlot::Ready(
                        Response::Error {
                            code: ErrorCode::BadRequest,
                            message: err.to_string(),
                        }
                        .to_frame(),
                    ));
                    conn.hang_up = true;
                    break;
                }
            }
        }
        if conn.reader.buffered() != buffered_before {
            advanced = true;
        }
    }

    while let Some(ReplySlot::Ready(_)) = conn.replies.front() {
        let Some(ReplySlot::Ready(frame)) = conn.replies.pop_front() else {
            unreachable!("front just matched Ready");
        };
        conn.writer.enqueue(frame);
        advanced = true;
    }

    let pending_before = conn.writer.pending_bytes();
    match conn.writer.poll_write(&mut conn.stream) {
        Ok(flushed) => {
            if conn.writer.pending_bytes() != pending_before {
                advanced = true;
            }
            if flushed && conn.hang_up && conn.replies.is_empty() {
                return ConnStatus::Kill;
            }
        }
        Err(_) => return ConnStatus::Kill,
    }

    if advanced {
        conn.last_progress = Instant::now();
    } else if (conn.reader.mid_frame() || !conn.writer.is_idle())
        && conn.last_progress.elapsed() > shared.stall
    {
        // The peer stalled mid-frame or stopped draining its replies:
        // cut it off with a best-effort typed error so a frozen client
        // can never pin event-loop state forever.
        shared.stats.stall_evictions.fetch_add(1, Ordering::Relaxed);
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        conn.writer.enqueue(
            Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("peer stalled mid-frame for over {:?}", shared.stall),
            }
            .to_frame(),
        );
        let _ = conn.writer.poll_write(&mut conn.stream);
        return ConnStatus::Kill;
    }
    ConnStatus::Alive { advanced }
}

/// Decodes and dispatches one complete frame sitting in `conn.reader`.
/// Control frames answer inline on the poll thread; predict requests pass
/// admission control and leave for the prep pool with a `Waiting` slot
/// holding their place in the reply order.
fn process_frame(conn: &mut Conn, idx: usize, shared: &Shared) {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    fn ready(shared: &Shared, conn: &mut Conn, resp: Response) {
        if matches!(resp, Response::Error { .. }) {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        conn.replies.push_back(ReplySlot::Ready(resp.to_frame()));
    }
    match Request::from_frame(conn.reader.frame()) {
        Err(err) => ready(
            shared,
            conn,
            Response::Error {
                code: ErrorCode::BadRequest,
                message: err.to_string(),
            },
        ),
        Ok(Request::Ping) => ready(shared, conn, Response::Pong),
        Ok(Request::Stats) => ready(shared, conn, Response::Stats(shared.stats.snapshot())),
        Ok(Request::Shutdown) => {
            shared.cancel.store(true, Ordering::Relaxed);
            ready(shared, conn, Response::ShutdownAck);
            conn.hang_up = true;
        }
        Ok(Request::Predict {
            spec,
            stride,
            top_k,
            want_bits,
        }) => admit(
            conn,
            idx,
            shared,
            spec,
            stride,
            TaskKind::Predict { top_k, want_bits },
        ),
        Ok(Request::Budget {
            spec,
            stride,
            overhead_pct,
        }) => admit(
            conn,
            idx,
            shared,
            spec,
            stride,
            TaskKind::Budget { overhead_pct },
        ),
    }
}

/// Admission control for inference requests (predict and budget alike).
/// Only the poll thread admits, so the load-then-add pair cannot race
/// another admitter.
fn admit(
    conn: &mut Conn,
    idx: usize,
    shared: &Shared,
    spec: ProgramSpec,
    stride: u32,
    kind: TaskKind,
) {
    fn ready(shared: &Shared, conn: &mut Conn, resp: Response) {
        if matches!(resp, Response::Error { .. }) {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        conn.replies.push_back(ReplySlot::Ready(resp.to_frame()));
    }
    let inflight = shared.admitted.load(Ordering::Relaxed);
    if inflight >= shared.queue_bound {
        shared.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
        ready(
            shared,
            conn,
            Response::Busy {
                retry_after_ms: shared.busy_retry_ms,
            },
        );
        return;
    }
    shared.admitted.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .queue_depth_max
        .fetch_max(inflight + 1, Ordering::Relaxed);
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let token = Token {
        conn: idx,
        gen: conn.gen,
        seq,
    };
    conn.replies.push_back(ReplySlot::Waiting(seq));
    let accepted = shared.prep_queue.push(PrepTask {
        token,
        spec,
        stride,
        kind,
    });
    if !accepted {
        // Draining: undo the admission and answer inline.
        shared.admitted.fetch_sub(1, Ordering::Relaxed);
        conn.replies.pop_back();
        ready(
            shared,
            conn,
            Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is draining".into(),
            },
        );
    }
}
