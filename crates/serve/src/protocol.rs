//! The `GLVSRV02` wire protocol: length-prefixed, checksummed binary
//! frames, in the same little-endian magic/version discipline as the
//! `GLVFIT01` ground-truth and `GLVCKPT1` checkpoint formats. (Version 02
//! added the typed [`Response::Busy`] admission-control rejection and the
//! serving-pressure stats counters; per the versioning discipline the
//! magic's trailing digit was bumped, so 01 peers are rejected with
//! [`ProtocolError::BadMagic`] instead of mis-decoding.)
//!
//! The framing itself — length prefix, trailing FNV-1a checksum, typed
//! [`ProtocolError`] decode failures — lives in the shared [`glaive_wire`]
//! codec (also used by the `GLVCMP01` campaign-fabric protocol); this
//! module owns the `GLVSRV02` magic, opcodes and body layouts. The
//! framing-layer names ([`ProtocolError`], [`fnv1a`], [`read_frame`],
//! [`write_frame`], [`MAX_FRAME_LEN`]) are re-exported here so existing
//! callers are unaffected by the split.
//!
//! On the wire every frame is a `u32` payload length followed by the
//! payload. A payload is
//!
//! ```text
//! magic "GLVSRV02" (8) | opcode (1) | body (…) | FNV-1a over all prior bytes (8)
//! ```
//!
//! The trailing checksum covers the magic, opcode and body, so *any*
//! single-byte corruption is rejected: each FNV-1a step is a bijection of
//! the hash state, hence a changed byte always changes the final digest.
//! Decoders never panic on foreign bytes — every malformed frame maps to a
//! typed [`ProtocolError`].
//!
//! Multi-byte integers are little-endian throughout; strings are
//! length-prefixed UTF-8; probabilities travel as `f32` bit patterns, so a
//! response is bit-identical to the server-side computation.

use std::fmt;

use glaive_isa::{Instr, Program, INSTR_ENCODING_LEN};
use glaive_wire::Reader;

pub use glaive_wire::{
    fnv1a, read_frame, write_frame, Frame, FrameBuilder, ProtocolError, MAX_FRAME_LEN,
};

/// Magic + format version of every frame. Bump the trailing digit on any
/// layout change: decoders reject other versions with
/// [`ProtocolError::BadMagic`].
pub const MAGIC: &[u8; 8] = b"GLVSRV02";

const NAME_CAP: usize = 1 << 12;
const INSTR_CAP: usize = 1 << 20;

/// How a request names the program to estimate.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramSpec {
    /// A benchmark of the built-in suite, compiled server-side with the
    /// given input seed.
    Suite {
        /// Benchmark name (`glaive-cli list`).
        name: String,
        /// Input-generation seed.
        seed: u64,
    },
    /// A client-compiled program shipped as encoded instructions.
    Raw(Program),
}

impl ProgramSpec {
    /// The program name a response/telemetry line refers to.
    pub fn name(&self) -> &str {
        match self {
            ProgramSpec::Suite { name, .. } => name,
            ProgramSpec::Raw(p) => p.name(),
        }
    }
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Estimate per-instruction vulnerability for one program.
    Predict {
        /// The program to estimate.
        spec: ProgramSpec,
        /// CDFG bit stride (must be within `1..=WORD_BITS`, and should
        /// match the stride the served model was trained at).
        stride: u32,
        /// How many top-ranked PCs to return as the protection set.
        top_k: u32,
        /// Also return the raw per-bit-node class probabilities (used by
        /// differential tests; larger frames).
        want_bits: bool,
    },
    /// Select a protection set under a cycle-overhead budget: rank the
    /// program's instructions by estimated vulnerability, cost each by its
    /// golden-run cycle share under the in-order timing model, and greedily
    /// maximise covered vulnerability subject to the budget (deterministic
    /// density order, ties broken by ascending PC).
    Budget {
        /// The program to protect.
        spec: ProgramSpec,
        /// CDFG bit stride, as for [`Request::Predict`].
        stride: u32,
        /// Protection budget as a percentage of the program's golden-run
        /// cycles (e.g. 5 ⇒ the selected instructions' cycles may total up
        /// to 5% of total cycles).
        overhead_pct: u32,
    },
    /// Read the server's counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to stop accepting work and exit its run loop.
    Shutdown,
}

/// Per-instruction estimate: `[crash, sdc, masked]` class probabilities.
pub type WireTuple = [f32; 3];

/// The body of a successful predict response.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictReply {
    /// One entry per PC; `None` where the program has no CDFG nodes
    /// (operand-less instructions have nothing to estimate).
    pub tuples: Vec<Option<WireTuple>>,
    /// The top-K protection set: PCs in descending severity order.
    pub top_k: Vec<u32>,
    /// Bit-level CDFG nodes the estimate aggregated over.
    pub node_count: u32,
    /// How many coalesced requests shared this forward pass (≥ 1).
    pub batch_size: u32,
    /// Per-node class probability rows, when the request set `want_bits`.
    pub bit_probs: Option<Vec<WireTuple>>,
}

/// One instruction picked (or considered) by the budgeted selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetItem {
    /// Program counter of the protected instruction.
    pub pc: u32,
    /// Its protection cost: golden-run cycles spent at this PC under the
    /// in-order timing model.
    pub cycles: u64,
    /// Its estimated vulnerability score (the model ranking key
    /// `2·crash + sdc`).
    pub score: f32,
}

/// The body of a successful budget response.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetReply {
    /// The selected protection set, in pick (descending density) order.
    pub items: Vec<BudgetItem>,
    /// Bit-level CDFG nodes the estimate aggregated over.
    pub node_count: u32,
    /// How many coalesced requests shared this forward pass (≥ 1).
    pub batch_size: u32,
    /// Golden-run total cycles of the program.
    pub total_cycles: u64,
    /// The cycle budget derived from the requested overhead percentage.
    pub budget_cycles: u64,
    /// Cycles actually spent by the selected set (≤ `budget_cycles`).
    pub spent_cycles: u64,
    /// Summed vulnerability score covered by the selection.
    pub covered: f32,
}

/// Server counters, as returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Total frames served (all kinds).
    pub requests: u64,
    /// Predict requests served.
    pub predictions: u64,
    /// Batched forward passes run.
    pub batches: u64,
    /// Largest coalesced batch so far.
    pub peak_batch: u64,
    /// Graph-cache hits.
    pub cache_hits: u64,
    /// Graph-cache misses (CDFG built from scratch).
    pub cache_misses: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Predict requests turned away with [`Response::Busy`] because the
    /// admission queue was full.
    pub busy_rejections: u64,
    /// Connections cut off for stalling mid-frame or mid-flush past the
    /// server's stall deadline.
    pub stall_evictions: u64,
    /// High-water mark of admitted-but-unanswered predict requests.
    pub queue_depth_max: u64,
}

/// Why the server rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame decoded but the request is invalid.
    BadRequest,
    /// No suite benchmark has the requested name.
    UnknownBenchmark,
    /// The stride falls outside the CDFG's valid range.
    BadStride,
    /// The served model cannot estimate this input.
    ModelMismatch,
    /// The server is draining; retry against a fresh instance.
    ShuttingDown,
    /// An internal failure (the request may be fine).
    Internal,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::UnknownBenchmark => 2,
            ErrorCode::BadStride => 3,
            ErrorCode::ModelMismatch => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::Internal => 6,
        }
    }

    fn from_byte(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::UnknownBenchmark,
            3 => ErrorCode::BadStride,
            4 => ErrorCode::ModelMismatch,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::BadRequest => "bad request",
            ErrorCode::UnknownBenchmark => "unknown benchmark",
            ErrorCode::BadStride => "bad stride",
            ErrorCode::ModelMismatch => "model mismatch",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::Internal => "internal error",
        };
        f.write_str(name)
    }
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A successful prediction.
    Predict(PredictReply),
    /// A successful budgeted protection-set selection.
    Budget(BudgetReply),
    /// Server counters.
    Stats(StatsReply),
    /// Reply to [`Request::Ping`].
    Pong,
    /// The server accepted the shutdown and is draining.
    ShutdownAck,
    /// Admission control turned the predict request away: the bounded
    /// request queue is full, and queueing further would only grow tail
    /// latency without bound. Not an error — the request was never
    /// admitted, and the connection stays healthy. Retry after the hint.
    Busy {
        /// Server-suggested delay before retrying, in milliseconds.
        retry_after_ms: u32,
    },
    /// The request was rejected.
    Error {
        /// Machine-readable rejection class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

const OP_PREDICT: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_PING: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_BUDGET: u8 = 0x05;
const OP_R_PREDICT: u8 = 0x81;
const OP_R_STATS: u8 = 0x82;
const OP_R_PONG: u8 = 0x83;
const OP_R_SHUTDOWN: u8 = 0x84;
const OP_R_BUSY: u8 = 0x85;
const OP_R_BUDGET: u8 = 0x86;
const OP_R_ERROR: u8 = 0xff;

/// Validates the `GLVSRV02` magic and checksum, returning a reader over
/// the body (opcode onwards).
fn open(payload: &[u8]) -> Result<Reader<'_>, ProtocolError> {
    glaive_wire::open(payload, MAGIC)
}

fn encode_spec(b: &mut FrameBuilder, spec: &ProgramSpec) {
    match spec {
        ProgramSpec::Suite { name, seed } => {
            b.u8(0).str(name).u64(*seed);
        }
        ProgramSpec::Raw(program) => {
            b.u8(1)
                .str(program.name())
                .u64(program.mem_words() as u64)
                .u32(program.len() as u32);
            for instr in program.instrs() {
                b.raw(&instr.encode());
            }
        }
    }
}

impl Request {
    /// Serialises the request into a sealed [`Frame`] (length prefix not
    /// included — [`write_frame`] adds it).
    pub fn to_frame(&self) -> Frame {
        let mut b = FrameBuilder::new(MAGIC);
        match self {
            Request::Predict {
                spec,
                stride,
                top_k,
                want_bits,
            } => {
                b.u8(OP_PREDICT)
                    .u32(*stride)
                    .u32(*top_k)
                    .u8(*want_bits as u8);
                encode_spec(&mut b, spec);
            }
            Request::Budget {
                spec,
                stride,
                overhead_pct,
            } => {
                b.u8(OP_BUDGET).u32(*stride).u32(*overhead_pct);
                encode_spec(&mut b, spec);
            }
            Request::Stats => {
                b.u8(OP_STATS);
            }
            Request::Ping => {
                b.u8(OP_PING);
            }
            Request::Shutdown => {
                b.u8(OP_SHUTDOWN);
            }
        }
        b.seal()
    }

    /// Decodes a sealed request payload (raw wire bytes).
    ///
    /// # Errors
    ///
    /// A typed [`ProtocolError`] for anything that is not an intact
    /// current-version request frame.
    pub fn from_frame(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = open(payload)?;
        let req = match r.u8()? {
            OP_PREDICT => {
                let stride = r.u32()?;
                let top_k = r.u32()?;
                let want_bits = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(ProtocolError::Corrupt("bad want_bits flag")),
                };
                let spec = decode_spec(&mut r)?;
                Request::Predict {
                    spec,
                    stride,
                    top_k,
                    want_bits,
                }
            }
            OP_BUDGET => {
                let stride = r.u32()?;
                let overhead_pct = r.u32()?;
                let spec = decode_spec(&mut r)?;
                Request::Budget {
                    spec,
                    stride,
                    overhead_pct,
                }
            }
            OP_STATS => Request::Stats,
            OP_PING => Request::Ping,
            OP_SHUTDOWN => Request::Shutdown,
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

fn decode_spec(r: &mut Reader<'_>) -> Result<ProgramSpec, ProtocolError> {
    match r.u8()? {
        0 => {
            let name = r.string(NAME_CAP)?;
            let seed = r.u64()?;
            Ok(ProgramSpec::Suite { name, seed })
        }
        1 => {
            let name = r.string(NAME_CAP)?;
            let mem_words = r.u64()?;
            let count = r.u32()? as usize;
            if count > INSTR_CAP {
                return Err(ProtocolError::Corrupt("instruction count exceeds cap"));
            }
            let mut instrs = Vec::with_capacity(count.min(r.remaining() / INSTR_ENCODING_LEN + 1));
            for _ in 0..count {
                let bytes: [u8; INSTR_ENCODING_LEN] = r
                    .take(INSTR_ENCODING_LEN)?
                    .try_into()
                    .expect("take returned the requested length");
                instrs.push(
                    Instr::decode(&bytes)
                        .map_err(|_| ProtocolError::Corrupt("undecodable instruction"))?,
                );
            }
            let mem_words = usize::try_from(mem_words)
                .map_err(|_| ProtocolError::Corrupt("mem_words overflows usize"))?;
            // `Instr::decode` accepts any target index, so a checksummed
            // frame can still carry a dangling branch/jump — validate here
            // instead of letting `Program::new` panic the worker.
            let program = Program::try_new(name, instrs, mem_words)
                .map_err(|_| ProtocolError::Corrupt("branch/jump target out of range"))?;
            Ok(ProgramSpec::Raw(program))
        }
        _ => Err(ProtocolError::Corrupt("bad program-spec tag")),
    }
}

impl Response {
    /// Serialises the response into a sealed [`Frame`].
    pub fn to_frame(&self) -> Frame {
        let mut b = FrameBuilder::new(MAGIC);
        match self {
            Response::Predict(p) => {
                b.u8(OP_R_PREDICT)
                    .u32(p.node_count)
                    .u32(p.batch_size)
                    .u32(p.tuples.len() as u32);
                for t in &p.tuples {
                    match t {
                        Some([c, s, m]) => {
                            b.u8(1).f32(*c).f32(*s).f32(*m);
                        }
                        None => {
                            b.u8(0).raw(&[0u8; 12]);
                        }
                    }
                }
                b.u32(p.top_k.len() as u32);
                for &pc in &p.top_k {
                    b.u32(pc);
                }
                match &p.bit_probs {
                    None => {
                        b.u8(0);
                    }
                    Some(rows) => {
                        b.u8(1).u32(rows.len() as u32);
                        for [c, s, m] in rows {
                            b.f32(*c).f32(*s).f32(*m);
                        }
                    }
                }
            }
            Response::Budget(p) => {
                b.u8(OP_R_BUDGET)
                    .u32(p.node_count)
                    .u32(p.batch_size)
                    .u64(p.total_cycles)
                    .u64(p.budget_cycles)
                    .u64(p.spent_cycles)
                    .f32(p.covered)
                    .u32(p.items.len() as u32);
                for item in &p.items {
                    b.u32(item.pc).u64(item.cycles).f32(item.score);
                }
            }
            Response::Stats(s) => {
                b.u8(OP_R_STATS);
                for v in [
                    s.requests,
                    s.predictions,
                    s.batches,
                    s.peak_batch,
                    s.cache_hits,
                    s.cache_misses,
                    s.errors,
                    s.busy_rejections,
                    s.stall_evictions,
                    s.queue_depth_max,
                ] {
                    b.u64(v);
                }
            }
            Response::Pong => {
                b.u8(OP_R_PONG);
            }
            Response::ShutdownAck => {
                b.u8(OP_R_SHUTDOWN);
            }
            Response::Busy { retry_after_ms } => {
                b.u8(OP_R_BUSY).u32(*retry_after_ms);
            }
            Response::Error { code, message } => {
                b.u8(OP_R_ERROR).u8(code.to_byte()).str(message);
            }
        }
        b.seal()
    }

    /// Decodes a sealed response payload.
    ///
    /// # Errors
    ///
    /// A typed [`ProtocolError`] for anything that is not an intact
    /// current-version response frame.
    pub fn from_frame(payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = open(payload)?;
        let resp = match r.u8()? {
            OP_R_PREDICT => {
                let node_count = r.u32()?;
                let batch_size = r.u32()?;
                let pcs = r.counted(13)?;
                let mut tuples = Vec::with_capacity(pcs);
                for _ in 0..pcs {
                    let present = r.u8()?;
                    let c = r.f32()?;
                    let s = r.f32()?;
                    let m = r.f32()?;
                    tuples.push(match present {
                        0 => None,
                        1 => Some([c, s, m]),
                        _ => return Err(ProtocolError::Corrupt("bad tuple flag")),
                    });
                }
                let k = r.counted(4)?;
                let mut top_k = Vec::with_capacity(k);
                for _ in 0..k {
                    top_k.push(r.u32()?);
                }
                let bit_probs = match r.u8()? {
                    0 => None,
                    1 => {
                        let n = r.counted(12)?;
                        let mut rows = Vec::with_capacity(n);
                        for _ in 0..n {
                            rows.push([r.f32()?, r.f32()?, r.f32()?]);
                        }
                        Some(rows)
                    }
                    _ => return Err(ProtocolError::Corrupt("bad bit-probs flag")),
                };
                Response::Predict(PredictReply {
                    tuples,
                    top_k,
                    node_count,
                    batch_size,
                    bit_probs,
                })
            }
            OP_R_BUDGET => {
                let node_count = r.u32()?;
                let batch_size = r.u32()?;
                let total_cycles = r.u64()?;
                let budget_cycles = r.u64()?;
                let spent_cycles = r.u64()?;
                let covered = r.f32()?;
                let n = r.counted(16)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(BudgetItem {
                        pc: r.u32()?,
                        cycles: r.u64()?,
                        score: r.f32()?,
                    });
                }
                Response::Budget(BudgetReply {
                    items,
                    node_count,
                    batch_size,
                    total_cycles,
                    budget_cycles,
                    spent_cycles,
                    covered,
                })
            }
            OP_R_STATS => Response::Stats(StatsReply {
                requests: r.u64()?,
                predictions: r.u64()?,
                batches: r.u64()?,
                peak_batch: r.u64()?,
                cache_hits: r.u64()?,
                cache_misses: r.u64()?,
                errors: r.u64()?,
                busy_rejections: r.u64()?,
                stall_evictions: r.u64()?,
                queue_depth_max: r.u64()?,
            }),
            OP_R_PONG => Response::Pong,
            OP_R_SHUTDOWN => Response::ShutdownAck,
            OP_R_BUSY => Response::Busy {
                retry_after_ms: r.u32()?,
            },
            OP_R_ERROR => {
                let code = ErrorCode::from_byte(r.u8()?)
                    .ok_or(ProtocolError::Corrupt("unknown error code"))?;
                let message = r.string(1 << 16)?;
                Response::Error { code, message }
            }
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_isa::{AluOp, Asm, Reg};

    fn tiny_program() -> Program {
        let mut asm = Asm::new("tiny");
        asm.set_mem_words(4);
        asm.li(Reg(1), 7)
            .alu_imm(AluOp::Add, Reg(2), Reg(1), 3)
            .store(Reg(2), Reg(0), 0)
            .out(Reg(2))
            .halt();
        asm.finish().expect("assembles")
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Predict {
                spec: ProgramSpec::Suite {
                    name: "dijkstra".into(),
                    seed: 7,
                },
                stride: 8,
                top_k: 10,
                want_bits: false,
            },
            Request::Predict {
                spec: ProgramSpec::Raw(tiny_program()),
                stride: 16,
                top_k: 3,
                want_bits: true,
            },
            Request::Budget {
                spec: ProgramSpec::Suite {
                    name: "lu".into(),
                    seed: 7,
                },
                stride: 8,
                overhead_pct: 5,
            },
            Request::Budget {
                spec: ProgramSpec::Raw(tiny_program()),
                stride: 16,
                overhead_pct: 50,
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Predict(PredictReply {
                tuples: vec![Some([0.25, 0.5, 0.25]), None, Some([0.0, 0.0, 1.0])],
                top_k: vec![2, 0],
                node_count: 40,
                batch_size: 3,
                bit_probs: Some(vec![[0.1, 0.2, 0.7], [0.9, 0.05, 0.05]]),
            }),
            Response::Budget(BudgetReply {
                items: vec![
                    BudgetItem {
                        pc: 3,
                        cycles: 40,
                        score: 1.5,
                    },
                    BudgetItem {
                        pc: 0,
                        cycles: 12,
                        score: 0.25,
                    },
                ],
                node_count: 40,
                batch_size: 1,
                total_cycles: 1000,
                budget_cycles: 50,
                spent_cycles: 48,
                covered: 1.75,
            }),
            Response::Budget(BudgetReply {
                items: Vec::new(),
                node_count: 7,
                batch_size: 2,
                total_cycles: 64,
                budget_cycles: 0,
                spent_cycles: 0,
                covered: 0.0,
            }),
            Response::Stats(StatsReply {
                requests: 10,
                predictions: 7,
                batches: 3,
                peak_batch: 4,
                cache_hits: 5,
                cache_misses: 2,
                errors: 1,
                busy_rejections: 6,
                stall_evictions: 1,
                queue_depth_max: 9,
            }),
            Response::Pong,
            Response::ShutdownAck,
            Response::Busy { retry_after_ms: 25 },
            Response::Error {
                code: ErrorCode::UnknownBenchmark,
                message: "no benchmark `nope`".into(),
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for req in sample_requests() {
            let frame = req.to_frame();
            assert_eq!(Request::from_frame(frame.bytes()).expect("roundtrip"), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in sample_responses() {
            let frame = resp.to_frame();
            assert_eq!(
                Response::from_frame(frame.bytes()).expect("roundtrip"),
                resp
            );
        }
    }

    #[test]
    fn stream_framing_roundtrips() {
        let mut wire = Vec::new();
        let frames: Vec<Frame> = sample_requests().iter().map(Request::to_frame).collect();
        for f in &frames {
            write_frame(&mut wire, f).expect("write");
        }
        let mut cursor = &wire[..];
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).expect("read"), f.bytes());
        }
        assert!(matches!(read_frame(&mut cursor), Err(ProtocolError::Io(_))));
    }

    #[test]
    fn dangling_branch_target_is_a_typed_error_not_a_panic() {
        // `Instr` itself places no bound on targets, so a well-formed,
        // correctly checksummed frame can ship a jump past the program end.
        // Build such a frame by hand (Request::to_frame can't — a Program
        // with a dangling target is unconstructible).
        let mut b = FrameBuilder::new(MAGIC);
        b.u8(OP_PREDICT)
            .u32(8) // stride
            .u32(4) // top_k
            .u8(0) // want_bits
            .u8(1) // ProgramSpec::Raw tag
            .str("evil")
            .u64(4) // mem_words
            .u32(1) // instruction count
            .raw(&glaive_isa::Instr::Jump { target: 1000 }.encode());
        let frame = b.seal();
        assert_eq!(
            Request::from_frame(frame.bytes()),
            Err(ProtocolError::Corrupt("branch/jump target out of range"))
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0; 16]);
        assert_eq!(
            read_frame(&mut &wire[..]),
            Err(ProtocolError::FrameTooLarge(u32::MAX))
        );
    }

    #[test]
    fn foreign_and_tampered_payloads_are_typed_errors() {
        assert_eq!(Request::from_frame(b"short"), Err(ProtocolError::Truncated));
        assert_eq!(
            Request::from_frame(b"NOTSRV01................"),
            Err(ProtocolError::BadMagic)
        );
        let mut wrong = Request::Stats.to_frame().into_bytes();
        let body_pos = MAGIC.len();
        wrong[body_pos] ^= 0x40;
        assert_eq!(Request::from_frame(&wrong), Err(ProtocolError::Checksum));
    }
}
