use std::fmt;

use glaive_isa::{GlaiveIsa, Isa, MachineState, Program, Reg, Step};

pub use glaive_isa::Trap;

use crate::fault::{FaultSpec, OperandSlot};

/// Execution limits for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum number of dynamic instructions before the run is declared a
    /// hang ([`ExitStatus::BudgetExceeded`]).
    pub max_instrs: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_instrs: 4_000_000,
        }
    }
}

/// Why an [`ExecConfig`] is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecConfigError {
    /// A zero instruction budget cannot distinguish a hang from any run.
    ZeroBudget,
}

impl fmt::Display for ExecConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecConfigError::ZeroBudget => write!(f, "instruction budget must be at least 1"),
        }
    }
}

impl std::error::Error for ExecConfigError {}

impl ExecConfig {
    /// Creates a validated execution configuration.
    ///
    /// # Errors
    ///
    /// [`ExecConfigError::ZeroBudget`] if `max_instrs` is zero.
    pub fn try_new(max_instrs: u64) -> Result<Self, ExecConfigError> {
        if max_instrs == 0 {
            return Err(ExecConfigError::ZeroBudget);
        }
        Ok(ExecConfig { max_instrs })
    }
}

/// How a simulation run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitStatus {
    /// Reached a `halt` instruction.
    Halted,
    /// Raised a processor exception.
    Trapped(Trap),
    /// Exceeded [`ExecConfig::max_instrs`] (treated as a hang).
    BudgetExceeded,
}

impl ExitStatus {
    /// Returns `true` for a clean `halt` termination.
    pub fn is_clean(self) -> bool {
        matches!(self, ExitStatus::Halted)
    }
}

/// The observable result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Termination status.
    pub status: ExitStatus,
    /// Values emitted by `out` instructions, in order.
    pub output: Vec<u64>,
    /// Total dynamic instructions executed.
    pub dyn_instrs: u64,
    /// Per-static-instruction execution counts (indexed by PC); the dynamic
    /// instance space from which fault-injection sites are drawn.
    pub exec_counts: Vec<u64>,
}

/// A machine-construction error: the inputs cannot form a runnable machine.
///
/// Distinct from [`Trap`] (a runtime exception of a well-formed machine):
/// a `MachineError` means the *benchmark* is malformed, and callers such as
/// fault-injection workers should reject it as a value instead of dying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineError {
    /// The initial memory image is larger than the program's declared data
    /// memory.
    InitMemTooLarge {
        /// Words in the provided image.
        image_words: usize,
        /// Words of declared program memory.
        mem_words: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InitMemTooLarge {
                image_words,
                mem_words,
            } => write!(
                f,
                "initial memory image ({image_words} words) exceeds program memory \
                 ({mem_words} words)"
            ),
        }
    }
}

impl std::error::Error for MachineError {}

/// A typed observer over the retire stream of a simulation run.
///
/// `on_retire` is called once per dynamic instruction, *after* the
/// instruction has executed successfully (architectural state already
/// updated, any armed output fault already applied) and before control
/// transfers to the next PC. Trapped instructions and budget exhaustion do
/// not retire and are not observed.
///
/// Observers are strictly read-only with respect to the machine: the
/// simulator hands out only the PC and the instruction, so an observer —
/// the timing layer being the canonical one — cannot perturb architectural
/// state or fault semantics. The no-op impl for `()` makes the unobserved
/// [`Simulator::run`] path zero-cost after monomorphisation.
pub trait StepObserver<I: Isa> {
    /// Witnesses the retirement of `instr` at static index `pc`.
    fn on_retire(&mut self, pc: usize, instr: &I::Instr);
}

impl<I: Isa> StepObserver<I> for () {
    #[inline]
    fn on_retire(&mut self, _pc: usize, _instr: &I::Instr) {}
}

/// An interpreter for one program execution, optionally with a single armed
/// fault. Generic over the instruction-set backend; defaults to
/// [`GlaiveIsa`] (ISA-A).
///
/// Most callers use the [`run`](crate::run) / [`run_with_fault`](crate::run_with_fault)
/// convenience functions; `Simulator` is public for callers that need to
/// single-step or inspect machine state.
#[derive(Debug, Clone)]
pub struct Simulator<'p, I: Isa = GlaiveIsa> {
    program: &'p Program<I>,
    state: MachineState,
    dyn_instrs: u64,
    exec_counts: Vec<u64>,
    max_instrs: u64,
    fault: Option<FaultSpec>,
    fault_fired: bool,
}

impl<'p, I: Isa> Simulator<'p, I> {
    /// Creates a simulator with memory initialised from `init_mem` (remaining
    /// words zeroed) and all registers zeroed. A malformed benchmark comes
    /// back as a typed [`MachineError`], so supervised pipeline workers can
    /// fail one benchmark without taking down the pool.
    ///
    /// # Errors
    ///
    /// [`MachineError::InitMemTooLarge`] if `init_mem` exceeds the program's
    /// declared data memory.
    pub fn try_new(
        program: &'p Program<I>,
        init_mem: &[u64],
        cfg: &ExecConfig,
    ) -> Result<Self, MachineError> {
        if init_mem.len() > program.mem_words() {
            return Err(MachineError::InitMemTooLarge {
                image_words: init_mem.len(),
                mem_words: program.mem_words(),
            });
        }
        let mut mem = vec![0u64; program.mem_words()];
        mem[..init_mem.len()].copy_from_slice(init_mem);
        Ok(Simulator {
            program,
            state: MachineState::new(I::NUM_REGS, mem),
            dyn_instrs: 0,
            exec_counts: vec![0; program.len()],
            max_instrs: cfg.max_instrs,
            fault: None,
            fault_fired: false,
        })
    }

    /// Arms a single-bit upset to be injected during [`Simulator::run`].
    pub fn arm_fault(&mut self, fault: FaultSpec) {
        self.fault = Some(fault);
        self.fault_fired = false;
    }

    /// Current register file contents.
    pub fn regs(&self) -> &[u64] {
        &self.state.regs
    }

    /// Current data memory contents.
    pub fn mem(&self) -> &[u64] {
        &self.state.mem
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.state.pc
    }

    /// Returns `true` once the armed fault has been injected.
    pub fn fault_fired(&self) -> bool {
        self.fault_fired
    }

    fn flip(&mut self, reg: Reg, bit: u8) {
        self.state.regs[reg.index()] ^= 1u64 << (bit as u32 % 64);
    }

    /// Executes until halt, trap, or budget exhaustion and returns the
    /// observable result.
    pub fn run(&mut self) -> RunResult {
        self.run_observed(&mut ())
    }

    /// Like [`Simulator::run`], reporting every retired instruction to
    /// `observer`. The observer sees the retire stream only; it cannot
    /// influence execution, so the returned [`RunResult`] is identical to
    /// an unobserved run (the timing layer's differential tests enforce
    /// this bit-for-bit).
    pub fn run_observed<O: StepObserver<I>>(&mut self, observer: &mut O) -> RunResult {
        let status = self.run_inner(observer);
        RunResult {
            status,
            output: std::mem::take(&mut self.state.output),
            dyn_instrs: self.dyn_instrs,
            exec_counts: std::mem::take(&mut self.exec_counts),
        }
    }

    fn run_inner<O: StepObserver<I>>(&mut self, observer: &mut O) -> ExitStatus {
        loop {
            if self.dyn_instrs >= self.max_instrs {
                return ExitStatus::BudgetExceeded;
            }
            let pc = self.state.pc;
            let Some(&instr) = self.program.get(pc) else {
                return ExitStatus::Trapped(Trap::InvalidPc { pc });
            };

            // Fault injection: fire when this PC reaches the armed dynamic
            // instance. `exec_counts[pc]` counts *completed* prior
            // executions, so it equals the 0-based instance number here.
            let inject_def = if let Some(f) = self.fault {
                if !self.fault_fired && f.pc == pc && self.exec_counts[pc] == f.instance {
                    match f.slot {
                        OperandSlot::Use(i) => {
                            if let Some(&reg) = I::uses(&instr).get(i) {
                                self.flip(reg, f.bit);
                            }
                            self.fault_fired = true;
                            None
                        }
                        OperandSlot::Def(i) => {
                            self.fault_fired = true;
                            I::defs(&instr).get(i).copied().map(|reg| (reg, f.bit))
                        }
                    }
                } else {
                    None
                }
            } else {
                None
            };

            self.exec_counts[pc] += 1;
            self.dyn_instrs += 1;

            match I::execute(&instr, &mut self.state) {
                Ok(step) => {
                    // Output faults flip the destination after the write.
                    if let Some((reg, bit)) = inject_def {
                        self.flip(reg, bit);
                    }
                    observer.on_retire(pc, &instr);
                    match step {
                        Step::Next => self.state.pc = pc + 1,
                        Step::Goto(t) => self.state.pc = t,
                        Step::Halt => return ExitStatus::Halted,
                    }
                }
                Err(trap) => return ExitStatus::Trapped(trap),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classify, run, run_with_fault, try_run, Outcome};
    use glaive_isa::rv::{RvAsm, RvBranchCond};
    use glaive_isa::{AluOp, Asm, BranchCond, CvtOp};

    fn cfg() -> ExecConfig {
        ExecConfig { max_instrs: 10_000 }
    }

    fn sum_program() -> Program {
        let mut asm = Asm::new("sum");
        let (acc, i, one, lim) = (Reg(1), Reg(2), Reg(3), Reg(4));
        asm.li(acc, 0);
        asm.li(i, 1);
        asm.li(one, 1);
        asm.li(lim, 10);
        let top = asm.label();
        asm.bind(top);
        asm.alu(AluOp::Add, acc, acc, i);
        asm.alu(AluOp::Add, i, i, one);
        asm.branch(BranchCond::Le, i, lim, top);
        asm.out(acc);
        asm.halt();
        asm.finish().expect("resolves")
    }

    #[test]
    fn golden_sum() {
        let p = sum_program();
        let r = run(&p, &[], &cfg());
        assert_eq!(r.status, ExitStatus::Halted);
        assert_eq!(r.output, vec![55]);
        assert_eq!(r.exec_counts[4], 10); // loop body ran 10 times
    }

    #[test]
    fn load_store_roundtrip_and_oob() {
        let mut asm = Asm::new("mem");
        asm.set_mem_words(4);
        asm.li(Reg(1), 7);
        asm.li(Reg(2), 2);
        asm.store(Reg(1), Reg(2), 1); // mem[3] = 7
        asm.load(Reg(3), Reg(2), 1);
        asm.out(Reg(3));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let r = run(&p, &[], &cfg());
        assert_eq!(r.output, vec![7]);

        let mut asm = Asm::new("oob");
        asm.set_mem_words(4);
        asm.li(Reg(1), 4);
        asm.load(Reg(2), Reg(1), 0);
        asm.halt();
        let p = asm.finish().expect("resolves");
        let r = run(&p, &[], &cfg());
        assert_eq!(
            r.status,
            ExitStatus::Trapped(Trap::OutOfBoundsLoad { addr: 4 })
        );
    }

    #[test]
    fn negative_address_traps() {
        let mut asm = Asm::new("neg");
        asm.set_mem_words(4);
        asm.li(Reg(1), -1);
        asm.store(Reg(1), Reg(1), 0);
        asm.halt();
        let p = asm.finish().expect("resolves");
        let r = run(&p, &[], &cfg());
        assert!(matches!(
            r.status,
            ExitStatus::Trapped(Trap::OutOfBoundsStore { .. })
        ));
    }

    #[test]
    fn falling_off_the_end_traps() {
        let mut asm = Asm::new("fall");
        asm.li(Reg(1), 1);
        let p = asm.finish().expect("resolves");
        let r = run(&p, &[], &cfg());
        assert_eq!(r.status, ExitStatus::Trapped(Trap::InvalidPc { pc: 1 }));
    }

    #[test]
    fn budget_exhaustion_is_a_hang() {
        let mut asm = Asm::new("loop");
        let top = asm.label();
        asm.bind(top);
        asm.jump(top);
        let p = asm.finish().expect("resolves");
        let r = run(&p, &[], &ExecConfig { max_instrs: 100 });
        assert_eq!(r.status, ExitStatus::BudgetExceeded);
        assert_eq!(r.dyn_instrs, 100);
    }

    #[test]
    fn initial_memory_is_copied_and_zero_padded() {
        let mut asm = Asm::new("init");
        asm.set_mem_words(4);
        asm.li(Reg(1), 0);
        asm.load(Reg(2), Reg(1), 1);
        asm.out(Reg(2));
        asm.load(Reg(2), Reg(1), 3);
        asm.out(Reg(2));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let r = run(&p, &[9, 11], &cfg());
        assert_eq!(r.output, vec![11, 0]);
    }

    #[test]
    fn oversized_init_mem_is_a_typed_error() {
        let mut asm = Asm::new("t");
        asm.set_mem_words(1);
        asm.halt();
        let p = asm.finish().expect("resolves");
        let err = Simulator::try_new(&p, &[1, 2], &cfg()).expect_err("image too large");
        assert_eq!(
            err,
            MachineError::InitMemTooLarge {
                image_words: 2,
                mem_words: 1
            }
        );
        assert!(err.to_string().contains("exceeds program memory"));
        // The fallible free-function entry point reports the same error.
        assert_eq!(try_run(&p, &[1, 2], &cfg()), Err(err));
    }

    #[test]
    fn exec_config_try_new_rejects_zero_budget() {
        assert_eq!(ExecConfig::try_new(0), Err(ExecConfigError::ZeroBudget));
        assert_eq!(ExecConfig::try_new(7), Ok(ExecConfig { max_instrs: 7 }));
    }

    #[test]
    fn use_fault_changes_output() {
        let p = sum_program();
        let golden = run(&p, &[], &cfg());
        // Corrupt acc (use 0 of the add at pc 4) at its last iteration.
        let f = FaultSpec {
            pc: 4,
            slot: OperandSlot::Use(0),
            bit: 3,
            instance: 9,
        };
        let faulty = run_with_fault(&p, &[], &cfg(), &f);
        assert_eq!(classify(&golden, &faulty), Outcome::Sdc);
    }

    #[test]
    fn def_fault_changes_output() {
        let p = sum_program();
        let golden = run(&p, &[], &cfg());
        let f = FaultSpec {
            pc: 4,
            slot: OperandSlot::Def(0),
            bit: 0,
            instance: 9,
        };
        let faulty = run_with_fault(&p, &[], &cfg(), &f);
        assert_eq!(classify(&golden, &faulty), Outcome::Sdc);
    }

    #[test]
    fn high_bit_fault_on_loop_counter_hangs_or_crashes() {
        let p = sum_program();
        let golden = run(&p, &[], &cfg());
        // Flip bit 63 of the loop bound: i <= lim comparison sees a huge
        // negative bound, loop exits immediately OR counter corruption runs
        // long. Either way the result must differ from golden (bit 63 of
        // the limit makes it negative -> loop exits first iteration -> SDC).
        let f = FaultSpec {
            pc: 6,
            slot: OperandSlot::Use(1),
            bit: 63,
            instance: 0,
        };
        let faulty = run_with_fault(&p, &[], &cfg(), &f);
        assert_ne!(classify(&golden, &faulty), Outcome::Masked);
    }

    #[test]
    fn masked_fault() {
        // Fault a register the program never reads again.
        let mut asm = Asm::new("dead");
        asm.li(Reg(1), 5);
        asm.li(Reg(2), 1);
        asm.alu(AluOp::Add, Reg(3), Reg(1), Reg(2));
        asm.out(Reg(3));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let golden = run(&p, &[], &cfg());
        // Corrupt r1 as an *input* of the add via AND masking: flipping a
        // high bit of r2 (value 1) changes the sum -> pick the dead write
        // instead: def of li r1 after the add has consumed it? The li
        // executes before the add, so corrupt the OUT's source after it is
        // emitted: instead corrupt an unused bit path -> flip bit of r1 def
        // then overwrite: here we corrupt li r2's def bit 0: 1 -> 0 gives
        // sum 5, SDC. For a genuinely masked case, corrupt a branch-less
        // dead register: write r4 never read.
        let mut asm = Asm::new("dead2");
        asm.li(Reg(4), 123); // dead value
        asm.li(Reg(1), 5);
        asm.out(Reg(1));
        asm.halt();
        let p2 = asm.finish().expect("resolves");
        let golden2 = run(&p2, &[], &cfg());
        let f = FaultSpec {
            pc: 0,
            slot: OperandSlot::Def(0),
            bit: 7,
            instance: 0,
        };
        let faulty2 = run_with_fault(&p2, &[], &cfg(), &f);
        assert_eq!(classify(&golden2, &faulty2), Outcome::Masked);
        // Also exercise the first program end-to-end for determinism.
        let again = run(&p, &[], &cfg());
        assert_eq!(golden, again);
    }

    #[test]
    fn fault_on_never_reached_instance_never_fires() {
        let p = sum_program();
        let golden = run(&p, &[], &cfg());
        let f = FaultSpec {
            pc: 4,
            slot: OperandSlot::Use(0),
            bit: 0,
            instance: 10_000,
        };
        let mut sim = Simulator::try_new(&p, &[], &cfg()).expect("well-formed");
        sim.arm_fault(f);
        let faulty = sim.run();
        assert!(!sim.fault_fired());
        assert_eq!(classify(&golden, &faulty), Outcome::Masked);
    }

    #[test]
    fn store_value_fault_corrupts_memory_dataflow() {
        let mut asm = Asm::new("mem-flow");
        asm.set_mem_words(2);
        asm.li(Reg(1), 3);
        asm.li(Reg(2), 0);
        asm.store(Reg(1), Reg(2), 0);
        asm.load(Reg(3), Reg(2), 0);
        asm.out(Reg(3));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let golden = run(&p, &[], &cfg());
        assert_eq!(golden.output, vec![3]);
        let f = FaultSpec {
            pc: 2,
            slot: OperandSlot::Use(0),
            bit: 2,
            instance: 0,
        };
        let faulty = run_with_fault(&p, &[], &cfg(), &f);
        assert_eq!(faulty.output, vec![7]);
        assert_eq!(classify(&golden, &faulty), Outcome::Sdc);
    }

    #[test]
    fn address_fault_can_crash() {
        let mut asm = Asm::new("addr");
        asm.set_mem_words(2);
        asm.li(Reg(1), 0);
        asm.load(Reg(2), Reg(1), 0);
        asm.out(Reg(2));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let golden = run(&p, &[], &cfg());
        // Flip a high bit of the base address register.
        let f = FaultSpec {
            pc: 1,
            slot: OperandSlot::Use(0),
            bit: 40,
            instance: 0,
        };
        let faulty = run_with_fault(&p, &[], &cfg(), &f);
        assert_eq!(classify(&golden, &faulty), Outcome::Crash);
    }

    #[test]
    fn simulator_state_accessors() {
        let mut asm = Asm::new("acc");
        asm.set_mem_words(2);
        asm.li(Reg(1), 9);
        asm.li(Reg(2), 0);
        asm.store(Reg(1), Reg(2), 1);
        asm.halt();
        let p = asm.finish().expect("resolves");
        let mut sim = Simulator::try_new(&p, &[], &cfg()).expect("well-formed");
        assert_eq!(sim.pc(), 0);
        assert!(!sim.fault_fired());
        let r = sim.run();
        assert!(r.status.is_clean());
        assert_eq!(sim.regs()[1], 9);
        assert_eq!(sim.mem()[1], 9);
    }

    #[test]
    fn cvt_roundtrip() {
        let mut asm = Asm::new("cvt");
        asm.li(Reg(1), -42);
        asm.cvt(CvtOp::IntToFloat, Reg(2), Reg(1));
        asm.cvt(CvtOp::FloatToInt, Reg(3), Reg(2));
        asm.out(Reg(3));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let r = run(&p, &[], &cfg());
        assert_eq!(r.output, vec![(-42i64) as u64]);
    }

    /// A retire counter: the simplest useful [`StepObserver`].
    struct RetireLog {
        n: u64,
        pcs: Vec<usize>,
    }

    impl<I: Isa> StepObserver<I> for RetireLog {
        fn on_retire(&mut self, pc: usize, _instr: &I::Instr) {
            self.n += 1;
            self.pcs.push(pc);
        }
    }

    #[test]
    fn observer_sees_every_retire_without_perturbing_the_run() {
        let p = sum_program();
        let golden = run(&p, &[], &cfg());
        let mut log = RetireLog { n: 0, pcs: vec![] };
        let observed = crate::try_run_observed(&p, &[], &cfg(), &mut log).expect("well-formed");
        // Observation is invisible to the architectural result…
        assert_eq!(observed, golden);
        // …and complete: every dynamic instruction of a clean run retires.
        assert_eq!(log.n, golden.dyn_instrs);
        assert_eq!(log.pcs[0], 0);
        assert_eq!(*log.pcs.last().expect("non-empty"), p.len() - 1);
    }

    #[test]
    fn trapped_instruction_does_not_retire() {
        let mut asm = Asm::new("oob");
        asm.set_mem_words(4);
        asm.li(Reg(1), 9);
        asm.load(Reg(2), Reg(1), 0);
        asm.halt();
        let p = asm.finish().expect("resolves");
        let mut log = RetireLog { n: 0, pcs: vec![] };
        let r = crate::try_run_observed(&p, &[], &cfg(), &mut log).expect("well-formed");
        assert!(matches!(r.status, ExitStatus::Trapped(_)));
        // The li retires; the trapping load is counted but never observed.
        assert_eq!(r.dyn_instrs, 2);
        assert_eq!(log.n, 1);
    }

    #[test]
    fn observed_fault_run_matches_unobserved() {
        let p = sum_program();
        let f = FaultSpec {
            pc: 4,
            slot: OperandSlot::Use(0),
            bit: 3,
            instance: 9,
        };
        let plain = run_with_fault(&p, &[], &cfg(), &f);
        let mut log = RetireLog { n: 0, pcs: vec![] };
        let observed =
            crate::try_run_with_fault_observed(&p, &[], &cfg(), &f, &mut log).expect("well-formed");
        assert_eq!(observed, plain);
        assert_eq!(log.n, plain.dyn_instrs);
    }

    /// The same driver (run, fault injection, classification) works on the
    /// ISA-B backend through the `Isa` trait.
    #[test]
    fn rv_backend_runs_and_injects_faults() {
        let mut asm = RvAsm::new("rv-sum");
        let (acc, i, lim) = (Reg(5), Reg(6), Reg(7));
        asm.li(acc, 0);
        asm.li(i, 1);
        asm.li(lim, 10);
        let top = asm.label();
        asm.bind(top);
        asm.alu(glaive_isa::rv::RvAluOp::Add, acc, acc, i);
        asm.addi(i, i, 1);
        asm.branch(RvBranchCond::Bge, lim, i, top);
        asm.mv(Reg(10), acc);
        asm.ecall();
        asm.ebreak();
        let p = asm.finish().expect("resolves");
        let golden = run(&p, &[], &cfg());
        assert_eq!(golden.status, ExitStatus::Halted);
        assert_eq!(golden.output, vec![55]);

        // Corrupt the accumulator input of the add at its final iteration:
        // SDC, exactly like the ISA-A twin of this test.
        let f = FaultSpec {
            pc: 3,
            slot: OperandSlot::Use(0),
            bit: 3,
            instance: 9,
        };
        let faulty = run_with_fault(&p, &[], &cfg(), &f);
        assert_eq!(classify(&golden, &faulty), Outcome::Sdc);

        // A fault aimed at x0 (use 0 of `li acc` = addi acc, x0, 0) is
        // architecturally masked: the hardwired zero reads as zero anyway.
        let fx0 = FaultSpec {
            pc: 0,
            slot: OperandSlot::Use(0),
            bit: 17,
            instance: 0,
        };
        let masked = run_with_fault(&p, &[], &cfg(), &fx0);
        assert_eq!(classify(&golden, &masked), Outcome::Masked);
    }
}
