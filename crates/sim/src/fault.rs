use std::fmt;

pub use glaive_isa::OperandSlot;

/// A single-bit-upset specification: flip `bit` of the register in operand
/// `slot` of static instruction `pc`, at its `instance`-th dynamic execution
/// (0-based).
///
/// One `FaultSpec` corresponds to one fault-injection campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Static instruction index.
    pub pc: usize,
    /// Which operand register to corrupt.
    pub slot: OperandSlot,
    /// Bit position in `0..WORD_BITS`.
    pub bit: u8,
    /// 0-based dynamic occurrence of `pc` at which to inject.
    pub instance: u64,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pc={} {} bit={} instance={}",
            self.pc, self.slot, self.bit, self.instance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let fs = FaultSpec {
            pc: 3,
            slot: OperandSlot::Use(1),
            bit: 17,
            instance: 4,
        };
        assert_eq!(fs.to_string(), "pc=3 use1 bit=17 instance=4");
        let fd = FaultSpec {
            pc: 0,
            slot: OperandSlot::Def(0),
            bit: 63,
            instance: 0,
        };
        assert_eq!(fd.to_string(), "pc=0 def0 bit=63 instance=0");
    }
}
