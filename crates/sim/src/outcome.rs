use std::fmt;

use crate::machine::{ExitStatus, RunResult};

/// The bit-vulnerability class of one fault-injection run (paper §II-B).
///
/// The derived `Ord` encodes the paper's severity ranking
/// `Masked < Sdc < Crash`, used to select the most vulnerable instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Outcome {
    /// Faulty output identical to the golden run.
    Masked,
    /// Program terminated cleanly but the output differs (silent data
    /// corruption).
    Sdc,
    /// The program trapped or hung.
    Crash,
}

impl Outcome {
    /// All outcomes in label order: `Masked = 0`, `Sdc = 1`, `Crash = 2` —
    /// the ternary node-classification labels of the paper (§III-C).
    pub const ALL: [Outcome; 3] = [Outcome::Masked, Outcome::Sdc, Outcome::Crash];

    /// The ternary class label used for GNN node classification.
    pub fn label(self) -> usize {
        self as usize
    }

    /// Inverse of [`Outcome::label`].
    pub fn from_label(label: usize) -> Option<Outcome> {
        Outcome::ALL.get(label).copied()
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::Masked => "Masked",
            Outcome::Sdc => "SDC",
            Outcome::Crash => "Crash",
        };
        f.write_str(s)
    }
}

/// Classifies a faulty run against the golden (fault-free) run.
///
/// * Trap or budget exhaustion → [`Outcome::Crash`]
/// * Clean halt with different output → [`Outcome::Sdc`]
/// * Clean halt with identical output → [`Outcome::Masked`]
pub fn classify(golden: &RunResult, faulty: &RunResult) -> Outcome {
    debug_assert!(
        golden.status.is_clean(),
        "golden run must halt cleanly, got {:?}",
        golden.status
    );
    match faulty.status {
        ExitStatus::Trapped(_) | ExitStatus::BudgetExceeded => Outcome::Crash,
        ExitStatus::Halted => {
            if faulty.output == golden.output {
                Outcome::Masked
            } else {
                Outcome::Sdc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Trap;

    fn result(status: ExitStatus, output: Vec<u64>) -> RunResult {
        RunResult {
            status,
            output,
            dyn_instrs: 1,
            exec_counts: vec![1],
        }
    }

    #[test]
    fn severity_ordering() {
        assert!(Outcome::Crash > Outcome::Sdc);
        assert!(Outcome::Sdc > Outcome::Masked);
    }

    #[test]
    fn labels_roundtrip() {
        for o in Outcome::ALL {
            assert_eq!(Outcome::from_label(o.label()), Some(o));
        }
        assert_eq!(Outcome::from_label(3), None);
    }

    #[test]
    fn classification_rules() {
        let golden = result(ExitStatus::Halted, vec![1, 2]);
        assert_eq!(
            classify(&golden, &result(ExitStatus::Halted, vec![1, 2])),
            Outcome::Masked
        );
        assert_eq!(
            classify(&golden, &result(ExitStatus::Halted, vec![1, 3])),
            Outcome::Sdc
        );
        assert_eq!(
            classify(
                &golden,
                &result(ExitStatus::Trapped(Trap::DivByZero), vec![1, 2])
            ),
            Outcome::Crash
        );
        assert_eq!(
            classify(&golden, &result(ExitStatus::BudgetExceeded, vec![1, 2])),
            Outcome::Crash
        );
    }

    #[test]
    fn shorter_output_is_sdc() {
        let golden = result(ExitStatus::Halted, vec![1, 2]);
        assert_eq!(
            classify(&golden, &result(ExitStatus::Halted, vec![1])),
            Outcome::Sdc
        );
    }
}
