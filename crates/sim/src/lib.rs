//! Functional simulator for the GLAIVE ISA with architectural single-bit
//! fault injection.
//!
//! This crate is the reproduction's stand-in for gem5 full-system simulation:
//! it executes [`glaive_isa::Program`]s against a flat, trap-checked data
//! memory, records the dynamic execution profile, and can re-run a program
//! with a single-bit upset injected into a register operand of one dynamic
//! instruction instance — the fault model of the paper (§II-A): transient
//! faults in the registers that store instruction inputs and outputs.
//!
//! Outcomes are classified exactly as in the paper (§II-B):
//! * **Masked** — faulty output identical to the golden run,
//! * **SDC** — program completed but output differs,
//! * **Crash** — a trap (out-of-bounds access, divide-by-zero, invalid PC) or
//!   an exceeded instruction budget (hang; see DESIGN.md §3 for the fold).
//!
//! # Example
//!
//! ```
//! use glaive_isa::{Asm, Reg, AluOp};
//! use glaive_sim::{run, run_with_fault, classify, ExecConfig, FaultSpec, OperandSlot, Outcome};
//!
//! let mut asm = Asm::new("double");
//! asm.li(Reg(1), 21);
//! asm.alu(AluOp::Add, Reg(2), Reg(1), Reg(1));
//! asm.out(Reg(2));
//! asm.halt();
//! let p = asm.finish()?;
//!
//! let cfg = ExecConfig::default();
//! let golden = run(&p, &[], &cfg);
//! assert_eq!(golden.output, vec![42]);
//!
//! // Flip bit 0 of the first source operand of the add at its first
//! // dynamic instance: 21 becomes 20, the output becomes 40 -> SDC.
//! let fault = FaultSpec { pc: 1, slot: OperandSlot::Use(0), bit: 0, instance: 0 };
//! let faulty = run_with_fault(&p, &[], &cfg, &fault);
//! assert_eq!(classify(&golden, &faulty), Outcome::Sdc);
//! # Ok::<(), glaive_isa::AsmError>(())
//! ```

mod fault;
mod machine;
mod outcome;

pub use fault::{FaultSpec, OperandSlot};
pub use machine::{
    ExecConfig, ExecConfigError, ExitStatus, MachineError, RunResult, Simulator, StepObserver, Trap,
};
pub use outcome::{classify, Outcome};

use glaive_isa::{Isa, Program};

/// Runs `program` to completion on a fresh machine whose memory is
/// initialised from `init_mem` (the remainder is zero-filled). Works for any
/// instruction-set backend; the ISA is inferred from the program.
///
/// This is the *golden* (fault-free) execution used as the reference for
/// outcome classification.
///
/// # Panics
///
/// Panics if `init_mem` exceeds the program's declared data memory; use
/// [`try_run`] to get the violation as a value instead.
pub fn run<I: Isa>(program: &Program<I>, init_mem: &[u64], cfg: &ExecConfig) -> RunResult {
    match try_run(program, init_mem, cfg) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible counterpart of [`run`].
///
/// # Errors
///
/// [`MachineError::InitMemTooLarge`] if `init_mem` exceeds the program's
/// declared data memory.
pub fn try_run<I: Isa>(
    program: &Program<I>,
    init_mem: &[u64],
    cfg: &ExecConfig,
) -> Result<RunResult, MachineError> {
    Ok(Simulator::try_new(program, init_mem, cfg)?.run())
}

/// Runs `program` with a single-bit upset injected according to `fault`.
///
/// # Panics
///
/// Panics if `init_mem` exceeds the program's declared data memory; use
/// [`try_run_with_fault`] to get the violation as a value instead.
pub fn run_with_fault<I: Isa>(
    program: &Program<I>,
    init_mem: &[u64],
    cfg: &ExecConfig,
    fault: &FaultSpec,
) -> RunResult {
    match try_run_with_fault(program, init_mem, cfg, fault) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible counterpart of [`run_with_fault`].
///
/// # Errors
///
/// [`MachineError::InitMemTooLarge`] if `init_mem` exceeds the program's
/// declared data memory.
pub fn try_run_with_fault<I: Isa>(
    program: &Program<I>,
    init_mem: &[u64],
    cfg: &ExecConfig,
    fault: &FaultSpec,
) -> Result<RunResult, MachineError> {
    let mut sim = Simulator::try_new(program, init_mem, cfg)?;
    sim.arm_fault(*fault);
    Ok(sim.run())
}

/// Like [`try_run`], reporting every retired instruction to `observer` —
/// the entry point of timing layers that watch execution without touching
/// it. The returned [`RunResult`] is identical to an unobserved run.
///
/// # Errors
///
/// [`MachineError::InitMemTooLarge`] if `init_mem` exceeds the program's
/// declared data memory.
pub fn try_run_observed<I: Isa, O: StepObserver<I>>(
    program: &Program<I>,
    init_mem: &[u64],
    cfg: &ExecConfig,
    observer: &mut O,
) -> Result<RunResult, MachineError> {
    Ok(Simulator::try_new(program, init_mem, cfg)?.run_observed(observer))
}

/// Like [`try_run_with_fault`], reporting every retired instruction to
/// `observer`. Fault semantics are unaffected by observation: the timing
/// layer's differential tests compare this against the unobserved run
/// byte-for-byte.
///
/// # Errors
///
/// [`MachineError::InitMemTooLarge`] if `init_mem` exceeds the program's
/// declared data memory.
pub fn try_run_with_fault_observed<I: Isa, O: StepObserver<I>>(
    program: &Program<I>,
    init_mem: &[u64],
    cfg: &ExecConfig,
    fault: &FaultSpec,
    observer: &mut O,
) -> Result<RunResult, MachineError> {
    let mut sim = Simulator::try_new(program, init_mem, cfg)?;
    sim.arm_fault(*fault);
    Ok(sim.run_observed(observer))
}
