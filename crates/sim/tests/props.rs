//! Property-based tests for simulator determinism and fault-injection
//! invariants, driven by randomly generated straight-line-plus-loop programs.

use glaive_isa::{AluOp, Asm, BranchCond, Program, Reg};
use glaive_sim::{classify, run, run_with_fault, ExecConfig, FaultSpec, OperandSlot, Outcome};
use proptest::prelude::*;

/// Builds a small program from a recipe of register-to-register ALU ops,
/// always ending by emitting every register and halting. Division operands
/// are biased away from zero to keep most runs clean.
fn build_program(ops: &[(u8, u8, u8, u8)], seeds: &[i64]) -> Program {
    let mut asm = Asm::new("prop");
    for (i, &s) in seeds.iter().enumerate() {
        // Avoid zero seeds so div/rem rarely trap in the golden run.
        asm.li(Reg(i as u8 + 1), if s == 0 { 1 } else { s });
    }
    let n = seeds.len() as u8;
    for &(op_idx, rd, rs1, rs2) in ops {
        let op = AluOp::ALL[(op_idx as usize) % AluOp::ALL.len()];
        let op = if op.can_trap() { AluOp::Add } else { op };
        asm.alu(op, Reg(1 + rd % n), Reg(1 + rs1 % n), Reg(1 + rs2 % n));
    }
    for i in 0..n {
        asm.out(Reg(1 + i));
    }
    asm.halt();
    asm.finish().expect("labels resolve")
}

fn cfg() -> ExecConfig {
    ExecConfig { max_instrs: 50_000 }
}

proptest! {
    /// The simulator is deterministic: same program, same result.
    #[test]
    fn deterministic(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..20),
        seeds in proptest::collection::vec(any::<i64>(), 2..6),
    ) {
        let p = build_program(&ops, &seeds);
        let a = run(&p, &[], &cfg());
        let b = run(&p, &[], &cfg());
        prop_assert_eq!(a, b);
    }

    /// A fault armed at an instance that is never reached leaves the run
    /// identical to golden (classified Masked).
    #[test]
    fn unfired_fault_is_masked(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..10),
        seeds in proptest::collection::vec(any::<i64>(), 2..4),
        bit in 0u8..64,
    ) {
        let p = build_program(&ops, &seeds);
        let golden = run(&p, &[], &cfg());
        prop_assume!(golden.status.is_clean());
        let f = FaultSpec { pc: 0, slot: OperandSlot::Use(0), bit, instance: u64::MAX };
        let faulty = run_with_fault(&p, &[], &cfg(), &f);
        prop_assert_eq!(classify(&golden, &faulty), Outcome::Masked);
    }

    /// Injecting the same fault twice gives the same outcome (the campaign
    /// relies on reproducible injections).
    #[test]
    fn fault_injection_deterministic(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..15),
        seeds in proptest::collection::vec(any::<i64>(), 2..5),
        pc_pick in any::<u16>(),
        bit in 0u8..64,
        use_def in any::<bool>(),
    ) {
        let p = build_program(&ops, &seeds);
        let golden = run(&p, &[], &cfg());
        prop_assume!(golden.status.is_clean());
        let pc = (pc_pick as usize) % p.len();
        let slot = if use_def { OperandSlot::Def(0) } else { OperandSlot::Use(0) };
        let f = FaultSpec { pc, slot, bit, instance: 0 };
        let a = run_with_fault(&p, &[], &cfg(), &f);
        let b = run_with_fault(&p, &[], &cfg(), &f);
        prop_assert_eq!(classify(&golden, &a), classify(&golden, &b));
    }

    /// Exec counts sum to the reported dynamic instruction count.
    #[test]
    fn exec_counts_sum_to_dyn_instrs(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..20),
        seeds in proptest::collection::vec(any::<i64>(), 2..6),
    ) {
        let p = build_program(&ops, &seeds);
        let r = run(&p, &[], &cfg());
        prop_assert_eq!(r.exec_counts.iter().sum::<u64>(), r.dyn_instrs);
    }

    /// A double flip of the same bit via two separate runs can differ, but a
    /// run where the armed fault targets a branchless program's dead final
    /// register write is always Masked or Sdc, never Crash (no memory ops,
    /// no divisions, no control flow to corrupt).
    #[test]
    fn straightline_int_faults_never_crash(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..15),
        seeds in proptest::collection::vec(any::<i64>(), 2..5),
        pc_pick in any::<u16>(),
        bit in 0u8..64,
    ) {
        let p = build_program(&ops, &seeds);
        let golden = run(&p, &[], &cfg());
        prop_assume!(golden.status.is_clean());
        let pc = (pc_pick as usize) % p.len();
        let f = FaultSpec { pc, slot: OperandSlot::Use(0), bit, instance: 0 };
        let faulty = run_with_fault(&p, &[], &cfg(), &f);
        prop_assert_ne!(classify(&golden, &faulty), Outcome::Crash);
    }

    /// Loop programs terminate within budget and produce identical results
    /// across runs even with a branch-operand fault armed.
    #[test]
    fn loop_with_branch_fault_reproducible(bound in 1i64..50, bit in 0u8..64) {
        let mut asm = Asm::new("loop");
        let (i, one, lim, acc) = (Reg(1), Reg(2), Reg(3), Reg(4));
        asm.li(i, 0);
        asm.li(one, 1);
        asm.li(lim, bound);
        asm.li(acc, 0);
        let top = asm.label();
        asm.bind(top);
        asm.alu(AluOp::Add, acc, acc, i);
        asm.alu(AluOp::Add, i, i, one);
        asm.branch(BranchCond::Lt, i, lim, top);
        asm.out(acc);
        asm.halt();
        let p = asm.finish().expect("resolves");
        let golden = run(&p, &[], &cfg());
        prop_assert!(golden.status.is_clean());
        let f = FaultSpec { pc: 6, slot: OperandSlot::Use(0), bit, instance: 0 };
        let a = run_with_fault(&p, &[], &cfg(), &f);
        let b = run_with_fault(&p, &[], &cfg(), &f);
        prop_assert_eq!(classify(&golden, &a), classify(&golden, &b));
    }
}
