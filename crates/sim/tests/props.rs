//! Property-based tests for simulator determinism and fault-injection
//! invariants, driven by randomly generated straight-line-plus-loop
//! programs from a deterministic inline RNG (no external crates, so the
//! suite builds offline).

use glaive_isa::{AluOp, Asm, BranchCond, Program, Reg};
use glaive_sim::{classify, run, run_with_fault, ExecConfig, FaultSpec, OperandSlot, Outcome};

const CASES: u64 = 256;

/// SplitMix64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// `count` random op recipes (op index + three register picks).
    fn ops(&mut self, count: usize) -> Vec<(u8, u8, u8, u8)> {
        (0..count)
            .map(|_| {
                (
                    self.next() as u8,
                    self.next() as u8,
                    self.next() as u8,
                    self.next() as u8,
                )
            })
            .collect()
    }

    /// `count` random register seed values.
    fn seeds(&mut self, count: usize) -> Vec<i64> {
        (0..count).map(|_| self.next() as i64).collect()
    }
}

/// Builds a small program from a recipe of register-to-register ALU ops,
/// always ending by emitting every register and halting. Division operands
/// are biased away from zero to keep most runs clean.
fn build_program(ops: &[(u8, u8, u8, u8)], seeds: &[i64]) -> Program {
    let mut asm = Asm::new("prop");
    for (i, &s) in seeds.iter().enumerate() {
        // Avoid zero seeds so div/rem rarely trap in the golden run.
        asm.li(Reg(i as u8 + 1), if s == 0 { 1 } else { s });
    }
    let n = seeds.len() as u8;
    for &(op_idx, rd, rs1, rs2) in ops {
        let op = AluOp::ALL[(op_idx as usize) % AluOp::ALL.len()];
        let op = if op.can_trap() { AluOp::Add } else { op };
        asm.alu(op, Reg(1 + rd % n), Reg(1 + rs1 % n), Reg(1 + rs2 % n));
    }
    for i in 0..n {
        asm.out(Reg(1 + i));
    }
    asm.halt();
    asm.finish().expect("labels resolve")
}

fn random_program(rng: &mut Rng, max_ops: u64, max_seeds: u64) -> Program {
    let n_ops = 1 + rng.below(max_ops) as usize;
    let ops = rng.ops(n_ops);
    let n_seeds = 2 + rng.below(max_seeds - 1) as usize;
    let seeds = rng.seeds(n_seeds);
    build_program(&ops, &seeds)
}

fn cfg() -> ExecConfig {
    ExecConfig { max_instrs: 50_000 }
}

/// The simulator is deterministic: same program, same result.
#[test]
fn deterministic() {
    let mut rng = Rng(11);
    for _ in 0..CASES {
        let p = random_program(&mut rng, 19, 5);
        let a = run(&p, &[], &cfg());
        let b = run(&p, &[], &cfg());
        assert_eq!(a, b);
    }
}

/// A fault armed at an instance that is never reached leaves the run
/// identical to golden (classified Masked).
#[test]
fn unfired_fault_is_masked() {
    let mut rng = Rng(12);
    for _ in 0..CASES {
        let p = random_program(&mut rng, 9, 3);
        let bit = rng.below(64) as u8;
        let golden = run(&p, &[], &cfg());
        if !golden.status.is_clean() {
            continue;
        }
        let f = FaultSpec {
            pc: 0,
            slot: OperandSlot::Use(0),
            bit,
            instance: u64::MAX,
        };
        let faulty = run_with_fault(&p, &[], &cfg(), &f);
        assert_eq!(classify(&golden, &faulty), Outcome::Masked);
    }
}

/// Injecting the same fault twice gives the same outcome (the campaign
/// relies on reproducible injections).
#[test]
fn fault_injection_deterministic() {
    let mut rng = Rng(13);
    for _ in 0..CASES {
        let p = random_program(&mut rng, 14, 4);
        let golden = run(&p, &[], &cfg());
        if !golden.status.is_clean() {
            continue;
        }
        let pc = rng.below(p.len() as u64) as usize;
        let slot = if rng.below(2) == 0 {
            OperandSlot::Def(0)
        } else {
            OperandSlot::Use(0)
        };
        let f = FaultSpec {
            pc,
            slot,
            bit: rng.below(64) as u8,
            instance: 0,
        };
        let a = run_with_fault(&p, &[], &cfg(), &f);
        let b = run_with_fault(&p, &[], &cfg(), &f);
        assert_eq!(classify(&golden, &a), classify(&golden, &b));
    }
}

/// Exec counts sum to the reported dynamic instruction count.
#[test]
fn exec_counts_sum_to_dyn_instrs() {
    let mut rng = Rng(14);
    for _ in 0..CASES {
        let p = random_program(&mut rng, 19, 5);
        let r = run(&p, &[], &cfg());
        assert_eq!(r.exec_counts.iter().sum::<u64>(), r.dyn_instrs);
    }
}

/// A double flip of the same bit via two separate runs can differ, but a
/// run where the armed fault targets a branchless program's dead final
/// register write is always Masked or Sdc, never Crash (no memory ops,
/// no divisions, no control flow to corrupt).
#[test]
fn straightline_int_faults_never_crash() {
    let mut rng = Rng(15);
    for _ in 0..CASES {
        let p = random_program(&mut rng, 14, 4);
        let golden = run(&p, &[], &cfg());
        if !golden.status.is_clean() {
            continue;
        }
        let f = FaultSpec {
            pc: rng.below(p.len() as u64) as usize,
            slot: OperandSlot::Use(0),
            bit: rng.below(64) as u8,
            instance: 0,
        };
        let faulty = run_with_fault(&p, &[], &cfg(), &f);
        assert_ne!(classify(&golden, &faulty), Outcome::Crash);
    }
}

/// Loop programs terminate within budget and produce identical results
/// across runs even with a branch-operand fault armed.
#[test]
fn loop_with_branch_fault_reproducible() {
    let mut rng = Rng(16);
    for _ in 0..CASES {
        let bound = 1 + rng.below(49) as i64;
        let bit = rng.below(64) as u8;
        let mut asm = Asm::new("loop");
        let (i, one, lim, acc) = (Reg(1), Reg(2), Reg(3), Reg(4));
        asm.li(i, 0);
        asm.li(one, 1);
        asm.li(lim, bound);
        asm.li(acc, 0);
        let top = asm.label();
        asm.bind(top);
        asm.alu(AluOp::Add, acc, acc, i);
        asm.alu(AluOp::Add, i, i, one);
        asm.branch(BranchCond::Lt, i, lim, top);
        asm.out(acc);
        asm.halt();
        let p = asm.finish().expect("resolves");
        let golden = run(&p, &[], &cfg());
        assert!(golden.status.is_clean());
        let f = FaultSpec {
            pc: 6,
            slot: OperandSlot::Use(0),
            bit,
            instance: 0,
        };
        let a = run_with_fault(&p, &[], &cfg(), &f);
        let b = run_with_fault(&p, &[], &cfg(), &f);
        assert_eq!(classify(&golden, &a), classify(&golden, &b));
    }
}
