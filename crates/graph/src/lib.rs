//! The workspace's single graph currency: a flat, kind-tagged compressed
//! sparse row (CSR) adjacency.
//!
//! Every layer that touches graph structure — bit-level CDFG construction
//! (`glaive-cdfg`), the GraphSAGE kernels (`glaive-gnn`) and the pipeline
//! (`glaive` core) — speaks [`CsrGraph`]: one `offsets` array (`n + 1`
//! entries), one flat `targets` array, and one parallel `kinds` array
//! tagging each retained edge with the union of the dependence kinds
//! ([`EdgeKind`]) that justified it. Row contents are sorted and
//! de-duplicated, so a row is a canonical neighbourhood and two graphs are
//! equal iff their flat arrays are equal.
//!
//! Invariants (upheld by every constructor):
//!
//! - `offsets.len() == node_count + 1`, `offsets[0] == 0`, non-decreasing.
//! - `targets.len() == kinds.len() == offsets[node_count]`.
//! - Within each row `offsets[v]..offsets[v + 1]`, targets are strictly
//!   increasing (sorted, no duplicates); a multi-kind node pair collapses
//!   to one edge whose kind mask ORs the kinds.
//!
//! The layout is what makes the downstream kernels cheap: a node's
//! neighbourhood is one contiguous slice (no pointer chasing, no per-node
//! heap cells), kind-filtered ablation views are a linear scan
//! ([`CsrGraph::filtered`]) instead of a re-run of the program analyses,
//! and row-blocked parallel aggregation can hand each worker a contiguous
//! span of rows.

use std::fmt;

/// The dependence kind that justified an edge of the bit-level CDFG.
///
/// Kinds are stored per edge as a bitmask ([`EdgeKind::bit`]) so an edge
/// justified by several analyses (e.g. both a register def-use and a memory
/// dependence) keeps every tag while appearing once in the adjacency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Intra-instruction source-bit → destination-bit edge.
    Intra,
    /// Inter-instruction register def-use (`D_D`) edge.
    Data,
    /// Control-dependence (`D_C`) edge.
    Control,
    /// Memory-dependence (`D_M`) edge.
    Memory,
}

impl EdgeKind {
    /// All kinds, in mask-bit order.
    pub const ALL: [EdgeKind; 4] = [
        EdgeKind::Intra,
        EdgeKind::Data,
        EdgeKind::Control,
        EdgeKind::Memory,
    ];

    /// The kind's bit in an edge's kind mask.
    pub fn bit(self) -> u8 {
        match self {
            EdgeKind::Intra => 1 << 0,
            EdgeKind::Data => 1 << 1,
            EdgeKind::Control => 1 << 2,
            EdgeKind::Memory => 1 << 3,
        }
    }

    /// Mask selecting every kind.
    pub const ALL_MASK: u8 = 0b1111;

    /// Short name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Intra => "intra",
            EdgeKind::Data => "data",
            EdgeKind::Control => "control",
            EdgeKind::Memory => "memory",
        }
    }
}

/// A borrowed view of CSR adjacency structure (offsets + targets), the
/// argument type of the GNN kernels. Both [`CsrGraph`] and sampled
/// workspaces expose one, so forward/backward code is written once.
#[derive(Clone, Copy)]
pub struct CsrView<'a> {
    offsets: &'a [u32],
    targets: &'a [u32],
}

impl<'a> CsrView<'a> {
    /// Wraps raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty or its last entry disagrees with
    /// `targets.len()`.
    pub fn new(offsets: &'a [u32], targets: &'a [u32]) -> CsrView<'a> {
        assert!(!offsets.is_empty(), "offsets needs a leading 0");
        assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            targets.len(),
            "offsets/targets disagree"
        );
        CsrView { offsets, targets }
    }

    /// Number of nodes (rows).
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total retained edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Node `v`'s neighbourhood as one contiguous slice.
    pub fn neighbors(&self, v: usize) -> &'a [u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The flat target array (all rows back to back).
    pub fn targets(&self) -> &'a [u32] {
        self.targets
    }

    /// The row-offset array (`node_count + 1` entries).
    pub fn offsets(&self) -> &'a [u32] {
        self.offsets
    }
}

/// A flat, kind-tagged CSR adjacency — see the crate docs for invariants.
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    kinds: Vec<u8>,
}

impl CsrGraph {
    /// An edgeless graph over `n` nodes.
    pub fn empty(n: usize) -> CsrGraph {
        CsrGraph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            kinds: Vec::new(),
        }
    }

    /// Builds a graph from `(row, target, kind)` edges. Duplicate
    /// `(row, target)` pairs collapse to one edge whose kind mask is the
    /// union of their kinds.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32, EdgeKind)>) -> CsrGraph {
        let tagged: Vec<(u32, u32, u8)> = edges
            .into_iter()
            .map(|(row, target, kind)| (row, target, kind.bit()))
            .collect();
        CsrGraph::from_tagged(n, tagged)
    }

    /// [`CsrGraph::from_edges`] over pre-computed kind masks; consumes the
    /// scratch vector (it is sorted in place).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_tagged(n: usize, mut edges: Vec<(u32, u32, u8)>) -> CsrGraph {
        for &(row, target, _) in &edges {
            assert!((row as usize) < n, "edge row {row} out of range 0..{n}");
            assert!(
                (target as usize) < n,
                "edge target {target} out of range 0..{n}"
            );
        }
        edges.sort_unstable_by_key(|&(row, target, _)| (row, target));

        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(edges.len());
        let mut kinds = Vec::with_capacity(edges.len());
        offsets.push(0);
        let mut row = 0u32;
        for (r, t, k) in edges {
            while row < r {
                offsets.push(targets.len() as u32);
                row += 1;
            }
            // Merge duplicates of the same (row, target) pair.
            if targets.len() > offsets[row as usize] as usize
                && *targets.last().expect("non-empty row") == t
            {
                *kinds.last_mut().expect("parallel to targets") |= k;
            } else {
                targets.push(t);
                kinds.push(k);
            }
        }
        while (row as usize) < n {
            offsets.push(targets.len() as u32);
            row += 1;
        }
        CsrGraph {
            offsets,
            targets,
            kinds,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total retained edges (after duplicate collapse).
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Node `v`'s neighbourhood, sorted and duplicate-free.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Per-edge kind masks of node `v`'s row, parallel to
    /// [`CsrGraph::neighbors`].
    pub fn kinds(&self, v: usize) -> &[u8] {
        &self.kinds[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Node `v`'s degree.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The largest row length in the graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The flat target array.
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// The row-offset array (`node_count + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// A structure-only view for the GNN kernels.
    pub fn view(&self) -> CsrView<'_> {
        CsrView {
            offsets: &self.offsets,
            targets: &self.targets,
        }
    }

    /// The subgraph keeping only edges whose kind mask intersects `mask`
    /// (e.g. `EdgeKind::Data.bit() | EdgeKind::Intra.bit()`): the D_D/D_C/
    /// D_M ablations as one linear scan, no re-analysis or rebuild of the
    /// source graph.
    pub fn filtered(&self, mask: u8) -> CsrGraph {
        let mut offsets = Vec::with_capacity(self.offsets.len());
        let mut targets = Vec::new();
        let mut kinds = Vec::new();
        offsets.push(0);
        for v in 0..self.node_count() {
            for (&t, &k) in self.neighbors(v).iter().zip(self.kinds(v)) {
                if k & mask != 0 {
                    targets.push(t);
                    kinds.push(k & mask);
                }
            }
            offsets.push(targets.len() as u32);
        }
        CsrGraph {
            offsets,
            targets,
            kinds,
        }
    }

    /// The graph with every edge reversed (row `v` of the result lists the
    /// nodes whose rows contain `v`), kinds carried along.
    pub fn reversed(&self) -> CsrGraph {
        let mut edges = Vec::with_capacity(self.edge_count());
        for v in 0..self.node_count() {
            for (&t, &k) in self.neighbors(v).iter().zip(self.kinds(v)) {
                edges.push((t, v as u32, k));
            }
        }
        CsrGraph::from_tagged(self.node_count(), edges)
    }

    /// The symmetric closure (`self` ∪ [`CsrGraph::reversed`]): row `v`
    /// holds `neighbors(v) ∪ {u : v ∈ neighbors(u)}` — the vanilla
    /// all-neighbour GraphSAGE ablation's aggregation neighbourhood.
    pub fn symmetrised(&self) -> CsrGraph {
        let mut edges = Vec::with_capacity(2 * self.edge_count());
        for v in 0..self.node_count() {
            for (&t, &k) in self.neighbors(v).iter().zip(self.kinds(v)) {
                edges.push((v as u32, t, k));
                edges.push((t, v as u32, k));
            }
        }
        CsrGraph::from_tagged(self.node_count(), edges)
    }

    /// The disjoint union of several graphs: part `i`'s nodes are renumbered
    /// by the sum of the preceding parts' node counts, rows and kind masks
    /// are carried over verbatim, and no edge crosses a part boundary. This
    /// is the multi-graph batching layout — a forward pass over the union
    /// processes every part at once while each row's neighbourhood (and
    /// therefore its result) is identical to the part's own.
    ///
    /// Runs in `O(total nodes + total edges)` with no sorting: each part's
    /// rows are already canonical and shifting preserves order.
    ///
    /// # Panics
    ///
    /// Panics if the summed node or edge count exceeds `u32::MAX` — the
    /// CSR indices could not represent the union, and silently wrapping
    /// the bases would return a corrupt graph. Callers batching unbounded
    /// inputs must split them first (as `glaive-serve` does).
    pub fn disjoint_union(parts: &[&CsrGraph]) -> CsrGraph {
        let nodes: usize = parts.iter().map(|g| g.node_count()).sum();
        let edges: usize = parts.iter().map(|g| g.edge_count()).sum();
        let mut offsets = Vec::with_capacity(nodes + 1);
        let mut targets = Vec::with_capacity(edges);
        let mut kinds = Vec::with_capacity(edges);
        offsets.push(0);
        let mut node_base = 0u32;
        let mut edge_base = 0u32;
        for g in parts {
            offsets.extend(g.offsets[1..].iter().map(|&o| edge_base + o));
            targets.extend(g.targets.iter().map(|&t| node_base + t));
            kinds.extend_from_slice(&g.kinds);
            node_base = node_base
                .checked_add(g.node_count() as u32)
                .expect("disjoint union node count overflows u32 CSR indices");
            edge_base = edge_base
                .checked_add(g.edge_count() as u32)
                .expect("disjoint union edge count overflows u32 CSR indices");
        }
        CsrGraph {
            offsets,
            targets,
            kinds,
        }
    }

    /// Per-kind retained-edge counts (after duplicate collapse a multi-kind
    /// edge counts towards each of its kinds).
    pub fn kind_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for &k in &self.kinds {
            for (i, kind) in EdgeKind::ALL.iter().enumerate() {
                if k & kind.bit() != 0 {
                    counts[i] += 1;
                }
            }
        }
        counts
    }

    /// Checks every CSR invariant; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.offsets.first() != Some(&0) {
            return Err("offsets must start at 0".to_string());
        }
        if self.targets.len() != self.kinds.len() {
            return Err("targets/kinds length mismatch".to_string());
        }
        if *self.offsets.last().expect("non-empty") as usize != self.targets.len() {
            return Err("final offset disagrees with edge count".to_string());
        }
        let n = self.node_count() as u32;
        for v in 0..self.node_count() {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets decrease at row {v}"));
            }
            let row = self.neighbors(v);
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {v} not strictly increasing"));
                }
            }
            if row.iter().any(|&t| t >= n) {
                return Err(format!("row {v} has an out-of-range target"));
            }
        }
        if self.kinds.iter().any(|&k| k == 0 || k > EdgeKind::ALL_MASK) {
            return Err("edge with an empty or invalid kind mask".to_string());
        }
        Ok(())
    }
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrGraph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 → {1, 2} → 3, with 0 → 3 justified twice (data + memory).
        CsrGraph::from_edges(
            4,
            [
                (0, 1, EdgeKind::Data),
                (0, 2, EdgeKind::Control),
                (1, 3, EdgeKind::Data),
                (2, 3, EdgeKind::Data),
                (0, 3, EdgeKind::Data),
                (0, 3, EdgeKind::Memory),
            ],
        )
    }

    #[test]
    fn construction_sorts_rows_and_merges_duplicate_pairs() {
        let g = diamond();
        g.check_invariants().expect("valid");
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5, "duplicate (0,3) collapsed");
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.max_degree(), 3);
        // The merged edge keeps both kinds.
        assert_eq!(g.kinds(0)[2], EdgeKind::Data.bit() | EdgeKind::Memory.bit());
    }

    #[test]
    fn empty_graphs_and_isolated_tail_nodes_work() {
        let g = CsrGraph::empty(3);
        g.check_invariants().expect("valid");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.neighbors(2), &[] as &[u32]);

        // Last rows empty: the offset tail must still be filled in.
        let g = CsrGraph::from_edges(5, [(0, 1, EdgeKind::Data)]);
        g.check_invariants().expect("valid");
        assert_eq!(g.neighbors(4), &[] as &[u32]);
    }

    #[test]
    fn filtered_keeps_only_matching_kinds() {
        let g = diamond();
        let data = g.filtered(EdgeKind::Data.bit());
        data.check_invariants().expect("valid");
        assert_eq!(data.neighbors(0), &[1, 3]);
        assert_eq!(data.neighbors(2), &[3]);
        let control = g.filtered(EdgeKind::Control.bit());
        assert_eq!(control.edge_count(), 1);
        assert_eq!(control.neighbors(0), &[2]);
        // The multi-kind edge survives a memory-only filter with the mask
        // narrowed to the selected kind.
        let memory = g.filtered(EdgeKind::Memory.bit());
        assert_eq!(memory.neighbors(0), &[3]);
        assert_eq!(memory.kinds(0), &[EdgeKind::Memory.bit()]);
        // Filtering by everything is the identity.
        assert_eq!(g.filtered(EdgeKind::ALL_MASK), g);
    }

    #[test]
    fn reversed_inverts_every_edge() {
        let g = diamond();
        let r = g.reversed();
        r.check_invariants().expect("valid");
        assert_eq!(r.edge_count(), g.edge_count());
        for v in 0..g.node_count() {
            for &t in g.neighbors(v) {
                assert!(r.neighbors(t as usize).contains(&(v as u32)));
            }
        }
        assert_eq!(r.reversed(), g, "reversal is an involution");
    }

    #[test]
    fn symmetrised_is_a_superset_and_symmetric() {
        let g = diamond();
        let s = g.symmetrised();
        s.check_invariants().expect("valid");
        for v in 0..g.node_count() {
            for &t in g.neighbors(v) {
                assert!(s.neighbors(v).contains(&t));
            }
            for &u in s.neighbors(v) {
                assert!(
                    s.neighbors(u as usize).contains(&(v as u32)),
                    "asymmetric {v} ↔ {u}"
                );
            }
        }
    }

    #[test]
    fn kind_counts_count_multi_kind_edges_once_per_kind() {
        let g = diamond();
        let [intra, data, control, memory] = g.kind_counts();
        assert_eq!(intra, 0);
        assert_eq!(data, 4);
        assert_eq!(control, 1);
        assert_eq!(memory, 1);
    }

    #[test]
    fn views_expose_the_same_structure() {
        let g = diamond();
        let v = g.view();
        assert_eq!(v.node_count(), g.node_count());
        assert_eq!(v.edge_count(), g.edge_count());
        for i in 0..g.node_count() {
            assert_eq!(v.neighbors(i), g.neighbors(i));
        }
        assert_eq!(v.offsets(), g.offsets());
        assert_eq!(v.targets(), g.targets());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edges_are_rejected() {
        CsrGraph::from_edges(2, [(0, 2, EdgeKind::Data)]);
    }

    #[test]
    fn disjoint_union_shifts_parts_without_cross_edges() {
        let a = diamond();
        let b = CsrGraph::from_edges(2, [(1, 0, EdgeKind::Memory)]);
        let c = CsrGraph::empty(3);
        let u = CsrGraph::disjoint_union(&[&a, &b, &c]);
        u.check_invariants().expect("valid");
        assert_eq!(u.node_count(), 9);
        assert_eq!(u.edge_count(), a.edge_count() + 1);
        // Part rows are verbatim, shifted by the preceding node counts.
        for v in 0..a.node_count() {
            assert_eq!(u.neighbors(v), a.neighbors(v));
            assert_eq!(u.kinds(v), a.kinds(v));
        }
        assert_eq!(u.neighbors(5), &[4]);
        assert_eq!(u.kinds(5), &[EdgeKind::Memory.bit()]);
        for v in 6..9 {
            assert_eq!(u.neighbors(v), &[] as &[u32]);
        }
        // A union of one part is the part itself; of none, the empty graph.
        assert_eq!(CsrGraph::disjoint_union(&[&a]), a);
        assert_eq!(CsrGraph::disjoint_union(&[]), CsrGraph::empty(0));
    }
}
