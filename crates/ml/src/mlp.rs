use glaive_nn::{
    relu, relu_backward, softmax_cross_entropy, softmax_rows, Adam, DetRng, Linear, Matrix,
};

/// Hyperparameters for [`MlpClassifier`], defaulting to sklearn's
/// `MLPClassifier` defaults as used by the paper: one hidden layer of 100
/// ReLU units, Adam with lr 1e-3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Full-batch training epochs.
    pub epochs: usize,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 100,
            lr: 1e-3,
            epochs: 200,
            seed: 1,
        }
    }
}

/// The MLP-BIT baseline: a two-layer perceptron classifying bit-level nodes
/// from their features alone, with no graph neighbourhood information.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    l1: Linear,
    l2: Linear,
    config: MlpConfig,
}

/// Rejected classifier shape: a dimension below its minimum legal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpConfigError {
    /// The offending field.
    pub field: &'static str,
    /// The smallest value the field accepts.
    pub min: usize,
}

impl std::fmt::Display for MlpConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid MLP config: `{}` must be at least {}",
            self.field, self.min
        )
    }
}

impl std::error::Error for MlpConfigError {}

impl MlpClassifier {
    /// Creates a classifier mapping `in_dim` features to `classes` logits.
    ///
    /// # Errors
    ///
    /// [`MlpConfigError`] if `in_dim` or the hidden width is zero, or
    /// `classes` is below two.
    pub fn try_new(
        in_dim: usize,
        classes: usize,
        config: &MlpConfig,
    ) -> Result<MlpClassifier, MlpConfigError> {
        let floors = [
            ("in_dim", in_dim, 1),
            ("classes", classes, 2),
            ("hidden", config.hidden, 1),
        ];
        if let Some(&(field, _, min)) = floors.iter().find(|&&(_, value, min)| value < min) {
            return Err(MlpConfigError { field, min });
        }
        let mut rng = DetRng::new(config.seed);
        Ok(MlpClassifier {
            l1: Linear::glorot(in_dim, config.hidden, &mut rng),
            l2: Linear::glorot(config.hidden, classes, &mut rng),
            config: *config,
        })
    }

    /// The configuration the classifier was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Trains full-batch on `(x, labels)`; rows where `mask` is `false` are
    /// excluded from the loss. Returns the per-epoch losses.
    pub fn train(&mut self, x: &Matrix, labels: &[usize], mask: Option<&[bool]>) -> Vec<f32> {
        assert_eq!(x.rows(), labels.len(), "one label per row");
        let mut o1 = Adam::new(self.config.lr, self.l1.param_count());
        let mut o2 = Adam::new(self.config.lr, self.l2.param_count());
        let mut losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            let pre1 = self.l1.forward(x);
            let h1 = relu(&pre1);
            let logits = self.l2.forward(&h1);
            let (loss, grad) = softmax_cross_entropy(&logits, labels, mask);
            let (dh1, g2) = self.l2.backward(&h1, &grad);
            let dpre1 = relu_backward(&pre1, &dh1);
            let (_, g1) = self.l1.backward(x, &dpre1);
            self.l1.apply(&mut o1, &g1);
            self.l2.apply(&mut o2, &g2);
            losses.push(loss);
        }
        losses
    }

    /// Class probabilities per row.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        let h1 = relu(&self.l1.forward(x));
        softmax_rows(&self.l2.forward(&h1))
    }

    /// Hard label predictions.
    pub fn predict_labels(&self, x: &Matrix) -> Vec<usize> {
        self.predict_proba(x).argmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = DetRng::new(seed);
        let centers = [(0.0f32, 0.0f32), (3.0, 3.0), (0.0, 3.0)];
        let mut x = Matrix::zeros(3 * n_per, 2);
        let mut y = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..n_per {
                let r = c * n_per + i;
                x[(r, 0)] = cx + rng.normal() * 0.4;
                x[(r, 1)] = cy + rng.normal() * 0.4;
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn separates_three_blobs() {
        let (x, y) = blobs(30, 5);
        let mut mlp = MlpClassifier::try_new(
            2,
            3,
            &MlpConfig {
                hidden: 32,
                lr: 0.02,
                epochs: 150,
                seed: 2,
            },
        )
        .expect("valid model config");
        let losses = mlp.train(&x, &y, None);
        assert!(losses.last().expect("nonempty") < &0.2);
        let pred = mlp.predict_labels(&x);
        let acc = pred.iter().zip(&y).filter(|(p, l)| p == l).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn generalises_to_fresh_samples() {
        let (xt, yt) = blobs(40, 5);
        let (xv, yv) = blobs(20, 77);
        let mut mlp = MlpClassifier::try_new(
            2,
            3,
            &MlpConfig {
                hidden: 32,
                lr: 0.02,
                epochs: 150,
                seed: 2,
            },
        )
        .expect("valid model config");
        mlp.train(&xt, &yt, None);
        let pred = mlp.predict_labels(&xv);
        let acc = pred.iter().zip(&yv).filter(|(p, l)| p == l).count() as f64 / yv.len() as f64;
        assert!(acc > 0.9, "validation accuracy {acc}");
    }

    #[test]
    fn masked_training_ignores_rows() {
        let (x, mut y) = blobs(20, 9);
        // Corrupt the labels of masked-out rows; training must not care.
        let mask: Vec<bool> = (0..y.len()).map(|i| i % 2 == 0).collect();
        for (i, label) in y.iter_mut().enumerate() {
            if !mask[i] {
                *label = (*label + 1) % 3;
            }
        }
        let mut mlp = MlpClassifier::try_new(
            2,
            3,
            &MlpConfig {
                hidden: 32,
                lr: 0.02,
                epochs: 120,
                seed: 2,
            },
        )
        .expect("valid model config");
        mlp.train(&x, &y, Some(&mask));
        let pred = mlp.predict_labels(&x);
        let correct = pred
            .iter()
            .zip(&y)
            .zip(&mask)
            .filter(|((p, l), &m)| m && p == l)
            .count();
        let total = mask.iter().filter(|&&m| m).count();
        assert!(correct as f64 / total as f64 > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(10, 1);
        let cfg = MlpConfig {
            hidden: 8,
            lr: 0.01,
            epochs: 20,
            seed: 42,
        };
        let mut a = MlpClassifier::try_new(2, 3, &cfg).expect("valid model config");
        let mut b = MlpClassifier::try_new(2, 3, &cfg).expect("valid model config");
        assert_eq!(a.train(&x, &y, None), b.train(&x, &y, None));
    }
}
