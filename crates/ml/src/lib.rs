//! Baseline ML estimators the paper compares GLAIVE against (§IV):
//!
//! * [`MlpClassifier`] — **MLP-BIT**: a multi-layer-perceptron classifier on
//!   the *same bit-level node features* as GLAIVE, but without any graph
//!   structure (sklearn `MLPClassifier` defaults: one hidden layer of 100
//!   ReLU units, Adam, lr 1e-3).
//! * [`RandomForest`] — **RF-INST**: a bagged random-forest regressor on
//!   *instruction-level* features, regressing the ⟨crash, sdc, masked⟩
//!   tuple directly (sklearn `RandomForestRegressor`-style: 100 trees,
//!   bootstrap, √d feature subsampling, variance-reduction splits).
//! * [`SvrRff`] — **SVM-INST**: an RBF-kernel support-vector regressor
//!   approximated with random Fourier features and trained by SGD on the
//!   ε-insensitive loss (documented substitution for sklearn's exact dual
//!   SVR; same model class, see DESIGN.md §1).
//!
//! # Example
//!
//! ```
//! use glaive_nn::Matrix;
//! use glaive_ml::{MlpClassifier, MlpConfig};
//!
//! // Two linearly separable blobs.
//! let x = Matrix::from_vec(4, 2, vec![0.0, 0.1, 0.1, 0.0, 1.0, 0.9, 0.9, 1.0]);
//! let labels = vec![0usize, 0, 1, 1];
//! let config = MlpConfig { hidden: 16, epochs: 200, ..MlpConfig::default() };
//! let mut mlp = MlpClassifier::try_new(2, 2, &config).expect("valid model config");
//! mlp.train(&x, &labels, None);
//! assert_eq!(mlp.predict_labels(&x), labels);
//! ```

mod forest;
mod mlp;
mod svr;

pub use forest::{ForestConfig, RandomForest};
pub use mlp::{MlpClassifier, MlpConfig, MlpConfigError};
pub use svr::{SvrConfig, SvrRff};
