use glaive_nn::{DetRng, Matrix};

/// Hyperparameters for [`RandomForest`], following sklearn's
/// `RandomForestRegressor` defaults where practical: 100 trees, bootstrap
/// sampling, variance-reduction splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Features examined per split (0 = √d).
    pub max_features: usize,
    /// Bootstrap/feature-sampling seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            trees: 100,
            max_depth: 12,
            min_samples_split: 2,
            max_features: 0,
            seed: 1,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: Vec<f32>,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict_into(&self, row: &[f32], out: &mut [f32]) {
        let mut id = 0;
        loop {
            match &self.nodes[id] {
                Node::Leaf { value } => {
                    for (o, v) in out.iter_mut().zip(value) {
                        *o += v;
                    }
                    return;
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// The RF-INST baseline: a bagged random forest regressing multi-output
/// targets (the ⟨crash, sdc, masked⟩ tuple) from instruction-level features.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<Tree>,
    out_dim: usize,
    config: ForestConfig,
}

impl RandomForest {
    /// Fits a forest on `x` (`n × d`) against targets `y` (`n × k`).
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` disagree on row count or are empty.
    pub fn fit(x: &Matrix, y: &Matrix, config: &ForestConfig) -> RandomForest {
        assert_eq!(x.rows(), y.rows(), "sample count mismatch");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        assert!(config.trees >= 1, "need at least one tree");
        let mut rng = DetRng::new(config.seed);
        let max_features = if config.max_features == 0 {
            (x.cols() as f64).sqrt().ceil() as usize
        } else {
            config.max_features.min(x.cols())
        };
        let trees = (0..config.trees)
            .map(|_| {
                // Bootstrap sample.
                let idx: Vec<usize> = (0..x.rows()).map(|_| rng.next_below(x.rows())).collect();
                let mut builder = TreeBuilder {
                    x,
                    y,
                    config,
                    max_features,
                    rng: DetRng::new(rng.next_u64()),
                    nodes: Vec::new(),
                };
                builder.build(idx, 0);
                Tree {
                    nodes: builder.nodes,
                }
            })
            .collect();
        RandomForest {
            trees,
            out_dim: y.cols(),
            config: *config,
        }
    }

    /// The configuration the forest was fitted with.
    pub fn config(&self) -> &ForestConfig {
        &self.config
    }

    /// Predicts targets for every row of `x` (mean over trees).
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.out_dim);
        for r in 0..x.rows() {
            let row = x.row(r);
            let acc = out.row_mut(r);
            for tree in &self.trees {
                tree.predict_into(row, acc);
            }
            for v in acc.iter_mut() {
                *v /= self.trees.len() as f32;
            }
        }
        out
    }
}

struct TreeBuilder<'a> {
    x: &'a Matrix,
    y: &'a Matrix,
    config: &'a ForestConfig,
    max_features: usize,
    rng: DetRng,
    nodes: Vec<Node>,
}

impl TreeBuilder<'_> {
    /// Builds the subtree over `samples`, returning its node id.
    fn build(&mut self, samples: Vec<usize>, depth: usize) -> usize {
        let k = self.y.cols();
        let mean = self.mean(&samples);
        if depth >= self.config.max_depth
            || samples.len() < self.config.min_samples_split
            || self.variance_sum(&samples, &mean) < 1e-12
        {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf { value: mean });
            return id;
        }

        // Choose the best (feature, threshold) among a random feature subset.
        let mut features: Vec<usize> = (0..self.x.cols()).collect();
        self.rng.shuffle(&mut features);
        features.truncate(self.max_features);
        let parent_score = self.variance_sum(&samples, &mean) * samples.len() as f32;
        let mut best: Option<(usize, f32, f32)> = None; // (feature, thr, score)
        for &f in &features {
            let mut vals: Vec<f32> = samples.iter().map(|&i| self.x[(i, f)]).collect();
            vals.sort_by(f32::total_cmp);
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // Candidate thresholds: midpoints, capped to 16 quantiles.
            let step = (vals.len() - 1).div_ceil(16).max(1);
            for w in (0..vals.len() - 1).step_by(step) {
                let thr = (vals[w] + vals[w + 1]) / 2.0;
                let (l, r): (Vec<usize>, Vec<usize>) =
                    samples.iter().partition(|&&i| self.x[(i, f)] <= thr);
                if l.is_empty() || r.is_empty() {
                    continue;
                }
                let lm = self.mean(&l);
                let rm = self.mean(&r);
                let score = self.variance_sum(&l, &lm) * l.len() as f32
                    + self.variance_sum(&r, &rm) * r.len() as f32;
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((f, thr, score));
                }
            }
        }

        match best {
            Some((feature, threshold, score)) if score < parent_score - 1e-9 => {
                let (l, r): (Vec<usize>, Vec<usize>) = samples
                    .iter()
                    .partition(|&&i| self.x[(i, feature)] <= threshold);
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    value: vec![0.0; k],
                }); // placeholder
                let left = self.build(l, depth + 1);
                let right = self.build(r, depth + 1);
                self.nodes[id] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                id
            }
            _ => {
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean });
                id
            }
        }
    }

    fn mean(&self, samples: &[usize]) -> Vec<f32> {
        let k = self.y.cols();
        let mut m = vec![0.0f32; k];
        for &i in samples {
            for (a, &b) in m.iter_mut().zip(self.y.row(i)) {
                *a += b;
            }
        }
        for a in &mut m {
            *a /= samples.len() as f32;
        }
        m
    }

    fn variance_sum(&self, samples: &[usize], mean: &[f32]) -> f32 {
        let mut v = 0.0;
        for &i in samples {
            for (&a, &m) in self.y.row(i).iter().zip(mean) {
                v += (a - m) * (a - m);
            }
        }
        v / samples.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(trees: usize) -> ForestConfig {
        ForestConfig {
            trees,
            max_depth: 8,
            min_samples_split: 2,
            max_features: 0,
            seed: 7,
        }
    }

    /// y = [x0 > 0.5, 1 - (x0 > 0.5)] — a step function a tree nails.
    #[test]
    fn fits_step_function() {
        let n = 200;
        let mut rng = DetRng::new(3);
        let x = Matrix::from_fn(n, 3, |_, _| rng.uniform(0.0, 1.0));
        let y = Matrix::from_fn(n, 2, |r, c| {
            let hi = x[(r, 0)] > 0.5;
            if (c == 0) == hi {
                1.0
            } else {
                0.0
            }
        });
        let forest = RandomForest::fit(&x, &y, &config(20));
        let pred = forest.predict(&x);
        let mut err = 0.0;
        for r in 0..n {
            err += (pred[(r, 0)] - y[(r, 0)]).abs();
        }
        let mean_err = err / n as f32;
        assert!(mean_err < 0.1, "mean error {mean_err}");
    }

    /// One-hot features (like instruction opcodes) map to group means.
    #[test]
    fn one_hot_features_predict_group_means() {
        // Three "opcodes", targets clustered per opcode.
        let n = 90;
        let x = Matrix::from_fn(n, 3, |r, c| if r % 3 == c { 1.0 } else { 0.0 });
        let y = Matrix::from_fn(n, 1, |r, _| match r % 3 {
            0 => 0.1,
            1 => 0.5,
            _ => 0.9,
        });
        let forest = RandomForest::fit(&x, &y, &config(30));
        let probe = Matrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        let pred = forest.predict(&probe);
        assert!((pred[(0, 0)] - 0.1).abs() < 0.05);
        assert!((pred[(1, 0)] - 0.5).abs() < 0.05);
        assert!((pred[(2, 0)] - 0.9).abs() < 0.05);
    }

    #[test]
    fn multi_output_components_track_targets() {
        let n = 120;
        let mut rng = DetRng::new(5);
        let x = Matrix::from_fn(n, 2, |_, _| rng.uniform(0.0, 1.0));
        // Components sum to 1, like vulnerability tuples.
        let y = Matrix::from_fn(n, 3, |r, c| {
            let a = x[(r, 0)].clamp(0.0, 1.0);
            let b = (1.0 - a) * x[(r, 1)].clamp(0.0, 1.0);
            match c {
                0 => a,
                1 => b,
                _ => 1.0 - a - b,
            }
        });
        let forest = RandomForest::fit(&x, &y, &config(30));
        let pred = forest.predict(&x);
        for r in 0..n {
            let s: f32 = pred.row(r).iter().sum();
            assert!((s - 1.0).abs() < 0.1, "row {r} sums to {s}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let x = Matrix::from_fn(50, 2, |r, c| ((r * 7 + c * 3) % 10) as f32);
        let y = Matrix::from_fn(50, 1, |r, _| (r % 5) as f32);
        let a = RandomForest::fit(&x, &y, &config(10)).predict(&x);
        let b = RandomForest::fit(&x, &y, &config(10)).predict(&x);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let x = Matrix::from_fn(20, 2, |r, c| (r + c) as f32);
        let y = Matrix::from_fn(20, 1, |_, _| 0.7);
        let forest = RandomForest::fit(&x, &y, &config(5));
        let pred = forest.predict(&x);
        assert!(pred.data().iter().all(|&p| (p - 0.7).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        let x = Matrix::zeros(0, 2);
        let y = Matrix::zeros(0, 1);
        RandomForest::fit(&x, &y, &config(1));
    }
}
