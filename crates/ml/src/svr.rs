use glaive_nn::{DetRng, Matrix, Sgd};

/// Hyperparameters for [`SvrRff`], mirroring sklearn's `SVR` defaults
/// (`C = 1`, `ε = 0.1`, RBF kernel with `γ = 1/(d·var)` "scale") with the
/// random-Fourier-feature approximation dimension added.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvrConfig {
    /// Number of random Fourier features approximating the RBF kernel.
    pub rff_dim: usize,
    /// RBF bandwidth (0 = sklearn's "scale": `1/(d·var(x))`).
    pub gamma: f32,
    /// Inverse regularisation strength.
    pub c: f32,
    /// ε-insensitive tube half-width.
    pub epsilon: f32,
    /// SGD learning rate.
    pub lr: f32,
    /// Training epochs over the dataset.
    pub epochs: usize,
    /// RFF/shuffling seed.
    pub seed: u64,
}

impl Default for SvrConfig {
    fn default() -> Self {
        SvrConfig {
            rff_dim: 128,
            gamma: 0.0,
            c: 1.0,
            epsilon: 0.1,
            lr: 0.01,
            epochs: 60,
            seed: 1,
        }
    }
}

/// The SVM-INST baseline: multi-output RBF support-vector regression via
/// random Fourier features trained with primal SGD on the ε-insensitive
/// loss.
#[derive(Debug, Clone)]
pub struct SvrRff {
    /// RFF projection `ω` (`d × rff_dim`).
    omega: Matrix,
    /// RFF phases (`rff_dim`).
    phase: Vec<f32>,
    /// Linear weights per output (`rff_dim × k`).
    w: Matrix,
    /// Bias per output.
    b: Vec<f32>,
    scale: f32,
    config: SvrConfig,
}

impl SvrRff {
    /// Fits the regressor on `x` (`n × d`) against targets `y` (`n × k`).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or the dataset is empty.
    pub fn fit(x: &Matrix, y: &Matrix, config: &SvrConfig) -> SvrRff {
        assert_eq!(x.rows(), y.rows(), "sample count mismatch");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        let d = x.cols();
        let k = y.cols();
        let mut rng = DetRng::new(config.seed);

        // γ "scale" default: 1 / (d · var(x)).
        let gamma = if config.gamma > 0.0 {
            config.gamma
        } else {
            let n = (x.rows() * x.cols()) as f32;
            let mean: f32 = x.data().iter().sum::<f32>() / n;
            let var: f32 = x
                .data()
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>()
                / n;
            1.0 / (d as f32 * var.max(1e-6))
        };

        // RFF: φ(x) = √(2/D) · cos(x·ω + phase), ω ~ N(0, 2γ).
        let std = (2.0 * gamma).sqrt();
        let omega = Matrix::from_fn(d, config.rff_dim, |_, _| rng.normal() * std);
        let phase: Vec<f32> = (0..config.rff_dim)
            .map(|_| rng.uniform(0.0, 2.0 * std::f32::consts::PI))
            .collect();
        let scale = (2.0 / config.rff_dim as f32).sqrt();

        let mut model = SvrRff {
            omega,
            phase,
            w: Matrix::zeros(config.rff_dim, k),
            b: vec![0.0; k],
            scale,
            config: *config,
        };

        let phi = model.features(x);
        let sgd = Sgd::new(config.lr);
        let lambda = 1.0 / (config.c * x.rows() as f32);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let row = phi.row(i);
                // Per-output ε-insensitive subgradient.
                let mut gw = vec![0.0f32; model.w.rows() * k];
                let mut gb = vec![0.0f32; k];
                for out in 0..k {
                    let pred: f32 = row
                        .iter()
                        .enumerate()
                        .map(|(j, &p)| p * model.w[(j, out)])
                        .sum::<f32>()
                        + model.b[out];
                    let err = pred - y[(i, out)];
                    let sign = if err > config.epsilon {
                        1.0
                    } else if err < -config.epsilon {
                        -1.0
                    } else {
                        0.0
                    };
                    if sign != 0.0 {
                        for (j, &p) in row.iter().enumerate() {
                            gw[j * k + out] += sign * p;
                        }
                        gb[out] += sign;
                    }
                    // L2 regularisation on the weights.
                    for j in 0..model.w.rows() {
                        gw[j * k + out] += lambda * model.w[(j, out)];
                    }
                }
                sgd.step(model.w.data_mut(), &gw);
                sgd.step(&mut model.b, &gb);
            }
        }
        model
    }

    /// The configuration the regressor was fitted with.
    pub fn config(&self) -> &SvrConfig {
        &self.config
    }

    /// The random Fourier feature map `φ(x)`.
    fn features(&self, x: &Matrix) -> Matrix {
        let mut phi = x.matmul(&self.omega);
        for r in 0..phi.rows() {
            for (v, &p) in phi.row_mut(r).iter_mut().zip(&self.phase) {
                *v = (*v + p).cos() * self.scale;
            }
        }
        phi
    }

    /// Predicts targets for every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let phi = self.features(x);
        let mut out = phi.matmul(&self.w);
        for r in 0..out.rows() {
            for (v, &b) in out.row_mut(r).iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SvrConfig {
        SvrConfig {
            rff_dim: 64,
            epochs: 120,
            lr: 0.02,
            ..SvrConfig::default()
        }
    }

    #[test]
    fn fits_smooth_nonlinear_function() {
        let n = 150;
        let mut rng = DetRng::new(2);
        let x = Matrix::from_fn(n, 1, |_, _| rng.uniform(-2.0, 2.0));
        let y = Matrix::from_fn(n, 1, |r, _| (x[(r, 0)]).sin());
        let svr = SvrRff::fit(
            &x,
            &y,
            &SvrConfig {
                gamma: 1.0,
                ..config()
            },
        );
        let pred = svr.predict(&x);
        let mae: f32 = (0..n)
            .map(|r| (pred[(r, 0)] - y[(r, 0)]).abs())
            .sum::<f32>()
            / n as f32;
        assert!(mae < 0.2, "MAE {mae}");
    }

    #[test]
    fn one_hot_groups_regress_to_means_within_tube() {
        let n = 90;
        let x = Matrix::from_fn(n, 3, |r, c| if r % 3 == c { 1.0 } else { 0.0 });
        let y = Matrix::from_fn(n, 1, |r, _| match r % 3 {
            0 => 0.0,
            1 => 0.5,
            _ => 1.0,
        });
        let svr = SvrRff::fit(
            &x,
            &y,
            &SvrConfig {
                gamma: 1.0,
                ..config()
            },
        );
        let probe = Matrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        let pred = svr.predict(&probe);
        // ε-insensitive regression only pulls within the ε = 0.1 tube.
        assert!((pred[(0, 0)] - 0.0).abs() < 0.2);
        assert!((pred[(1, 0)] - 0.5).abs() < 0.2);
        assert!((pred[(2, 0)] - 1.0).abs() < 0.2);
    }

    #[test]
    fn multi_output_fit() {
        let n = 100;
        let mut rng = DetRng::new(4);
        let x = Matrix::from_fn(n, 2, |_, _| rng.uniform(0.0, 1.0));
        let y = Matrix::from_fn(
            n,
            2,
            |r, c| {
                if c == 0 {
                    x[(r, 0)]
                } else {
                    1.0 - x[(r, 0)]
                }
            },
        );
        let svr = SvrRff::fit(
            &x,
            &y,
            &SvrConfig {
                gamma: 2.0,
                ..config()
            },
        );
        let pred = svr.predict(&x);
        let mae: f32 = (0..n)
            .map(|r| (pred[(r, 0)] - y[(r, 0)]).abs() + (pred[(r, 1)] - y[(r, 1)]).abs())
            .sum::<f32>()
            / (2 * n) as f32;
        assert!(mae < 0.2, "MAE {mae}");
    }

    #[test]
    fn deterministic_given_seed() {
        let x = Matrix::from_fn(30, 2, |r, c| ((r + c) % 7) as f32 / 7.0);
        let y = Matrix::from_fn(30, 1, |r, _| (r % 3) as f32 / 3.0);
        let a = SvrRff::fit(&x, &y, &config()).predict(&x);
        let b = SvrRff::fit(&x, &y, &config()).predict(&x);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        SvrRff::fit(&Matrix::zeros(0, 1), &Matrix::zeros(0, 1), &config());
    }
}
