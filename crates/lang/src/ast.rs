use crate::module::{Array, Var};

/// Unary expression operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Floating-point negation.
    FNeg,
    /// Floating-point absolute value.
    FAbs,
    /// Floating-point square root.
    FSqrt,
    /// Signed integer → `f64`.
    I2F,
    /// `f64` → signed integer (truncating).
    F2I,
}

/// Binary expression operators. Comparison operators produce an integer 0/1.
///
/// Registers are untyped 64-bit values: `Bits`-style reinterpretation between
/// the integer and float views is free, so integer operators applied to a
/// value produced by a float operator (or vice versa) operate on the raw bit
/// pattern — exactly how the math library extracts exponents from `f64`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division (traps on zero divisor).
    Div,
    /// Integer remainder (traps on zero divisor).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// 1 if signed less-than else 0.
    Slt,
    /// 1 if unsigned less-than else 0.
    Sltu,
    /// 1 if equal else 0.
    Seq,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division (IEEE, never traps).
    FDiv,
    /// Float minimum.
    FMin,
    /// Float maximum.
    FMax,
    /// 1 if float less-than else 0.
    FLt,
    /// 1 if float less-or-equal else 0.
    FLe,
    /// 1 if float equal else 0.
    FEq,
}

/// An expression tree. Build these with the [`dsl`](crate::dsl) helpers.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal (materialised as its bit pattern).
    Float(f64),
    /// Read a scalar variable.
    Var(Var),
    /// Read `array[index]`.
    Ld(Array, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// A statement. Build these with the [`dsl`](crate::dsl) helpers.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var = expr`.
    Assign(Var, Expr),
    /// `array[index] = value`.
    Store(Array, Expr, Expr),
    /// `if (cond != 0) { then } else { otherwise }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond != 0) { body }`.
    While(Expr, Vec<Stmt>),
    /// Append the expression value to the program output buffer.
    Out(Expr),
}

impl Expr {
    /// Depth of the expression tree; the code generator evaluates
    /// expressions on a bounded register stack, so deep trees must be split
    /// into statements (see [`CompileError::ExprTooDeep`](crate::CompileError)).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => 1,
            Expr::Ld(_, idx) => idx.depth() + 1,
            Expr::Un(_, e) => e.depth(),
            // Left operand keeps its slot while the right evaluates.
            Expr::Bin(_, l, r) => l.depth().max(r.depth() + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::dsl::*;
    use crate::module::ModuleBuilder;

    #[test]
    fn depth_of_leaves_is_one() {
        assert_eq!(int(3).depth(), 1);
        assert_eq!(flt(2.5).depth(), 1);
    }

    #[test]
    fn depth_grows_with_right_nesting() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        // x + (x + (x + x)) → right chain of length 3 → depth 4
        let e = add(v(x), add(v(x), add(v(x), v(x))));
        assert_eq!(e.depth(), 4);
        // ((x + x) + x) + x → left chain → depth 2
        let e = add(add(add(v(x), v(x)), v(x)), v(x));
        assert_eq!(e.depth(), 2);
    }

    #[test]
    fn unary_does_not_add_depth() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        assert_eq!(fneg(fneg(v(x))).depth(), 1);
    }
}
