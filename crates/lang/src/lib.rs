//! A mini C-like language and code generator targeting the GLAIVE ISA.
//!
//! The paper compiles the benchmark suite with `g++` and analyses the
//! resulting x86 binaries. This crate is the reproduction's compiler
//! substrate: benchmarks are written as small ASTs (scalars, arrays,
//! `if`/`while`, integer and `f64` expressions) and lowered to
//! [`glaive_isa::Program`]s with a simple register allocator. A math library
//! generates `sin`/`cos`/`exp`/`ln`/`atan`/… inline as ISA code, so
//! floating-point benchmarks (Blackscholes, FFT, inversek2j, …) compile to
//! self-contained programs.
//!
//! # Example
//!
//! ```
//! use glaive_lang::{ModuleBuilder, dsl::*};
//! use glaive_sim::{run, ExecConfig};
//!
//! let mut m = ModuleBuilder::new("sum");
//! let (acc, i) = (m.var("acc"), m.var("i"));
//! m.push(assign(acc, int(0)));
//! m.push(for_(i, int(1), int(11), vec![
//!     assign(acc, add(v(acc), v(i))),
//! ]));
//! m.push(out(v(acc)));
//! let compiled = m.compile()?;
//! let result = run(compiled.program(), &[], &glaive_sim::ExecConfig::default());
//! assert_eq!(result.output, vec![55]);
//! # Ok::<(), glaive_lang::CompileError>(())
//! ```

mod ast;
mod compile;
pub mod dsl;
mod eval;
pub mod mathlib;
mod module;

pub use ast::{BinOp, Expr, Stmt, UnOp};
pub use compile::{CompileError, CompiledProgram, Layout, VarLoc};
pub use eval::EvalError;
pub use module::{Array, ModuleBuilder, Var};
