//! A reference interpreter for modules, independent of the code generator
//! and the ISA simulator.
//!
//! `interpret` executes the AST directly with the same semantics the
//! compiled program has on [`glaive_sim`]: wrapping 64-bit integer
//! arithmetic, IEEE `f64` via bit reinterpretation, trapping division and
//! out-of-bounds accesses, and a step budget for hangs. Differential tests
//! (`tests/differential.rs`) pit it against compile-and-simulate on random
//! programs.

use std::fmt;

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::module::ModuleBuilder;

/// Why interpretation stopped abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Array access outside the module's data memory.
    OutOfBounds {
        /// The faulting word address.
        addr: u64,
    },
    /// Exceeded the step budget (non-terminating loop).
    BudgetExceeded,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::DivByZero => write!(f, "integer divide by zero"),
            EvalError::OutOfBounds { addr } => write!(f, "out-of-bounds access at {addr:#x}"),
            EvalError::BudgetExceeded => write!(f, "step budget exceeded"),
        }
    }
}

impl std::error::Error for EvalError {}

struct Interp {
    vars: Vec<u64>,
    mem: Vec<u64>,
    array_bases: Vec<usize>,
    output: Vec<u64>,
    steps_left: u64,
}

impl ModuleBuilder {
    /// Interprets the module against the reference semantics, returning the
    /// output buffer.
    ///
    /// Memory layout matches the compiled program: arrays packed from
    /// address 0 in declaration order (scalar variables live outside
    /// memory, so programs that index arrays out of bounds may diverge from
    /// the compiled artefact — the compiled program spills some variables
    /// into memory).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on division by zero, out-of-bounds accesses,
    /// or when `max_steps` statements have been executed.
    pub fn interpret(&self, init_mem: &[u64], max_steps: u64) -> Result<Vec<u64>, EvalError> {
        let mut next = 0usize;
        let mut array_bases = Vec::with_capacity(self.arrays.len());
        for a in &self.arrays {
            array_bases.push(next);
            next += a.len;
        }
        // Spill-slot space (for parity with the compiled layout) + scratch.
        let spill = self.vars.len().saturating_sub(20);
        let mem_words = next + spill + self.extra_mem;
        let mut mem = vec![0u64; mem_words];
        let n = init_mem.len().min(mem_words);
        mem[..n].copy_from_slice(&init_mem[..n]);

        let mut interp = Interp {
            vars: vec![0; self.vars.len()],
            mem,
            array_bases,
            output: Vec::new(),
            steps_left: max_steps,
        };
        interp.block(&self.stmts)?;
        Ok(interp.output)
    }
}

impl Interp {
    fn charge(&mut self) -> Result<(), EvalError> {
        if self.steps_left == 0 {
            return Err(EvalError::BudgetExceeded);
        }
        self.steps_left -= 1;
        Ok(())
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), EvalError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), EvalError> {
        self.charge()?;
        match stmt {
            Stmt::Assign(v, e) => {
                let x = self.eval(e)?;
                self.vars[v.0] = x;
            }
            Stmt::Store(a, idx, val) => {
                let i = self.eval(idx)?;
                let x = self.eval(val)?;
                let addr = (self.array_bases[a.0] as u64).wrapping_add(i);
                let slot = self
                    .mem
                    .get_mut(addr as usize)
                    .ok_or(EvalError::OutOfBounds { addr })?;
                *slot = x;
            }
            Stmt::If(c, then, otherwise) => {
                if self.eval(c)? != 0 {
                    self.block(then)?;
                } else {
                    self.block(otherwise)?;
                }
            }
            Stmt::While(c, body) => {
                while self.eval(c)? != 0 {
                    self.block(body)?;
                    self.charge()?;
                }
            }
            Stmt::Out(e) => {
                let x = self.eval(e)?;
                self.output.push(x);
            }
        }
        Ok(())
    }

    fn eval(&mut self, expr: &Expr) -> Result<u64, EvalError> {
        Ok(match expr {
            Expr::Int(v) => *v as u64,
            Expr::Float(f) => f.to_bits(),
            Expr::Var(v) => self.vars[v.0],
            Expr::Ld(a, idx) => {
                let i = self.eval(idx)?;
                let addr = (self.array_bases[a.0] as u64).wrapping_add(i);
                *self
                    .mem
                    .get(addr as usize)
                    .ok_or(EvalError::OutOfBounds { addr })?
            }
            Expr::Un(op, e) => {
                let x = self.eval(e)?;
                match op {
                    UnOp::Neg => (0i64.wrapping_sub(x as i64)) as u64,
                    UnOp::Not => x ^ u64::MAX,
                    UnOp::FNeg => (-f64::from_bits(x)).to_bits(),
                    UnOp::FAbs => f64::from_bits(x).abs().to_bits(),
                    UnOp::FSqrt => f64::from_bits(x).sqrt().to_bits(),
                    UnOp::I2F => ((x as i64) as f64).to_bits(),
                    UnOp::F2I => (f64::from_bits(x) as i64) as u64,
                }
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval(l)?;
                let b = self.eval(r)?;
                let (sa, sb) = (a as i64, b as i64);
                let fa = f64::from_bits(a);
                let fb = f64::from_bits(b);
                match op {
                    BinOp::Add => sa.wrapping_add(sb) as u64,
                    BinOp::Sub => sa.wrapping_sub(sb) as u64,
                    BinOp::Mul => sa.wrapping_mul(sb) as u64,
                    BinOp::Div => {
                        if sb == 0 {
                            return Err(EvalError::DivByZero);
                        }
                        sa.wrapping_div(sb) as u64
                    }
                    BinOp::Rem => {
                        if sb == 0 {
                            return Err(EvalError::DivByZero);
                        }
                        sa.wrapping_rem(sb) as u64
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                    BinOp::Sra => sa.wrapping_shr(b as u32) as u64,
                    BinOp::Slt => u64::from(sa < sb),
                    BinOp::Sltu => u64::from(a < b),
                    BinOp::Seq => u64::from(a == b),
                    BinOp::FAdd => (fa + fb).to_bits(),
                    BinOp::FSub => (fa - fb).to_bits(),
                    BinOp::FMul => (fa * fb).to_bits(),
                    BinOp::FDiv => (fa / fb).to_bits(),
                    BinOp::FMin => fa.min(fb).to_bits(),
                    BinOp::FMax => fa.max(fb).to_bits(),
                    BinOp::FLt => u64::from(fa < fb),
                    BinOp::FLe => u64::from(fa <= fb),
                    BinOp::FEq => u64::from(fa == fb),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use glaive_sim::{run, ExecConfig};

    #[test]
    fn interpreter_matches_simulator_on_arithmetic() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        m.push(assign(x, add(mul(int(6), int(7)), neg(int(2)))));
        m.push(out(v(x)));
        m.push(out(shl(int(1), int(40))));
        m.push(out(f2i(fmul(flt(2.5), flt(4.0)))));
        let interpreted = m.interpret(&[], 10_000).expect("interprets");
        let compiled = m.compile().expect("compiles");
        let simulated = run(compiled.program(), &[], &ExecConfig::default());
        assert_eq!(interpreted, simulated.output);
    }

    #[test]
    fn interpreter_detects_div_by_zero() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        m.push(assign(x, int(0)));
        m.push(out(div(int(1), v(x))));
        assert_eq!(m.interpret(&[], 100), Err(EvalError::DivByZero));
    }

    #[test]
    fn interpreter_detects_oob() {
        let mut m = ModuleBuilder::new("t");
        let a = m.array("a", 2);
        m.push(out(ld(a, int(5))));
        assert!(matches!(
            m.interpret(&[], 100),
            Err(EvalError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn interpreter_detects_hangs() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        m.push(assign(x, int(1)));
        m.push(while_(v(x), vec![assign(x, v(x))]));
        assert_eq!(m.interpret(&[], 1000), Err(EvalError::BudgetExceeded));
    }

    #[test]
    fn loops_and_arrays_match_simulator() {
        let mut m = ModuleBuilder::new("t");
        let a = m.array("a", 8);
        let i = m.var("i");
        m.push(for_(
            i,
            int(0),
            int(8),
            vec![store(a, v(i), mul(v(i), int(3)))],
        ));
        m.push(for_(i, int(0), int(8), vec![out(ld(a, v(i)))]));
        let interpreted = m.interpret(&[], 100_000).expect("interprets");
        let compiled = m.compile().expect("compiles");
        let simulated = run(compiled.program(), &[], &ExecConfig::default());
        assert_eq!(interpreted, simulated.output);
        assert_eq!(interpreted[7], 21);
    }
}
