//! Math routines generated as inline ISA code.
//!
//! The paper's floating-point benchmarks (Blackscholes, inversek2j, FFT, …)
//! call `libm`. The GLAIVE ISA has no transcendental instructions, so this
//! module expands each routine into a statement sequence: range reduction
//! followed by a statement-level Horner polynomial (statement-level because
//! the code generator evaluates expressions on a bounded register stack).
//!
//! Every function takes the module builder (to allocate temporaries), input
//! expression(s), and returns `(statements, result)` where `result` reads
//! the routine's output variable. Embed the statements wherever the value is
//! needed — including inside loop bodies; temporaries are reassigned on each
//! iteration.
//!
//! Accuracy is in the 1e-6..1e-9 range over the argument ranges the
//! benchmarks use — more than enough resolution for fault-propagation
//! studies, where outputs are compared bit-exactly against the golden run of
//! the *same* binary.
//!
//! # Example
//!
//! ```
//! use glaive_lang::{ModuleBuilder, dsl::*, mathlib};
//! use glaive_sim::{run, ExecConfig};
//!
//! let mut m = ModuleBuilder::new("sin1");
//! let (stmts, result) = mathlib::sin(&mut m, flt(1.0));
//! m.extend(stmts);
//! m.push(out(result));
//! let compiled = m.compile()?;
//! let r = run(compiled.program(), &[], &ExecConfig::default());
//! let got = f64::from_bits(r.output[0]);
//! assert!((got - 1.0f64.sin()).abs() < 1e-6);
//! # Ok::<(), glaive_lang::CompileError>(())
//! ```

use std::f64::consts::{FRAC_PI_2, LN_2, PI};

use crate::ast::{Expr, Stmt};
use crate::dsl::*;
use crate::module::{ModuleBuilder, Var};

/// Statement-level Horner evaluation of a polynomial in `x` with
/// coefficients `coeffs` given lowest-order first:
/// `c[0] + c[1]*x + c[2]*x^2 + …`.
///
/// Returns the statements and an expression reading the result.
///
/// # Panics
///
/// Panics if `coeffs` is empty.
pub fn poly(m: &mut ModuleBuilder, x: Var, coeffs: &[f64]) -> (Vec<Stmt>, Expr) {
    assert!(
        !coeffs.is_empty(),
        "polynomial needs at least one coefficient"
    );
    let acc = m.fresh_var("poly");
    let mut stmts = vec![assign(acc, flt(*coeffs.last().expect("nonempty")))];
    for &c in coeffs.iter().rev().skip(1) {
        stmts.push(assign(acc, fadd(fmul(v(acc), v(x)), flt(c))));
    }
    (stmts, v(acc))
}

/// Round-to-nearest integer of a float expression, as an integer value.
/// Ties round away from zero.
pub fn round_to_int(m: &mut ModuleBuilder, x: Expr) -> (Vec<Stmt>, Expr) {
    let t = m.fresh_var("rnd");
    let stmts = vec![
        assign(t, x),
        if_else(
            flt_(v(t), flt(0.0)),
            vec![assign(t, f2i(fsub(v(t), flt(0.5))))],
            vec![assign(t, f2i(fadd(v(t), flt(0.5))))],
        ),
    ];
    (stmts, v(t))
}

/// `2^k` for an integer expression `k` in `[-1022, 1023]`, constructed by
/// placing the biased exponent directly into the IEEE-754 bit pattern —
/// registers are untyped, so the integer result feeds float ops unchanged.
pub fn exp2i(m: &mut ModuleBuilder, k: Expr) -> (Vec<Stmt>, Expr) {
    let t = m.fresh_var("exp2");
    let stmts = vec![assign(t, shl(add(k, int(1023)), int(52)))];
    (stmts, v(t))
}

fn factorial(n: u64) -> f64 {
    (1..=n).map(|i| i as f64).product()
}

/// `sin(x)`: argument reduction to `[-π, π]` followed by a degree-15 Taylor
/// polynomial in odd powers.
pub fn sin(m: &mut ModuleBuilder, x: Expr) -> (Vec<Stmt>, Expr) {
    let r = m.fresh_var("sinr");
    let s = m.fresh_var("sins");
    let mut stmts = vec![assign(r, x)];
    // r -= 2π * round(r / 2π)
    let (rstmts, k) = round_to_int(m, fmul(v(r), flt(1.0 / (2.0 * PI))));
    stmts.extend(rstmts);
    stmts.push(assign(r, fsub(v(r), fmul(i2f(k), flt(2.0 * PI)))));
    // sin(r) = r * P(r²) with P the alternating inverse-factorial series.
    stmts.push(assign(s, fmul(v(r), v(r))));
    let coeffs: Vec<f64> = (0..8)
        .map(|i| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            sign / factorial(2 * i + 1)
        })
        .collect();
    let (pstmts, p) = poly(m, s, &coeffs);
    stmts.extend(pstmts);
    let result = m.fresh_var("sin");
    stmts.push(assign(result, fmul(v(r), p)));
    (stmts, v(result))
}

/// `cos(x)`: argument reduction to `[-π, π]` followed by a degree-16 Taylor
/// polynomial in even powers.
pub fn cos(m: &mut ModuleBuilder, x: Expr) -> (Vec<Stmt>, Expr) {
    let r = m.fresh_var("cosr");
    let s = m.fresh_var("coss");
    let mut stmts = vec![assign(r, x)];
    let (rstmts, k) = round_to_int(m, fmul(v(r), flt(1.0 / (2.0 * PI))));
    stmts.extend(rstmts);
    stmts.push(assign(r, fsub(v(r), fmul(i2f(k), flt(2.0 * PI)))));
    stmts.push(assign(s, fmul(v(r), v(r))));
    let coeffs: Vec<f64> = (0..9)
        .map(|i| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            sign / factorial(2 * i)
        })
        .collect();
    let (pstmts, p) = poly(m, s, &coeffs);
    stmts.extend(pstmts);
    let result = m.fresh_var("cos");
    stmts.push(assign(result, p));
    (stmts, v(result))
}

/// `exp(x)`: reduction `x = k·ln2 + r` with `|r| ≤ ln2/2`, degree-8 Taylor
/// for `e^r`, scaled by `2^k`. `k` is clamped to `[-1000, 1000]`, so inputs
/// beyond roughly ±693 saturate instead of overflowing the bit trick.
pub fn exp(m: &mut ModuleBuilder, x: Expr) -> (Vec<Stmt>, Expr) {
    let xx = m.fresh_var("expx");
    let kvar = m.fresh_var("expk");
    let r = m.fresh_var("expr");
    let mut stmts = vec![assign(xx, x)];
    let (rstmts, k) = round_to_int(m, fmul(v(xx), flt(1.0 / LN_2)));
    stmts.extend(rstmts);
    stmts.push(assign(kvar, k));
    // Clamp k to the representable exponent range.
    stmts.push(if_(lt(v(kvar), int(-1000)), vec![assign(kvar, int(-1000))]));
    stmts.push(if_(gt(v(kvar), int(1000)), vec![assign(kvar, int(1000))]));
    stmts.push(assign(r, fsub(v(xx), fmul(i2f(v(kvar)), flt(LN_2)))));
    let coeffs: Vec<f64> = (0..9).map(|i| 1.0 / factorial(i)).collect();
    let (pstmts, p) = poly(m, r, &coeffs);
    stmts.extend(pstmts);
    let (sstmts, scale) = exp2i(m, v(kvar));
    stmts.extend(sstmts);
    let result = m.fresh_var("exp");
    stmts.push(assign(result, fmul(p, scale)));
    (stmts, v(result))
}

/// `ln(x)` for `x > 0`: exponent/mantissa split via the IEEE-754 bit
/// pattern, mantissa normalised to `[2/3, 4/3]`, then the `atanh` series
/// `ln(m) = 2(z + z³/3 + …)` with `z = (m-1)/(m+1)`.
pub fn ln(m: &mut ModuleBuilder, x: Expr) -> (Vec<Stmt>, Expr) {
    let bits = m.fresh_var("lnb");
    let e = m.fresh_var("lne");
    let mant = m.fresh_var("lnm");
    let z = m.fresh_var("lnz");
    let zz = m.fresh_var("lnz2");
    let mut stmts = vec![
        assign(bits, x),
        // Biased exponent field, then unbias.
        assign(e, sub(and(shr(v(bits), int(52)), int(0x7ff)), int(1023))),
        // Mantissa with the exponent forced to 0 → m ∈ [1, 2).
        assign(
            mant,
            or(and(v(bits), int(0x000f_ffff_ffff_ffff)), int(1023i64 << 52)),
        ),
        // Normalise to [2/3, 4/3] so z stays small.
        if_(
            fgt(v(mant), flt(4.0 / 3.0)),
            vec![
                assign(mant, fmul(v(mant), flt(0.5))),
                assign(e, add(v(e), int(1))),
            ],
        ),
        assign(z, fdiv(fsub(v(mant), flt(1.0)), fadd(v(mant), flt(1.0)))),
        assign(zz, fmul(v(z), v(z))),
    ];
    // ln(m) = 2z * (1 + z²/3 + z⁴/5 + z⁶/7 + z⁸/9 + z¹⁰/11)
    let coeffs: Vec<f64> = (0..6).map(|i| 1.0 / (2 * i + 1) as f64).collect();
    let (pstmts, p) = poly(m, zz, &coeffs);
    stmts.extend(pstmts);
    let result = m.fresh_var("ln");
    stmts.push(assign(
        result,
        fadd(fmul(i2f(v(e)), flt(LN_2)), fmul(fmul(flt(2.0), v(z)), p)),
    ));
    (stmts, v(result))
}

/// `atan(x)`: reciprocal reduction to `[0, 1]`, half-angle reduction to
/// `[0, tan(π/8)]`, degree-15 odd Taylor polynomial, then unreduction.
pub fn atan(m: &mut ModuleBuilder, x: Expr) -> (Vec<Stmt>, Expr) {
    let xx = m.fresh_var("atx");
    let u = m.fresh_var("atu");
    let inv = m.fresh_var("atinv");
    let s = m.fresh_var("ats");
    let mut stmts = vec![
        assign(xx, x),
        assign(u, fabs(v(xx))),
        assign(inv, int(0)),
        if_(
            fgt(v(u), flt(1.0)),
            vec![assign(inv, int(1)), assign(u, fdiv(flt(1.0), v(u)))],
        ),
        // Half-angle: atan(u) = 2 atan(u / (1 + sqrt(1 + u²)))
        assign(
            u,
            fdiv(
                v(u),
                fadd(flt(1.0), fsqrt(fadd(flt(1.0), fmul(v(u), v(u))))),
            ),
        ),
        assign(s, fmul(v(u), v(u))),
    ];
    let coeffs: Vec<f64> = (0..8)
        .map(|i| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            sign / (2 * i + 1) as f64
        })
        .collect();
    let (pstmts, p) = poly(m, s, &coeffs);
    stmts.extend(pstmts);
    let result = m.fresh_var("atan");
    stmts.push(assign(result, fmul(fmul(flt(2.0), v(u)), p)));
    stmts.push(if_(
        eq(v(inv), int(1)),
        vec![assign(result, fsub(flt(FRAC_PI_2), v(result)))],
    ));
    stmts.push(if_(
        flt_(v(xx), flt(0.0)),
        vec![assign(result, fneg(v(result)))],
    ));
    (stmts, v(result))
}

/// `atan2(y, x)` with the usual quadrant conventions. `atan2(0, 0)` is
/// defined as 0.
pub fn atan2(m: &mut ModuleBuilder, y: Expr, x: Expr) -> (Vec<Stmt>, Expr) {
    let yy = m.fresh_var("a2y");
    let xx = m.fresh_var("a2x");
    let result = m.fresh_var("atan2");
    let mut stmts = vec![assign(yy, y), assign(xx, x)];
    let (astmts, a) = atan(m, fdiv(v(yy), v(xx)));
    // x > 0: atan(y/x)
    // x < 0: atan(y/x) + π (y ≥ 0) or − π (y < 0)
    // x = 0: ±π/2 by the sign of y; 0 when both are 0.
    let mut xpos = astmts.clone();
    xpos.push(assign(result, a.clone()));
    let mut xneg = astmts;
    xneg.push(if_else(
        fge(v(yy), flt(0.0)),
        vec![assign(result, fadd(a.clone(), flt(PI)))],
        vec![assign(result, fsub(a, flt(PI)))],
    ));
    let xzero = vec![if_else(
        fgt(v(yy), flt(0.0)),
        vec![assign(result, flt(FRAC_PI_2))],
        vec![if_else(
            flt_(v(yy), flt(0.0)),
            vec![assign(result, flt(-FRAC_PI_2))],
            vec![assign(result, flt(0.0))],
        )],
    )];
    stmts.push(if_else(
        fgt(v(xx), flt(0.0)),
        xpos,
        vec![if_else(flt_(v(xx), flt(0.0)), xneg, xzero)],
    ));
    (stmts, v(result))
}

/// `acos(x)` for `x ∈ [-1, 1]`, via `atan2(√(1−x²), x)`.
pub fn acos(m: &mut ModuleBuilder, x: Expr) -> (Vec<Stmt>, Expr) {
    let xx = m.fresh_var("acx");
    let mut stmts = vec![assign(xx, x)];
    let (astmts, a) = atan2(m, fsqrt(fsub(flt(1.0), fmul(v(xx), v(xx)))), v(xx));
    stmts.extend(astmts);
    (stmts, a)
}

/// `asin(x)` for `x ∈ [-1, 1]`, via `atan2(x, √(1−x²))`.
pub fn asin(m: &mut ModuleBuilder, x: Expr) -> (Vec<Stmt>, Expr) {
    let xx = m.fresh_var("asx");
    let mut stmts = vec![assign(xx, x)];
    let (astmts, a) = atan2(m, v(xx), fsqrt(fsub(flt(1.0), fmul(v(xx), v(xx)))));
    stmts.extend(astmts);
    (stmts, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::{run, ExecConfig};

    /// Compiles a one-argument routine applied to each input and returns the
    /// outputs as f64.
    fn eval_unary(
        f: impl Fn(&mut ModuleBuilder, Expr) -> (Vec<Stmt>, Expr),
        inputs: &[f64],
    ) -> Vec<f64> {
        let mut m = ModuleBuilder::new("mathtest");
        for &x in inputs {
            let (stmts, r) = f(&mut m, flt(x));
            m.extend(stmts);
            m.push(out(r));
        }
        let compiled = m.compile().expect("compiles");
        let r = run(
            compiled.program(),
            &[],
            &ExecConfig {
                max_instrs: 10_000_000,
            },
        );
        assert!(r.status.is_clean(), "bad exit: {:?}", r.status);
        r.output.iter().map(|&b| f64::from_bits(b)).collect()
    }

    #[test]
    fn sin_matches_std() {
        let inputs = [
            -7.3,
            -3.0,
            -1.0,
            -0.1,
            0.0,
            0.5,
            1.0,
            2.5,
            std::f64::consts::PI,
            9.9,
        ];
        let got = eval_unary(sin, &inputs);
        for (&x, &y) in inputs.iter().zip(&got) {
            assert!(
                (y - x.sin()).abs() < 1e-6,
                "sin({x}) = {y}, want {}",
                x.sin()
            );
        }
    }

    #[test]
    fn cos_matches_std() {
        let inputs = [
            -7.3,
            -3.0,
            -1.0,
            0.0,
            0.5,
            1.0,
            2.5,
            std::f64::consts::PI,
            9.9,
        ];
        let got = eval_unary(cos, &inputs);
        for (&x, &y) in inputs.iter().zip(&got) {
            assert!(
                (y - x.cos()).abs() < 1e-6,
                "cos({x}) = {y}, want {}",
                x.cos()
            );
        }
    }

    #[test]
    fn exp_matches_std() {
        let inputs = [-20.0, -5.0, -1.0, -0.01, 0.0, 0.3, 1.0, 4.7, 20.0];
        let got = eval_unary(exp, &inputs);
        for (&x, &y) in inputs.iter().zip(&got) {
            let want = x.exp();
            assert!(
                (y - want).abs() <= want * 1e-9 + 1e-12,
                "exp({x}) = {y}, want {want}"
            );
        }
    }

    #[test]
    fn ln_matches_std() {
        let inputs = [1e-9, 0.01, 0.5, 1.0, 1.3333, 2.0, 10.0, 12345.0, 1e12];
        let got = eval_unary(ln, &inputs);
        for (&x, &y) in inputs.iter().zip(&got) {
            assert!((y - x.ln()).abs() < 1e-9, "ln({x}) = {y}, want {}", x.ln());
        }
    }

    #[test]
    fn atan_matches_std() {
        let inputs = [-100.0, -2.0, -1.0, -0.4, 0.0, 0.3, 1.0, 5.0, 1000.0];
        let got = eval_unary(atan, &inputs);
        for (&x, &y) in inputs.iter().zip(&got) {
            assert!(
                (y - x.atan()).abs() < 1e-7,
                "atan({x}) = {y}, want {}",
                x.atan()
            );
        }
    }

    #[test]
    fn atan2_quadrants() {
        let cases: [(f64, f64); 8] = [
            (1.0, 1.0),
            (1.0, -1.0),
            (-1.0, 1.0),
            (-1.0, -1.0),
            (1.0, 0.0),
            (-1.0, 0.0),
            (0.0, 1.0),
            (0.0, -1.0),
        ];
        let mut m = ModuleBuilder::new("atan2test");
        for &(y, x) in &cases {
            let (stmts, r) = atan2(&mut m, flt(y), flt(x));
            m.extend(stmts);
            m.push(out(r));
        }
        let compiled = m.compile().expect("compiles");
        let r = run(
            compiled.program(),
            &[],
            &ExecConfig {
                max_instrs: 10_000_000,
            },
        );
        assert!(r.status.is_clean());
        for (&(y, x), &bits) in cases.iter().zip(&r.output) {
            let got = f64::from_bits(bits);
            let want = y.atan2(x);
            assert!(
                (got - want).abs() < 1e-7,
                "atan2({y},{x}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn acos_and_asin_match_std() {
        let inputs = [-1.0, -0.9, -0.5, 0.0, 0.3, 0.7, 1.0];
        let got = eval_unary(acos, &inputs);
        for (&x, &y) in inputs.iter().zip(&got) {
            assert!(
                (y - x.acos()).abs() < 2e-7,
                "acos({x}) = {y}, want {}",
                x.acos()
            );
        }
        let got = eval_unary(asin, &inputs);
        for (&x, &y) in inputs.iter().zip(&got) {
            assert!(
                (y - x.asin()).abs() < 2e-7,
                "asin({x}) = {y}, want {}",
                x.asin()
            );
        }
    }

    #[test]
    fn round_to_int_ties_and_signs() {
        let mut m = ModuleBuilder::new("rnd");
        for x in [2.4, 2.5, 2.6, -2.4, -2.5, -2.6, 0.0] {
            let (stmts, r) = round_to_int(&mut m, flt(x));
            m.extend(stmts);
            m.push(out(r));
        }
        let compiled = m.compile().expect("compiles");
        let r = run(compiled.program(), &[], &ExecConfig::default());
        let got: Vec<i64> = r.output.iter().map(|&b| b as i64).collect();
        assert_eq!(got, vec![2, 3, 3, -2, -3, -3, 0]);
    }

    #[test]
    fn exp2i_bit_trick() {
        let mut m = ModuleBuilder::new("exp2");
        for k in [-3i64, 0, 1, 10] {
            let (stmts, r) = exp2i(&mut m, int(k));
            m.extend(stmts);
            m.push(out(r));
        }
        let compiled = m.compile().expect("compiles");
        let r = run(compiled.program(), &[], &ExecConfig::default());
        let got: Vec<f64> = r.output.iter().map(|&b| f64::from_bits(b)).collect();
        assert_eq!(got, vec![0.125, 1.0, 2.0, 1024.0]);
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn empty_poly_panics() {
        let mut m = ModuleBuilder::new("p");
        let x = m.var("x");
        let _ = poly(&mut m, x, &[]);
    }
}
