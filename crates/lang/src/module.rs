use crate::ast::Stmt;
use crate::compile::{compile, CompileError, CompiledProgram};

/// Handle to a scalar variable declared in a [`ModuleBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) usize);

/// Handle to a fixed-length array declared in a [`ModuleBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Array(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct VarDecl {
    pub name: String,
}

#[derive(Debug, Clone)]
pub(crate) struct ArrayDecl {
    pub name: String,
    pub len: usize,
}

/// Incrementally builds a program module: scalar variables, arrays, and a
/// top-level statement list, then compiles it to a
/// [`CompiledProgram`].
///
/// Variables are untyped 64-bit values, matching the ISA's untyped
/// registers; whether a value is an integer or an `f64` bit pattern is
/// determined by the operators applied to it.
///
/// # Example
///
/// ```
/// use glaive_lang::{ModuleBuilder, dsl::*};
/// let mut m = ModuleBuilder::new("answer");
/// let x = m.var("x");
/// m.push(assign(x, int(42)));
/// m.push(out(v(x)));
/// let compiled = m.compile()?;
/// assert_eq!(compiled.program().name(), "answer");
/// # Ok::<(), glaive_lang::CompileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ModuleBuilder {
    pub(crate) name: String,
    pub(crate) vars: Vec<VarDecl>,
    pub(crate) arrays: Vec<ArrayDecl>,
    pub(crate) stmts: Vec<Stmt>,
    /// Extra scratch memory words appended after arrays and spill slots.
    pub(crate) extra_mem: usize,
    fresh_counter: usize,
}

impl ModuleBuilder {
    /// Creates an empty module with the given program name.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            name: name.into(),
            vars: Vec::new(),
            arrays: Vec::new(),
            stmts: Vec::new(),
            extra_mem: 0,
            fresh_counter: 0,
        }
    }

    /// Declares a scalar variable.
    pub fn var(&mut self, name: impl Into<String>) -> Var {
        self.vars.push(VarDecl { name: name.into() });
        Var(self.vars.len() - 1)
    }

    /// Declares a compiler-generated temporary variable (used by
    /// [`mathlib`](crate::mathlib) expansions).
    pub fn fresh_var(&mut self, hint: &str) -> Var {
        self.fresh_counter += 1;
        let name = format!("${hint}{}", self.fresh_counter);
        self.var(name)
    }

    /// Declares a fixed-length array of 64-bit words.
    pub fn array(&mut self, name: impl Into<String>, len: usize) -> Array {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            len,
        });
        Array(self.arrays.len() - 1)
    }

    /// Reserves `words` additional scratch memory words beyond arrays and
    /// spill slots.
    pub fn reserve_mem(&mut self, words: usize) -> &mut Self {
        self.extra_mem += words;
        self
    }

    /// Appends a top-level statement.
    pub fn push(&mut self, stmt: Stmt) -> &mut Self {
        self.stmts.push(stmt);
        self
    }

    /// Appends a sequence of top-level statements.
    pub fn extend(&mut self, stmts: impl IntoIterator<Item = Stmt>) -> &mut Self {
        self.stmts.extend(stmts);
        self
    }

    /// Number of declared scalar variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The declared name of a scalar variable.
    pub fn var_name(&self, var: Var) -> &str {
        &self.vars[var.0].name
    }

    /// The declared name of an array.
    pub fn array_name(&self, array: Array) -> &str {
        &self.arrays[array.0].name
    }

    /// Number of declared arrays.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Lowers the module to an ISA program plus its memory layout.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if an expression exceeds the evaluation
    /// register stack ([`CompileError::ExprTooDeep`]).
    pub fn compile(self) -> Result<CompiledProgram, CompileError> {
        compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn declarations_yield_distinct_handles() {
        let mut m = ModuleBuilder::new("t");
        let a = m.var("a");
        let b = m.var("b");
        assert_ne!(a, b);
        let x = m.array("x", 4);
        let y = m.array("y", 8);
        assert_ne!(x, y);
        assert_eq!(m.var_count(), 2);
        assert_eq!(m.array_count(), 2);
        assert_eq!(m.var_name(a), "a");
        assert_eq!(m.array_name(y), "y");
    }

    #[test]
    fn fresh_vars_are_unique() {
        let mut m = ModuleBuilder::new("t");
        let a = m.fresh_var("t");
        let b = m.fresh_var("t");
        assert_ne!(a, b);
    }

    #[test]
    fn extend_appends_in_order() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        m.extend(vec![assign(x, int(1)), out(v(x))]);
        assert_eq!(m.stmts.len(), 2);
    }
}
