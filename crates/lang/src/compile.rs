use std::fmt;

use glaive_isa::{AluOp, Asm, BranchCond, CvtOp, FpuOp, FpuUnaryOp, Program, Reg};

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::module::{Array, ModuleBuilder, Var};

/// First register of the expression-evaluation stack.
const STACK_BASE: u8 = 21;
/// Number of expression-evaluation registers.
const STACK_LEN: usize = 10;
/// Number of registers available for scalar variables (`r1..=r20`).
const NUM_VAR_REGS: usize = 20;
/// Register pinned to zero by the prologue; used as a branch comparand and
/// as the base register for absolute addressing.
const ZERO: Reg = Reg(31);

/// Where a scalar variable lives at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarLoc {
    /// Held in an architectural register for the whole program.
    Reg(Reg),
    /// Spilled to a fixed data-memory word.
    Mem(usize),
}

/// The memory layout of a compiled module: where each array and spilled
/// variable resides. Benchmarks use this to assemble the initial memory
/// image holding their inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    array_bases: Vec<usize>,
    array_lens: Vec<usize>,
    var_locs: Vec<VarLoc>,
    mem_words: usize,
}

impl Layout {
    /// Base word address of an array.
    pub fn array_base(&self, array: Array) -> usize {
        self.array_bases[array.0]
    }

    /// Declared length of an array in words.
    pub fn array_len(&self, array: Array) -> usize {
        self.array_lens[array.0]
    }

    /// Runtime location of a scalar variable.
    pub fn var_loc(&self, var: Var) -> VarLoc {
        self.var_locs[var.0]
    }

    /// Total data-memory size in words.
    pub fn mem_words(&self) -> usize {
        self.mem_words
    }
}

/// A lowered module: the executable [`Program`] and its [`Layout`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    program: Program,
    layout: Layout,
}

impl CompiledProgram {
    /// The executable program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The memory layout (array bases, variable locations).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Consumes self, returning the program and layout.
    pub fn into_parts(self) -> (Program, Layout) {
        (self.program, self.layout)
    }
}

/// Error produced when lowering a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// An expression tree needs more evaluation registers than available;
    /// split it into multiple statements (e.g. statement-level Horner for
    /// polynomials, as [`mathlib`](crate::mathlib) does).
    ExprTooDeep {
        /// Required stack depth.
        depth: usize,
        /// Available stack depth.
        max: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ExprTooDeep { depth, max } => write!(
                f,
                "expression needs {depth} evaluation registers but only {max} are available; \
                 split it into multiple statements"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

struct Codegen {
    asm: Asm,
    layout: Layout,
}

/// Lowers a module to a program plus layout. Called via
/// [`ModuleBuilder::compile`].
pub(crate) fn compile(module: ModuleBuilder) -> Result<CompiledProgram, CompileError> {
    // Memory layout: arrays in declaration order from address 0, then spill
    // slots for variables beyond the register file, then scratch.
    let mut next = 0usize;
    let mut array_bases = Vec::with_capacity(module.arrays.len());
    let mut array_lens = Vec::with_capacity(module.arrays.len());
    for a in &module.arrays {
        array_bases.push(next);
        array_lens.push(a.len);
        next += a.len;
    }
    let mut var_locs = Vec::with_capacity(module.vars.len());
    for (i, _) in module.vars.iter().enumerate() {
        if i < NUM_VAR_REGS {
            var_locs.push(VarLoc::Reg(Reg(1 + i as u8)));
        } else {
            var_locs.push(VarLoc::Mem(next));
            next += 1;
        }
    }
    let mem_words = next + module.extra_mem;
    let layout = Layout {
        array_bases,
        array_lens,
        var_locs,
        mem_words,
    };

    let mut asm = Asm::new(module.name.clone());
    asm.set_mem_words(mem_words);
    // Prologue: pin the zero register.
    asm.li(ZERO, 0);

    let mut cg = Codegen { asm, layout };
    for stmt in &module.stmts {
        cg.stmt(stmt)?;
    }
    cg.asm.halt();
    let program = cg
        .asm
        .finish()
        .expect("all labels are bound by construction");
    Ok(CompiledProgram {
        program,
        layout: cg.layout,
    })
}

impl Codegen {
    fn slot(&self, depth: usize) -> Result<Reg, CompileError> {
        if depth >= STACK_LEN {
            return Err(CompileError::ExprTooDeep {
                depth: depth + 1,
                max: STACK_LEN,
            });
        }
        Ok(Reg(STACK_BASE + depth as u8))
    }

    /// Evaluates `expr` into evaluation-stack slot `depth`; slots below
    /// `depth` are live and preserved.
    fn eval(&mut self, expr: &Expr, depth: usize) -> Result<Reg, CompileError> {
        let t = self.slot(depth)?;
        match expr {
            Expr::Int(v) => {
                self.asm.li(t, *v);
            }
            Expr::Float(f) => {
                self.asm.li_f(t, *f);
            }
            Expr::Var(x) => match self.layout.var_loc(*x) {
                VarLoc::Reg(r) => {
                    self.asm.mov(t, r);
                }
                VarLoc::Mem(addr) => {
                    self.asm.load(t, ZERO, addr as i64);
                }
            },
            Expr::Ld(arr, idx) => {
                let ti = self.eval(idx, depth)?;
                let base = self.layout.array_base(*arr);
                self.asm.load(t, ti, base as i64);
            }
            Expr::Un(op, e) => {
                let te = self.eval(e, depth)?;
                debug_assert_eq!(te, t);
                match op {
                    UnOp::Neg => {
                        self.asm.alu(AluOp::Sub, t, ZERO, te);
                    }
                    UnOp::Not => {
                        self.asm.alu_imm(AluOp::Xor, t, te, -1);
                    }
                    UnOp::FNeg => {
                        self.asm.fpu_unary(FpuUnaryOp::FNeg, t, te);
                    }
                    UnOp::FAbs => {
                        self.asm.fpu_unary(FpuUnaryOp::FAbs, t, te);
                    }
                    UnOp::FSqrt => {
                        self.asm.fpu_unary(FpuUnaryOp::FSqrt, t, te);
                    }
                    UnOp::I2F => {
                        self.asm.cvt(CvtOp::IntToFloat, t, te);
                    }
                    UnOp::F2I => {
                        self.asm.cvt(CvtOp::FloatToInt, t, te);
                    }
                }
            }
            Expr::Bin(op, lhs, rhs) => {
                // Register-immediate form for integer ops with a literal rhs
                // keeps generated code close to what a real compiler emits.
                if let (Some(alu), Expr::Int(imm)) = (int_alu(*op), rhs.as_ref()) {
                    let tl = self.eval(lhs, depth)?;
                    self.asm.alu_imm(alu, t, tl, *imm);
                } else {
                    let tl = self.eval(lhs, depth)?;
                    let tr = self.eval(rhs, depth + 1)?;
                    if let Some(alu) = int_alu(*op) {
                        self.asm.alu(alu, t, tl, tr);
                    } else {
                        self.asm.fpu(float_fpu(*op), t, tl, tr);
                    }
                }
            }
        }
        Ok(t)
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Assign(x, e) => {
                let t = self.eval(e, 0)?;
                match self.layout.var_loc(*x) {
                    VarLoc::Reg(r) => {
                        self.asm.mov(r, t);
                    }
                    VarLoc::Mem(addr) => {
                        self.asm.store(t, ZERO, addr as i64);
                    }
                }
            }
            Stmt::Store(arr, idx, val) => {
                let ti = self.eval(idx, 0)?;
                let tv = self.eval(val, 1)?;
                let base = self.layout.array_base(*arr);
                self.asm.store(tv, ti, base as i64);
            }
            Stmt::If(cond, then, otherwise) => {
                // `for_` desugars to If(1, ..): emit the body directly.
                if matches!(cond, Expr::Int(c) if *c != 0) {
                    for s in then {
                        self.stmt(s)?;
                    }
                    return Ok(());
                }
                let t = self.eval(cond, 0)?;
                let else_label = self.asm.label();
                let end_label = self.asm.label();
                self.asm.branch(BranchCond::Eq, t, ZERO, else_label);
                for s in then {
                    self.stmt(s)?;
                }
                self.asm.jump(end_label);
                self.asm.bind(else_label);
                for s in otherwise {
                    self.stmt(s)?;
                }
                self.asm.bind(end_label);
            }
            Stmt::While(cond, body) => {
                let top = self.asm.label();
                let end = self.asm.label();
                self.asm.bind(top);
                let t = self.eval(cond, 0)?;
                self.asm.branch(BranchCond::Eq, t, ZERO, end);
                for s in body {
                    self.stmt(s)?;
                }
                self.asm.jump(top);
                self.asm.bind(end);
            }
            Stmt::Out(e) => {
                let t = self.eval(e, 0)?;
                self.asm.out(t);
            }
        }
        Ok(())
    }
}

fn int_alu(op: BinOp) -> Option<AluOp> {
    Some(match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::Div => AluOp::Div,
        BinOp::Rem => AluOp::Rem,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Or,
        BinOp::Xor => AluOp::Xor,
        BinOp::Shl => AluOp::Shl,
        BinOp::Shr => AluOp::Shr,
        BinOp::Sra => AluOp::Sra,
        BinOp::Slt => AluOp::Slt,
        BinOp::Sltu => AluOp::Sltu,
        BinOp::Seq => AluOp::Seq,
        _ => return None,
    })
}

fn float_fpu(op: BinOp) -> FpuOp {
    match op {
        BinOp::FAdd => FpuOp::FAdd,
        BinOp::FSub => FpuOp::FSub,
        BinOp::FMul => FpuOp::FMul,
        BinOp::FDiv => FpuOp::FDiv,
        BinOp::FMin => FpuOp::FMin,
        BinOp::FMax => FpuOp::FMax,
        BinOp::FLt => FpuOp::FLt,
        BinOp::FLe => FpuOp::FLe,
        BinOp::FEq => FpuOp::FEq,
        other => unreachable!("integer op {other:?} reached float lowering"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use glaive_sim::{run, ExecConfig};

    fn exec_with_mem(m: ModuleBuilder, init: &[u64]) -> Vec<u64> {
        let compiled = m.compile().expect("compiles");
        let r = run(compiled.program(), init, &ExecConfig::default());
        assert!(r.status.is_clean(), "bad exit: {:?}", r.status);
        r.output
    }

    fn exec(m: ModuleBuilder) -> Vec<u64> {
        exec_with_mem(m, &[])
    }

    #[test]
    fn arithmetic_and_assignment() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        m.push(assign(x, add(mul(int(6), int(7)), neg(int(2)))));
        m.push(out(v(x)));
        assert_eq!(exec(m), vec![40]);
    }

    #[test]
    fn if_else_branches() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        m.push(assign(x, int(3)));
        m.push(if_else(
            lt(v(x), int(5)),
            vec![out(int(1))],
            vec![out(int(2))],
        ));
        m.push(if_else(
            lt(v(x), int(2)),
            vec![out(int(3))],
            vec![out(int(4))],
        ));
        assert_eq!(exec(m), vec![1, 4]);
    }

    #[test]
    fn nested_loops() {
        let mut m = ModuleBuilder::new("t");
        let (i, j, n) = (m.var("i"), m.var("j"), m.var("n"));
        m.push(assign(n, int(0)));
        m.push(for_(
            i,
            int(0),
            int(3),
            vec![for_(j, int(0), int(4), vec![assign(n, add(v(n), int(1)))])],
        ));
        m.push(out(v(n)));
        assert_eq!(exec(m), vec![12]);
    }

    #[test]
    fn arrays_load_store() {
        let mut m = ModuleBuilder::new("t");
        let a = m.array("a", 4);
        let i = m.var("i");
        m.push(for_(
            i,
            int(0),
            int(4),
            vec![store(a, v(i), mul(v(i), v(i)))],
        ));
        m.push(for_(i, int(0), int(4), vec![out(ld(a, v(i)))]));
        assert_eq!(exec(m), vec![0, 1, 4, 9]);
    }

    #[test]
    fn initial_memory_feeds_arrays() {
        let mut m = ModuleBuilder::new("t");
        let a = m.array("a", 3);
        let s = m.var("s");
        let i = m.var("i");
        m.push(assign(s, int(0)));
        m.push(for_(
            i,
            int(0),
            int(3),
            vec![assign(s, add(v(s), ld(a, v(i))))],
        ));
        m.push(out(v(s)));
        assert_eq!(exec_with_mem(m, &[10, 20, 30]), vec![60]);
    }

    #[test]
    fn spilled_variables_work() {
        let mut m = ModuleBuilder::new("t");
        // Declare more variables than there are variable registers.
        let vars: Vec<_> = (0..NUM_VAR_REGS + 5)
            .map(|k| m.var(format!("v{k}")))
            .collect();
        for (k, &var) in vars.iter().enumerate() {
            m.push(assign(var, int(k as i64)));
        }
        let last = *vars.last().expect("nonempty");
        let first = vars[0];
        m.push(out(add(v(first), v(last))));
        let compiled_layout = {
            let m2 = {
                // Rebuild an identical module for layout inspection.
                let mut m2 = ModuleBuilder::new("t2");
                let vs: Vec<_> = (0..NUM_VAR_REGS + 5)
                    .map(|k| m2.var(format!("v{k}")))
                    .collect();
                for (k, &var) in vs.iter().enumerate() {
                    m2.push(assign(var, int(k as i64)));
                }
                m2
            };
            m2.compile().expect("compiles")
        };
        assert!(matches!(
            compiled_layout.layout().var_loc(Var(NUM_VAR_REGS)),
            VarLoc::Mem(_)
        ));
        assert_eq!(exec(m), vec![(NUM_VAR_REGS as u64 + 4)]);
    }

    #[test]
    fn too_deep_expression_is_an_error() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        m.push(assign(x, int(1)));
        // Build a right-leaning chain deeper than the evaluation stack.
        let mut e = v(x);
        for _ in 0..STACK_LEN + 1 {
            e = add(v(x), e);
        }
        m.push(out(e));
        assert!(matches!(m.compile(), Err(CompileError::ExprTooDeep { .. })));
    }

    #[test]
    fn left_leaning_deep_expression_compiles() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        m.push(assign(x, int(1)));
        let mut e = v(x);
        for _ in 0..50 {
            e = add(e, v(x));
        }
        m.push(out(e));
        assert_eq!(exec(m), vec![51]);
    }

    #[test]
    fn float_pipeline() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        m.push(assign(x, fdiv(flt(1.0), flt(4.0))));
        m.push(assign(x, fsqrt(v(x))));
        m.push(out(f2i(fmul(v(x), flt(100.0)))));
        assert_eq!(exec(m), vec![50]);
    }

    #[test]
    fn bit_reinterpretation_between_views() {
        // Extract the IEEE-754 biased exponent of 8.0 (= 1026) using
        // integer ops on a float value.
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        m.push(assign(x, flt(8.0)));
        m.push(out(and(shr(v(x), int(52)), int(0x7ff))));
        assert_eq!(exec(m), vec![1026]);
    }

    #[test]
    fn layout_packs_arrays_then_spills() {
        let mut m = ModuleBuilder::new("t");
        let a = m.array("a", 10);
        let b = m.array("b", 5);
        m.reserve_mem(3);
        let compiled = m.compile().expect("compiles");
        let layout = compiled.layout();
        assert_eq!(layout.array_base(a), 0);
        assert_eq!(layout.array_base(b), 10);
        assert_eq!(layout.array_len(b), 5);
        assert_eq!(layout.mem_words(), 18);
    }

    #[test]
    fn division_by_zero_traps_at_runtime() {
        let mut m = ModuleBuilder::new("t");
        let x = m.var("x");
        m.push(assign(x, int(0)));
        m.push(out(div(int(1), v(x))));
        let compiled = m.compile().expect("compiles");
        let r = run(compiled.program(), &[], &ExecConfig::default());
        assert!(!r.status.is_clean());
    }
}
