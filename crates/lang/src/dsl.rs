//! Constructor helpers for building [`Expr`] and [`Stmt`] trees concisely.
//!
//! ```
//! use glaive_lang::{ModuleBuilder, dsl::*};
//! let mut m = ModuleBuilder::new("t");
//! let (x, y) = (m.var("x"), m.var("y"));
//! m.push(assign(x, int(2)));
//! m.push(assign(y, mul(v(x), add(v(x), int(1))))); // y = x * (x + 1)
//! m.push(out(v(y)));
//! ```

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::module::{Array, Var};

/// Integer literal expression.
pub fn int(value: i64) -> Expr {
    Expr::Int(value)
}

/// Float literal expression.
pub fn flt(value: f64) -> Expr {
    Expr::Float(value)
}

/// Read a scalar variable.
pub fn v(var: Var) -> Expr {
    Expr::Var(var)
}

/// Read `array[index]`.
pub fn ld(array: Array, index: Expr) -> Expr {
    Expr::Ld(array, Box::new(index))
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Bin(op, Box::new(lhs), Box::new(rhs))
}

fn un(op: UnOp, e: Expr) -> Expr {
    Expr::Un(op, Box::new(e))
}

/// Integer addition.
pub fn add(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Add, lhs, rhs)
}

/// Integer subtraction.
pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Sub, lhs, rhs)
}

/// Integer multiplication.
pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Mul, lhs, rhs)
}

/// Integer division (traps on zero divisor).
pub fn div(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Div, lhs, rhs)
}

/// Integer remainder (traps on zero divisor).
pub fn rem(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Rem, lhs, rhs)
}

/// Bitwise and.
pub fn and(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::And, lhs, rhs)
}

/// Bitwise or.
pub fn or(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Or, lhs, rhs)
}

/// Bitwise xor.
pub fn xor(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Xor, lhs, rhs)
}

/// Logical shift left.
pub fn shl(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Shl, lhs, rhs)
}

/// Logical shift right.
pub fn shr(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Shr, lhs, rhs)
}

/// Arithmetic shift right.
pub fn sra(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Sra, lhs, rhs)
}

/// 1 if `lhs < rhs` (signed) else 0.
pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Slt, lhs, rhs)
}

/// 1 if `lhs < rhs` (unsigned) else 0.
pub fn ltu(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Sltu, lhs, rhs)
}

/// 1 if `lhs > rhs` (signed) else 0.
pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Slt, rhs, lhs)
}

/// 1 if `lhs <= rhs` (signed) else 0.
pub fn le(lhs: Expr, rhs: Expr) -> Expr {
    // a <= b  ==  !(b < a)  ==  (b < a) == 0
    bin(BinOp::Seq, bin(BinOp::Slt, rhs, lhs), Expr::Int(0))
}

/// 1 if `lhs >= rhs` (signed) else 0.
pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Seq, bin(BinOp::Slt, lhs, rhs), Expr::Int(0))
}

/// 1 if equal else 0.
pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Seq, lhs, rhs)
}

/// 1 if not equal else 0.
pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Seq, bin(BinOp::Seq, lhs, rhs), Expr::Int(0))
}

/// Integer negation.
pub fn neg(e: Expr) -> Expr {
    un(UnOp::Neg, e)
}

/// Bitwise complement.
pub fn not(e: Expr) -> Expr {
    un(UnOp::Not, e)
}

/// Float addition.
pub fn fadd(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::FAdd, lhs, rhs)
}

/// Float subtraction.
pub fn fsub(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::FSub, lhs, rhs)
}

/// Float multiplication.
pub fn fmul(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::FMul, lhs, rhs)
}

/// Float division (IEEE semantics, never traps).
pub fn fdiv(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::FDiv, lhs, rhs)
}

/// Float minimum.
pub fn fmin(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::FMin, lhs, rhs)
}

/// Float maximum.
pub fn fmax(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::FMax, lhs, rhs)
}

/// 1 if `lhs < rhs` as floats else 0.
pub fn flt_(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::FLt, lhs, rhs)
}

/// 1 if `lhs <= rhs` as floats else 0.
pub fn fle(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::FLe, lhs, rhs)
}

/// 1 if `lhs > rhs` as floats else 0.
pub fn fgt(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::FLt, rhs, lhs)
}

/// 1 if `lhs >= rhs` as floats else 0.
pub fn fge(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::FLe, rhs, lhs)
}

/// 1 if equal as floats else 0 (IEEE: NaN != NaN).
pub fn feq(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::FEq, lhs, rhs)
}

/// Float negation.
pub fn fneg(e: Expr) -> Expr {
    un(UnOp::FNeg, e)
}

/// Float absolute value.
pub fn fabs(e: Expr) -> Expr {
    un(UnOp::FAbs, e)
}

/// Float square root.
pub fn fsqrt(e: Expr) -> Expr {
    un(UnOp::FSqrt, e)
}

/// Signed integer → `f64`.
pub fn i2f(e: Expr) -> Expr {
    un(UnOp::I2F, e)
}

/// `f64` → signed integer (truncating).
pub fn f2i(e: Expr) -> Expr {
    un(UnOp::F2I, e)
}

/// `var = expr`.
pub fn assign(var: Var, expr: Expr) -> Stmt {
    Stmt::Assign(var, expr)
}

/// `array[index] = value`.
pub fn store(array: Array, index: Expr, value: Expr) -> Stmt {
    Stmt::Store(array, index, value)
}

/// `if (cond != 0) { then } else { otherwise }`.
pub fn if_else(cond: Expr, then: Vec<Stmt>, otherwise: Vec<Stmt>) -> Stmt {
    Stmt::If(cond, then, otherwise)
}

/// `if (cond != 0) { then }`.
pub fn if_(cond: Expr, then: Vec<Stmt>) -> Stmt {
    Stmt::If(cond, then, Vec::new())
}

/// `while (cond != 0) { body }`.
pub fn while_(cond: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::While(cond, body)
}

/// C-style counted loop: `for (i = start; i < end; i += 1) { body }`.
///
/// `end` is re-evaluated every iteration, so it must not depend on `body`.
pub fn for_(i: Var, start: Expr, end: Expr, mut body: Vec<Stmt>) -> Stmt {
    body.push(assign(i, add(v(i), int(1))));
    Stmt::While(lt(v(i), end.clone()), body).prepended(assign(i, start))
}

/// Emit the expression value to the program output buffer.
pub fn out(expr: Expr) -> Stmt {
    Stmt::Out(expr)
}

/// Internal support for `for_`: a while preceded by its init statement.
trait Prepend {
    fn prepended(self, init: Stmt) -> Stmt;
}

impl Prepend for Stmt {
    fn prepended(self, init: Stmt) -> Stmt {
        // Wrap in a once-executed block using If(1) — keeps Stmt a tree.
        Stmt::If(Expr::Int(1), vec![init, self], Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModuleBuilder;
    use glaive_sim::{run, ExecConfig};

    fn exec(m: ModuleBuilder) -> Vec<u64> {
        let compiled = m.compile().expect("compiles");
        let r = run(compiled.program(), &[], &ExecConfig::default());
        assert!(
            r.status.is_clean(),
            "program did not halt cleanly: {:?}",
            r.status
        );
        r.output
    }

    #[test]
    fn comparison_helpers_match_semantics() {
        let mut m = ModuleBuilder::new("cmp");
        let x = m.var("x");
        m.push(assign(x, int(5)));
        m.push(out(le(v(x), int(5))));
        m.push(out(le(v(x), int(4))));
        m.push(out(ge(v(x), int(5))));
        m.push(out(ge(v(x), int(6))));
        m.push(out(ne(v(x), int(5))));
        m.push(out(ne(v(x), int(4))));
        m.push(out(gt(v(x), int(4))));
        assert_eq!(exec(m), vec![1, 0, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn for_loop_counts() {
        let mut m = ModuleBuilder::new("for");
        let (i, n) = (m.var("i"), m.var("n"));
        m.push(assign(n, int(0)));
        m.push(for_(i, int(0), int(5), vec![assign(n, add(v(n), int(2)))]));
        m.push(out(v(n)));
        m.push(out(v(i)));
        assert_eq!(exec(m), vec![10, 5]);
    }

    #[test]
    fn float_roundtrip_through_output() {
        let mut m = ModuleBuilder::new("f");
        let x = m.var("x");
        m.push(assign(x, fmul(flt(1.5), flt(2.0))));
        m.push(out(v(x)));
        assert_eq!(exec(m), vec![3.0f64.to_bits()]);
    }
}
