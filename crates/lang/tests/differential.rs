//! Differential testing: the AST interpreter versus compile-and-simulate
//! on randomly generated programs. Any divergence indicates a bug in the
//! code generator, the simulator, or the interpreter. Programs come from a
//! deterministic inline RNG so the suite builds offline with no external
//! crates.

use glaive_lang::{dsl::*, Expr, ModuleBuilder, Var};
use glaive_sim::{run, ExecConfig};

const NUM_VARS: usize = 6;
const ARRAY_LEN: i64 = 8;
const CASES: u64 = 128;

/// SplitMix64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn seeds(&mut self) -> Vec<i64> {
        (0..NUM_VARS).map(|_| self.next() as i64).collect()
    }

    fn op(&mut self) -> Op {
        match self.below(7) {
            0 => Op::Arith {
                d: self.next() as u8,
                a: self.next() as u8,
                b: self.next() as u8,
                op: self.next() as u8,
            },
            1 => Op::Float {
                d: self.next() as u8,
                a: self.next() as u8,
                b: self.next() as u8,
                op: self.next() as u8,
            },
            2 => Op::Store {
                a: self.next() as u8,
                b: self.next() as u8,
            },
            3 => Op::Load {
                d: self.next() as u8,
                a: self.next() as u8,
            },
            4 => Op::Select {
                d: self.next() as u8,
                a: self.next() as u8,
                b: self.next() as u8,
            },
            5 => Op::Loop {
                d: self.next() as u8,
                n: 1 + self.below(5) as u8,
            },
            _ => Op::Out {
                a: self.next() as u8,
            },
        }
    }

    fn ops(&mut self, max_len: u64) -> Vec<Op> {
        (0..1 + self.below(max_len)).map(|_| self.op()).collect()
    }
}

/// Recipe for one generated statement.
#[derive(Debug, Clone)]
enum Op {
    /// var[d] = int-expr over vars a, b with operator `op`.
    Arith { d: u8, a: u8, b: u8, op: u8 },
    /// var[d] = float-expr over vars a, b with operator `op`.
    Float { d: u8, a: u8, b: u8, op: u8 },
    /// arr[var[a] mod LEN] = var[b].
    Store { a: u8, b: u8 },
    /// var[d] = arr[var[a] mod LEN].
    Load { d: u8, a: u8 },
    /// if (var[a] < var[b]) { var[d] = var[a] } else { var[d] = var[b] }.
    Select { d: u8, a: u8, b: u8 },
    /// bounded counted loop accumulating into var[d].
    Loop { d: u8, n: u8 },
    /// emit var[a].
    Out { a: u8 },
}

/// Builds the module described by the seeds and recipe. The loop counter
/// variable is reserved separately so recipes cannot corrupt it.
fn build(seeds: &[i64], ops: &[Op]) -> ModuleBuilder {
    let mut m = ModuleBuilder::new("diff");
    let vars: Vec<Var> = (0..NUM_VARS).map(|k| m.var(format!("v{k}"))).collect();
    let counter = m.var("counter");
    let arr = m.array("arr", ARRAY_LEN as usize);
    let vat = |i: u8| vars[(i as usize) % NUM_VARS];
    for (k, &s) in seeds.iter().enumerate() {
        m.push(assign(vars[k % NUM_VARS], int(s)));
    }
    let int_expr = |a: Expr, b: Expr, op: u8| -> Expr {
        match op % 10 {
            0 => add(a, b),
            1 => sub(a, b),
            2 => mul(a, b),
            3 => and(a, b),
            4 => or(a, b),
            5 => xor(a, b),
            6 => shl(a, and(b, int(63))),
            7 => sra(a, and(b, int(63))),
            8 => lt(a, b),
            _ => eq(a, b),
        }
    };
    // Float ops run on sanitised operands (i2f of ints) so NaN payloads and
    // signalling bits cannot diverge.
    let float_expr = |a: Expr, b: Expr, op: u8| -> Expr {
        let (fa, fb) = (i2f(a), i2f(b));
        match op % 6 {
            0 => f2i(fadd(fa, fb)),
            1 => f2i(fsub(fa, fb)),
            2 => f2i(fmul(fa, fb)),
            3 => flt_(fa, fb),
            4 => f2i(fmin(fa, fb)),
            _ => f2i(fmax(fa, fb)),
        }
    };
    for op in ops {
        match *op {
            Op::Arith { d, a, b, op } => {
                m.push(assign(vat(d), int_expr(v(vat(a)), v(vat(b)), op)));
            }
            Op::Float { d, a, b, op } => {
                m.push(assign(vat(d), float_expr(v(vat(a)), v(vat(b)), op)));
            }
            Op::Store { a, b } => {
                let idx = and(v(vat(a)), int(ARRAY_LEN - 1));
                m.push(store(arr, idx, v(vat(b))));
            }
            Op::Load { d, a } => {
                let idx = and(v(vat(a)), int(ARRAY_LEN - 1));
                m.push(assign(vat(d), ld(arr, idx)));
            }
            Op::Select { d, a, b } => {
                m.push(if_else(
                    lt(v(vat(a)), v(vat(b))),
                    vec![assign(vat(d), v(vat(a)))],
                    vec![assign(vat(d), v(vat(b)))],
                ));
            }
            Op::Loop { d, n } => {
                m.push(for_(
                    counter,
                    int(0),
                    int(n as i64),
                    vec![assign(vat(d), add(v(vat(d)), v(counter)))],
                ));
            }
            Op::Out { a } => {
                m.push(out(v(vat(a))));
            }
        }
    }
    // Always emit every variable so silent state divergence is caught.
    for &var in &vars {
        m.push(out(v(var)));
    }
    m
}

/// Interpreter and compiled execution agree bit-for-bit on every
/// generated program.
#[test]
fn interpreter_matches_compiled_execution() {
    let mut rng = Rng(31);
    for _ in 0..CASES {
        let seeds = rng.seeds();
        let ops = rng.ops(24);
        let module = build(&seeds, &ops);
        let interpreted = module.interpret(&[], 1_000_000);
        let compiled = module.compile().expect("generated programs compile");
        let simulated = run(compiled.program(), &[], &ExecConfig::default());
        match interpreted {
            Ok(output) => {
                assert!(
                    simulated.status.is_clean(),
                    "sim diverged: {:?}",
                    simulated.status
                );
                assert_eq!(output, simulated.output);
            }
            Err(e) => {
                assert!(
                    !simulated.status.is_clean(),
                    "interp failed ({e}) but sim was clean"
                );
            }
        }
    }
}

/// Initial memory images feed both executions identically.
#[test]
fn initial_memory_agrees() {
    let mut rng = Rng(32);
    for _ in 0..CASES {
        let seeds = rng.seeds();
        let ops = rng.ops(14);
        let mem: Vec<u64> = (0..ARRAY_LEN as usize).map(|_| rng.next()).collect();
        let module = build(&seeds, &ops);
        let interpreted = module.interpret(&mem, 1_000_000);
        let compiled = module.compile().expect("generated programs compile");
        let simulated = run(compiled.program(), &mem, &ExecConfig::default());
        if let Ok(output) = interpreted {
            assert!(simulated.status.is_clean());
            assert_eq!(output, simulated.output);
        }
    }
}
