//! The machine abstraction: everything the simulator, fault model, and
//! CDFG extraction need to know about an instruction set, as one trait.
//!
//! `Isa` is a *backend marker*: a zero-sized type whose associated items
//! describe the machine (word size, register-file shape, instruction type)
//! and whose methods give per-instruction semantics (operand lists, control
//! flow, memory aliasing, execution). `glaive-sim`, `glaive-faultsim` and
//! `glaive-cdfg` are generic over it; [`GlaiveIsa`] is the first backend
//! (the original concrete ISA of this workspace) and [`crate::rv::RvIsa`]
//! is a RISC-V-like second backend used for cross-ISA transfer experiments.
//!
//! # What may vary between backends
//!
//! Instruction type, encoding format and length, opcode table, branch
//! semantics, trap conditions — anything behind the trait methods.
//!
//! # What must NOT vary
//!
//! The *portable feature vocabulary* (see DESIGN.md §13): every backend
//! maps its opcodes into the canonical opcode index space of
//! [`Opcode::index`](crate::Opcode::index) (`opcode_index` must be
//! `< Opcode::COUNT`), uses at most [`NUM_REGS`](crate::NUM_REGS)
//! registers and at most [`WORD_BITS`](crate::WORD_BITS)-bit words. That is
//! what lets a GNN trained on one backend's CDFGs score another backend's
//! programs without reshaping its input layer.

use std::fmt;

use crate::instr::{DecodeError, Instr, INSTR_ENCODING_LEN};
use crate::opcode::{AluOp, CvtOp, FpuOp, FpuUnaryOp, OpcodeClass};
use crate::reg::{Reg, NUM_REGS, WORD_BITS};

/// The original concrete ISA of this workspace — "ISA-A" in cross-ISA
/// experiments. A zero-sized backend marker; its instruction type is
/// [`Instr`] and its semantics are exactly the pre-trait simulator's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlaiveIsa;

/// Static control flow of one instruction, as seen by CFG construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Falls through to `pc + 1`.
    Fallthrough,
    /// Unconditionally transfers to the absolute instruction index.
    Jump(usize),
    /// Conditionally transfers to the absolute instruction index, else
    /// falls through.
    Branch(usize),
    /// Stops execution; no successors.
    Halt,
}

impl Flow {
    /// The branch/jump target, if any.
    pub fn target(self) -> Option<usize> {
        match self {
            Flow::Jump(t) | Flow::Branch(t) => Some(t),
            Flow::Fallthrough | Flow::Halt => None,
        }
    }
}

/// Static memory behaviour of one instruction, as seen by the `D_M`
/// dependence analysis: whether it stores or loads, and its static alias
/// class (instructions with equal `alias` may access the same location).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
    /// Static alias class — for both current backends, the constant
    /// address offset.
    pub alias: i64,
}

/// The architectural state an instruction executes against: a flat register
/// file, a flat word-addressed data memory, and the output buffer.
///
/// Register-file width and memory size are fixed at construction; backends
/// interpret the `u64` cells according to their own word width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineState {
    /// Register file, indexed by [`Reg::index`].
    pub regs: Vec<u64>,
    /// Word-addressed data memory.
    pub mem: Vec<u64>,
    /// Values emitted by output instructions, in order.
    pub output: Vec<u64>,
    /// Static PC of the instruction being executed — set by the simulator
    /// before each [`Isa::execute`] call so link-register instructions
    /// (e.g. ISA-B `jal`) can materialise the return address.
    pub pc: usize,
}

impl MachineState {
    /// A zeroed machine with `num_regs` registers and the given memory
    /// image.
    pub fn new(num_regs: usize, mem: Vec<u64>) -> MachineState {
        MachineState {
            regs: vec![0; num_regs],
            mem,
            output: Vec::new(),
            pc: 0,
        }
    }
}

/// What the program counter does after an instruction executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Advance to `pc + 1`.
    Next,
    /// Transfer to the absolute instruction index.
    Goto(usize),
    /// Stop execution successfully.
    Halt,
}

/// A processor exception raised during execution. Any trap terminates the
/// program and classifies the run as a Crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Load from an address outside the data memory.
    OutOfBoundsLoad {
        /// The faulting word address.
        addr: u64,
    },
    /// Store to an address outside the data memory.
    OutOfBoundsStore {
        /// The faulting word address.
        addr: u64,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Control transferred outside the program text (e.g. fell off the end).
    InvalidPc {
        /// The invalid program counter.
        pc: usize,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfBoundsLoad { addr } => write!(f, "out-of-bounds load at {addr:#x}"),
            Trap::OutOfBoundsStore { addr } => write!(f, "out-of-bounds store at {addr:#x}"),
            Trap::DivByZero => write!(f, "integer divide by zero"),
            Trap::InvalidPc { pc } => write!(f, "invalid program counter {pc}"),
        }
    }
}

/// An instruction-set backend: the associated items describe the machine,
/// the methods give per-instruction semantics.
///
/// Implementors are zero-sized markers ([`GlaiveIsa`], [`crate::rv::RvIsa`]);
/// every generic structure in the workspace defaults its ISA parameter to
/// [`GlaiveIsa`], so existing ISA-A call sites compile — and behave —
/// exactly as before the abstraction existed.
pub trait Isa: Copy + Clone + fmt::Debug + PartialEq + Eq + Send + Sync + 'static {
    /// The instruction type of this backend.
    type Instr: Copy + fmt::Debug + fmt::Display + PartialEq + Send + Sync + 'static;

    /// Human-readable backend name (used in experiment reports).
    const NAME: &'static str;
    /// Width in bits of an architectural register (≤ canonical
    /// [`WORD_BITS`]).
    const WORD_BITS: usize;
    /// Number of architectural registers (≤ canonical [`NUM_REGS`]).
    const NUM_REGS: usize;
    /// Length in bytes of one encoded instruction.
    const INSTR_ENCODING_LEN: usize;

    /// Registers written by the instruction (destination operands).
    fn defs(instr: &Self::Instr) -> Vec<Reg>;
    /// Registers read by the instruction (source operands), in operand
    /// order; a register in two source slots is listed twice.
    fn uses(instr: &Self::Instr) -> Vec<Reg>;
    /// Index into the canonical opcode vocabulary
    /// (`< `[`Opcode::COUNT`](crate::Opcode::COUNT)): backends map their
    /// own opcode tables onto the shared one-hot feature space.
    fn opcode_index(instr: &Self::Instr) -> usize;
    /// The instruction's coarse class in the shared Table-I taxonomy.
    fn opcode_class(instr: &Self::Instr) -> OpcodeClass;
    /// Whether register operands are interpreted as `f64` bit patterns.
    fn is_float(instr: &Self::Instr) -> bool;
    /// Static control flow, for CFG and control-dependence analysis.
    fn flow(instr: &Self::Instr) -> Flow;
    /// Static memory behaviour, for the `D_M` dependence analysis.
    fn mem_access(instr: &Self::Instr) -> Option<MemAccess>;
    /// Fixed-width binary encoding (`INSTR_ENCODING_LEN` bytes); feeds
    /// campaign fingerprints and wire formats.
    fn encode(instr: &Self::Instr) -> Vec<u8>;
    /// Decodes an instruction previously produced by [`Isa::encode`].
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for truncated buffers, unknown tags/sub-opcodes, or
    /// out-of-range register indices. Must never panic on any byte pattern.
    fn decode(bytes: &[u8]) -> Result<Self::Instr, DecodeError>;
    /// Executes one instruction against the machine state.
    ///
    /// # Errors
    ///
    /// A [`Trap`] for processor exceptions (the run classifies as Crash).
    fn execute(instr: &Self::Instr, state: &mut MachineState) -> Result<Step, Trap>;
}

impl Isa for GlaiveIsa {
    type Instr = Instr;

    const NAME: &'static str = "glaive";
    const WORD_BITS: usize = WORD_BITS;
    const NUM_REGS: usize = NUM_REGS;
    const INSTR_ENCODING_LEN: usize = INSTR_ENCODING_LEN;

    fn defs(instr: &Instr) -> Vec<Reg> {
        instr.defs()
    }

    fn uses(instr: &Instr) -> Vec<Reg> {
        instr.uses()
    }

    fn opcode_index(instr: &Instr) -> usize {
        instr.opcode().index()
    }

    fn opcode_class(instr: &Instr) -> OpcodeClass {
        instr.opcode().class()
    }

    fn is_float(instr: &Instr) -> bool {
        instr.is_float()
    }

    fn flow(instr: &Instr) -> Flow {
        match *instr {
            Instr::Halt => Flow::Halt,
            Instr::Jump { target } => Flow::Jump(target),
            Instr::Branch { target, .. } => Flow::Branch(target),
            _ => Flow::Fallthrough,
        }
    }

    fn mem_access(instr: &Instr) -> Option<MemAccess> {
        match *instr {
            Instr::Load { offset, .. } => Some(MemAccess {
                is_store: false,
                alias: offset,
            }),
            Instr::Store { offset, .. } => Some(MemAccess {
                is_store: true,
                alias: offset,
            }),
            _ => None,
        }
    }

    fn encode(instr: &Instr) -> Vec<u8> {
        instr.encode().to_vec()
    }

    fn decode(bytes: &[u8]) -> Result<Instr, DecodeError> {
        let buf: &[u8; INSTR_ENCODING_LEN] =
            bytes.try_into().map_err(|_| DecodeError::Truncated {
                len: bytes.len(),
                want: INSTR_ENCODING_LEN,
            })?;
        Instr::decode(buf)
    }

    fn execute(instr: &Instr, state: &mut MachineState) -> Result<Step, Trap> {
        let r = |regs: &[u64], reg: Reg| regs[reg.index()];
        match *instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = alu_eval(op, r(&state.regs, rs1), r(&state.regs, rs2))?;
                state.regs[rd.index()] = v;
                Ok(Step::Next)
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let v = alu_eval(op, r(&state.regs, rs1), imm as u64)?;
                state.regs[rd.index()] = v;
                Ok(Step::Next)
            }
            Instr::Fpu { op, rd, rs1, rs2 } => {
                let a = f64::from_bits(r(&state.regs, rs1));
                let b = f64::from_bits(r(&state.regs, rs2));
                state.regs[rd.index()] = fpu_eval(op, a, b);
                Ok(Step::Next)
            }
            Instr::FpuUnary { op, rd, rs1 } => {
                let a = f64::from_bits(r(&state.regs, rs1));
                let v = match op {
                    FpuUnaryOp::FNeg => -a,
                    FpuUnaryOp::FAbs => a.abs(),
                    FpuUnaryOp::FSqrt => a.sqrt(),
                };
                state.regs[rd.index()] = v.to_bits();
                Ok(Step::Next)
            }
            Instr::Cvt { op, rd, rs1 } => {
                let x = r(&state.regs, rs1);
                state.regs[rd.index()] = match op {
                    CvtOp::IntToFloat => ((x as i64) as f64).to_bits(),
                    CvtOp::FloatToInt => (f64::from_bits(x) as i64) as u64,
                };
                Ok(Step::Next)
            }
            Instr::Li { rd, imm } => {
                state.regs[rd.index()] = imm as u64;
                Ok(Step::Next)
            }
            Instr::Mov { rd, rs1 } => {
                state.regs[rd.index()] = r(&state.regs, rs1);
                Ok(Step::Next)
            }
            Instr::Load { rd, base, offset } => {
                let addr = r(&state.regs, base).wrapping_add(offset as u64);
                let v = *state
                    .mem
                    .get(addr as usize)
                    .ok_or(Trap::OutOfBoundsLoad { addr })?;
                state.regs[rd.index()] = v;
                Ok(Step::Next)
            }
            Instr::Store { rs, base, offset } => {
                let addr = r(&state.regs, base).wrapping_add(offset as u64);
                let v = r(&state.regs, rs);
                // Large faulty addresses exceed usize on 32-bit hosts too;
                // the get_mut covers both range checks.
                let slot = state
                    .mem
                    .get_mut(addr as usize)
                    .ok_or(Trap::OutOfBoundsStore { addr })?;
                *slot = v;
                Ok(Step::Next)
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(r(&state.regs, rs1), r(&state.regs, rs2)) {
                    Ok(Step::Goto(target))
                } else {
                    Ok(Step::Next)
                }
            }
            Instr::Jump { target } => Ok(Step::Goto(target)),
            Instr::Out { rs1 } => {
                state.output.push(r(&state.regs, rs1));
                Ok(Step::Next)
            }
            Instr::Halt => Ok(Step::Halt),
        }
    }
}

fn alu_eval(op: AluOp, a: u64, b: u64) -> Result<u64, Trap> {
    let (sa, sb) = (a as i64, b as i64);
    Ok(match op {
        AluOp::Add => sa.wrapping_add(sb) as u64,
        AluOp::Sub => sa.wrapping_sub(sb) as u64,
        AluOp::Mul => sa.wrapping_mul(sb) as u64,
        AluOp::Div => {
            if sb == 0 {
                return Err(Trap::DivByZero);
            }
            sa.wrapping_div(sb) as u64
        }
        AluOp::Rem => {
            if sb == 0 {
                return Err(Trap::DivByZero);
            }
            sa.wrapping_rem(sb) as u64
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32),
        AluOp::Shr => a.wrapping_shr(b as u32),
        AluOp::Sra => sa.wrapping_shr(b as u32) as u64,
        AluOp::Slt => u64::from(sa < sb),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Seq => u64::from(a == b),
    })
}

fn fpu_eval(op: FpuOp, a: f64, b: f64) -> u64 {
    match op {
        FpuOp::FAdd => (a + b).to_bits(),
        FpuOp::FSub => (a - b).to_bits(),
        FpuOp::FMul => (a * b).to_bits(),
        FpuOp::FDiv => (a / b).to_bits(),
        FpuOp::FMin => a.min(b).to_bits(),
        FpuOp::FMax => a.max(b).to_bits(),
        FpuOp::FLt => u64::from(a < b),
        FpuOp::FLe => u64::from(a <= b),
        FpuOp::FEq => u64::from(a == b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::BranchCond;

    #[test]
    fn alu_semantics() {
        assert_eq!(alu_eval(AluOp::Add, 2, 3).unwrap(), 5);
        assert_eq!(alu_eval(AluOp::Sub, 2, 3).unwrap(), (-1i64) as u64);
        assert_eq!(alu_eval(AluOp::Mul, u64::MAX, 2).unwrap(), (-2i64) as u64);
        assert_eq!(
            alu_eval(AluOp::Div, (-7i64) as u64, 2).unwrap(),
            (-3i64) as u64
        );
        assert_eq!(alu_eval(AluOp::Rem, 7, 3).unwrap(), 1);
        assert_eq!(alu_eval(AluOp::Div, 1, 0), Err(Trap::DivByZero));
        assert_eq!(alu_eval(AluOp::Rem, 1, 0), Err(Trap::DivByZero));
        // i64::MIN / -1 wraps instead of trapping on overflow.
        assert_eq!(
            alu_eval(AluOp::Div, i64::MIN as u64, (-1i64) as u64).unwrap(),
            i64::MIN as u64
        );
        assert_eq!(alu_eval(AluOp::Slt, (-1i64) as u64, 0).unwrap(), 1);
        assert_eq!(alu_eval(AluOp::Sltu, (-1i64) as u64, 0).unwrap(), 0);
        assert_eq!(alu_eval(AluOp::Shl, 1, 4).unwrap(), 16);
        assert_eq!(
            alu_eval(AluOp::Sra, (-16i64) as u64, 2).unwrap(),
            (-4i64) as u64
        );
        assert_eq!(alu_eval(AluOp::Shr, (-16i64) as u64, 60).unwrap(), 15);
        assert_eq!(alu_eval(AluOp::Seq, 4, 4).unwrap(), 1);
    }

    #[test]
    fn fpu_semantics() {
        let bits = |x: f64| x.to_bits();
        assert_eq!(fpu_eval(FpuOp::FAdd, 1.5, 2.25), bits(3.75));
        assert_eq!(fpu_eval(FpuOp::FDiv, 1.0, 0.0), bits(f64::INFINITY));
        assert_eq!(fpu_eval(FpuOp::FLt, 1.0, 2.0), 1);
        assert_eq!(fpu_eval(FpuOp::FLe, 2.0, 2.0), 1);
        assert_eq!(fpu_eval(FpuOp::FEq, f64::NAN, f64::NAN), 0);
        assert_eq!(fpu_eval(FpuOp::FMin, 1.0, 2.0), bits(1.0));
        assert_eq!(fpu_eval(FpuOp::FMax, 1.0, 2.0), bits(2.0));
    }

    #[test]
    fn flow_classifies_control() {
        assert_eq!(GlaiveIsa::flow(&Instr::Halt), Flow::Halt);
        assert_eq!(GlaiveIsa::flow(&Instr::Jump { target: 3 }), Flow::Jump(3));
        let br = Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg(0),
            rs2: Reg(1),
            target: 7,
        };
        assert_eq!(GlaiveIsa::flow(&br), Flow::Branch(7));
        assert_eq!(GlaiveIsa::flow(&br).target(), Some(7));
        assert_eq!(
            GlaiveIsa::flow(&Instr::Li { rd: Reg(1), imm: 0 }),
            Flow::Fallthrough
        );
    }

    #[test]
    fn mem_access_classifies_loads_and_stores() {
        let ld = Instr::Load {
            rd: Reg(1),
            base: Reg(2),
            offset: 5,
        };
        let st = Instr::Store {
            rs: Reg(1),
            base: Reg(2),
            offset: 5,
        };
        assert_eq!(
            GlaiveIsa::mem_access(&ld),
            Some(MemAccess {
                is_store: false,
                alias: 5
            })
        );
        assert_eq!(
            GlaiveIsa::mem_access(&st),
            Some(MemAccess {
                is_store: true,
                alias: 5
            })
        );
        assert_eq!(GlaiveIsa::mem_access(&Instr::Halt), None);
    }

    #[test]
    fn trait_encode_matches_inherent_encode() {
        let i = Instr::AluImm {
            op: AluOp::Mul,
            rd: Reg(4),
            rs1: Reg(5),
            imm: -17,
        };
        assert_eq!(GlaiveIsa::encode(&i), i.encode().to_vec());
        assert_eq!(GlaiveIsa::decode(&GlaiveIsa::encode(&i)).unwrap(), i);
        assert!(matches!(
            GlaiveIsa::decode(&[0u8; 3]),
            Err(DecodeError::Truncated { len: 3, want: 16 })
        ));
    }

    #[test]
    fn execute_matches_word_machine_expectations() {
        let mut state = MachineState::new(NUM_REGS, vec![0; 4]);
        state.regs[1] = 21;
        let add = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(2),
            rs1: Reg(1),
            rs2: Reg(1),
        };
        assert_eq!(GlaiveIsa::execute(&add, &mut state), Ok(Step::Next));
        assert_eq!(state.regs[2], 42);
        let out = Instr::Out { rs1: Reg(2) };
        GlaiveIsa::execute(&out, &mut state).unwrap();
        assert_eq!(state.output, vec![42]);
        let bad_load = Instr::Load {
            rd: Reg(3),
            base: Reg(2),
            offset: 0,
        };
        assert_eq!(
            GlaiveIsa::execute(&bad_load, &mut state),
            Err(Trap::OutOfBoundsLoad { addr: 42 })
        );
    }
}
