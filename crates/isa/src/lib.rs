//! A 64-bit RISC-like instruction set used as the compilation and fault
//! injection target for the GLAIVE reproduction.
//!
//! The paper analyses x86 binaries produced by `g++` and disassembled with
//! `objdump`. What GLAIVE actually consumes is not x86 itself but the
//! *structure* of a register machine program: which registers an instruction
//! reads and writes, whether it is a control / memory / arithmetic
//! instruction, and the bit positions inside each operand register. This
//! crate provides exactly that structure: a compact register ISA with
//! integer, floating-point, memory, control and output instructions.
//!
//! # Example
//!
//! ```
//! use glaive_isa::{Asm, Reg, AluOp, BranchCond};
//!
//! // Sum the integers 1..=10 into r1 and emit the result.
//! let mut asm = Asm::new("sum");
//! let (acc, i, one, lim) = (Reg(1), Reg(2), Reg(3), Reg(4));
//! asm.li(acc, 0);
//! asm.li(i, 1);
//! asm.li(one, 1);
//! asm.li(lim, 10);
//! let loop_top = asm.label();
//! asm.bind(loop_top);
//! asm.alu(AluOp::Add, acc, acc, i);
//! asm.alu(AluOp::Add, i, i, one);
//! asm.branch(BranchCond::Le, i, lim, loop_top);
//! asm.out(acc);
//! asm.halt();
//! let program = asm.finish().expect("labels resolve");
//! assert!(program.len() > 0);
//! ```

mod asm;
mod instr;
mod isa;
mod opcode;
mod program;
mod reg;
pub mod rv;
mod slot;

pub use asm::{Asm, AsmError, Label};
pub use instr::{DecodeError, Instr, INSTR_ENCODING_LEN};
pub use isa::{Flow, GlaiveIsa, Isa, MachineState, MemAccess, Step, Trap};
pub use opcode::{AluOp, BranchCond, CvtOp, FpuOp, FpuUnaryOp, Opcode, OpcodeClass};
pub use program::{Program, ProgramError};
pub use reg::{Reg, NUM_REGS, WORD_BITS};
pub use rv::{
    RvAluOp, RvAsm, RvBranchCond, RvImmOp, RvInstr, RvIsa, RvLabel, RV_INSTR_ENCODING_LEN,
};
pub use slot::OperandSlot;
