use std::fmt;

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

/// Width in bits of every architectural register.
pub const WORD_BITS: usize = 64;

/// An architectural register index in `0..NUM_REGS`.
///
/// Registers are 64 bits wide and untyped at the ISA level: integer
/// instructions interpret the contents as `u64`/`i64`, floating-point
/// instructions reinterpret the same bits as an IEEE-754 `f64`.
///
/// # Example
///
/// ```
/// use glaive_isa::Reg;
/// let r = Reg(7);
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "r7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The register's index as a `usize`, suitable for register-file lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if the index is a valid architectural register.
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < NUM_REGS
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(Reg(0).to_string(), "r0");
        assert_eq!(Reg(31).index(), 31);
    }

    #[test]
    fn validity_boundary() {
        assert!(Reg(31).is_valid());
        assert!(!Reg(32).is_valid());
    }
}
