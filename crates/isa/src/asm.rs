use std::fmt;

use crate::instr::Instr;
use crate::opcode::{AluOp, BranchCond, CvtOp, FpuOp, FpuUnaryOp};
use crate::program::{Program, ProgramError};
use crate::reg::Reg;

/// A forward-referenceable code label created by [`Asm::label`] and bound to
/// an instruction index by [`Asm::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An assembler that builds a [`Program`] instruction by instruction with
/// symbolic labels for control flow.
///
/// # Example
///
/// ```
/// use glaive_isa::{Asm, Reg, BranchCond};
/// let mut asm = Asm::new("skip");
/// let done = asm.label();
/// asm.li(Reg(1), 0);
/// asm.branch(BranchCond::Eq, Reg(1), Reg(1), done); // always taken
/// asm.li(Reg(1), 99);                               // skipped
/// asm.bind(done);
/// asm.out(Reg(1));
/// asm.halt();
/// let p = asm.finish()?;
/// assert_eq!(p.len(), 5);
/// # Ok::<(), glaive_isa::AsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Asm {
    name: String,
    instrs: Vec<Instr>,
    /// label id → bound instruction index (usize::MAX = unbound).
    bindings: Vec<usize>,
    mem_words: usize,
}

const UNBOUND: usize = usize::MAX;

impl Asm {
    /// Creates an empty assembler for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Asm {
            name: name.into(),
            instrs: Vec::new(),
            bindings: Vec::new(),
            mem_words: 0,
        }
    }

    /// Sets the data-memory size in 64-bit words (default 0).
    pub fn set_mem_words(&mut self, words: usize) -> &mut Self {
        self.mem_words = words;
        self
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.bindings.push(UNBOUND);
        Label(self.bindings.len() - 1)
    }

    /// Binds `label` to the next instruction to be emitted.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound — rebinding silently changes
    /// already-emitted branches.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert_eq!(self.bindings[label.0], UNBOUND, "label bound twice");
        self.bindings[label.0] = self.instrs.len();
        self
    }

    /// Index of the next instruction to be emitted.
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Emits a raw instruction. Control-flow instructions emitted this way
    /// use absolute targets; prefer [`Asm::branch`]/[`Asm::jump`] for
    /// label-based targets.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Emits `rd = rs1 op rs2`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Instr::Alu { op, rd, rs1, rs2 })
    }

    /// Emits `rd = rs1 op imm`.
    pub fn alu_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Instr::AluImm { op, rd, rs1, imm })
    }

    /// Emits `rd = rs1 op rs2` on the `f64` view.
    pub fn fpu(&mut self, op: FpuOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Instr::Fpu { op, rd, rs1, rs2 })
    }

    /// Emits `rd = op rs1` on the `f64` view.
    pub fn fpu_unary(&mut self, op: FpuUnaryOp, rd: Reg, rs1: Reg) -> &mut Self {
        self.push(Instr::FpuUnary { op, rd, rs1 })
    }

    /// Emits an int/float conversion.
    pub fn cvt(&mut self, op: CvtOp, rd: Reg, rs1: Reg) -> &mut Self {
        self.push(Instr::Cvt { op, rd, rs1 })
    }

    /// Emits `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.push(Instr::Li { rd, imm })
    }

    /// Emits `rd = f` by materialising the `f64` bit pattern.
    pub fn li_f(&mut self, rd: Reg, f: f64) -> &mut Self {
        self.push(Instr::Li {
            rd,
            imm: f.to_bits() as i64,
        })
    }

    /// Emits `rd = rs1`.
    pub fn mov(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.push(Instr::Mov { rd, rs1 })
    }

    /// Emits `rd = mem[base + offset]`.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Instr::Load { rd, base, offset })
    }

    /// Emits `mem[base + offset] = rs`.
    pub fn store(&mut self, rs: Reg, base: Reg, offset: i64) -> &mut Self {
        self.push(Instr::Store { rs, base, offset })
    }

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        // Targets are patched in finish(); stash the label id in the target.
        self.push(Instr::Branch {
            cond,
            rs1,
            rs2,
            target: Self::label_marker(label),
        })
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.push(Instr::Jump {
            target: Self::label_marker(label),
        })
    }

    /// Emits `out rs1`.
    pub fn out(&mut self, rs1: Reg) -> &mut Self {
        self.push(Instr::Out { rs1 })
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    // Label ids are stored as targets beyond any realistic program size and
    // patched during finish(). The offset keeps them distinguishable from
    // genuine absolute targets.
    const LABEL_BASE: usize = usize::MAX / 2;

    fn label_marker(label: Label) -> usize {
        Self::LABEL_BASE + label.0
    }

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        for (pc, instr) in self.instrs.iter_mut().enumerate() {
            let patched = match *instr {
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } if target >= Self::LABEL_BASE => {
                    let id = target - Self::LABEL_BASE;
                    let bound = self.bindings[id];
                    if bound == UNBOUND {
                        return Err(AsmError::UnboundLabel { label: id, pc });
                    }
                    Some(Instr::Branch {
                        cond,
                        rs1,
                        rs2,
                        target: bound,
                    })
                }
                Instr::Jump { target } if target >= Self::LABEL_BASE => {
                    let id = target - Self::LABEL_BASE;
                    let bound = self.bindings[id];
                    if bound == UNBOUND {
                        return Err(AsmError::UnboundLabel { label: id, pc });
                    }
                    Some(Instr::Jump { target: bound })
                }
                _ => None,
            };
            if let Some(p) = patched {
                *instr = p;
            }
        }
        Program::try_new(self.name, self.instrs, self.mem_words).map_err(AsmError::Program)
    }
}

/// Error produced when finalising an [`Asm`] build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsmError {
    /// A branch or jump references a label that was never bound.
    UnboundLabel {
        /// The numeric label id.
        label: usize,
        /// The instruction index of the referencing branch/jump.
        pc: usize,
    },
    /// The finished instruction sequence failed [`Program::try_new`]
    /// validation (e.g. a raw `push` with an out-of-range absolute target).
    Program(ProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label, pc } => {
                write!(f, "instruction {pc} references unbound label {label}")
            }
            AsmError::Program(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut asm = Asm::new("t");
        let top = asm.label();
        let end = asm.label();
        asm.bind(top);
        asm.li(Reg(1), 1);
        asm.branch(BranchCond::Eq, Reg(1), Reg(1), end);
        asm.jump(top);
        asm.bind(end);
        asm.halt();
        let p = asm.finish().expect("resolves");
        assert_eq!(p.instrs()[1].target(), Some(3));
        assert_eq!(p.instrs()[2].target(), Some(0));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Asm::new("t");
        let l = asm.label();
        asm.jump(l);
        assert_eq!(
            asm.finish(),
            Err(AsmError::UnboundLabel { label: 0, pc: 0 })
        );
    }

    #[test]
    fn raw_push_with_dangling_target_is_an_error() {
        let mut asm = Asm::new("t");
        asm.push(Instr::Jump { target: 50 });
        asm.halt();
        assert_eq!(
            asm.finish(),
            Err(AsmError::Program(ProgramError::DanglingTarget {
                pc: 0,
                target: 50
            }))
        );
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_panics() {
        let mut asm = Asm::new("t");
        let l = asm.label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn float_immediates_roundtrip() {
        let mut asm = Asm::new("t");
        asm.li_f(Reg(1), 3.5);
        asm.halt();
        let p = asm.finish().expect("resolves");
        match p.instrs()[0] {
            Instr::Li { imm, .. } => assert_eq!(f64::from_bits(imm as u64), 3.5),
            ref other => panic!("expected li, got {other}"),
        }
    }

    #[test]
    fn mem_words_propagates() {
        let mut asm = Asm::new("t");
        asm.set_mem_words(128);
        asm.halt();
        assert_eq!(asm.finish().expect("resolves").mem_words(), 128);
    }
}
