use std::fmt;

use crate::isa::{GlaiveIsa, Isa};

/// A complete machine program: a named, fixed sequence of instructions plus
/// the size of the flat data memory it executes against.
///
/// Generic over the instruction-set backend `I`; the default is
/// [`GlaiveIsa`] (ISA-A), so pre-trait call sites keep compiling unchanged.
/// Instruction indices double as "static PC" values (the auxiliary feature of
/// Table I in the paper); branch/jump targets are instruction indices.
///
/// # Example
///
/// ```
/// use glaive_isa::{Program, Instr, Reg};
/// let p: Program = Program::try_new("tiny", vec![Instr::Li { rd: Reg(1), imm: 42 },
///                                               Instr::Out { rs1: Reg(1) },
///                                               Instr::Halt], 16).unwrap();
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.name(), "tiny");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program<I: Isa = GlaiveIsa> {
    name: String,
    instrs: Vec<I::Instr>,
    mem_words: usize,
}

/// Why an instruction sequence cannot form a valid [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch/jump at `pc` targets an instruction index beyond the
    /// program.
    DanglingTarget {
        /// Static PC of the offending instruction.
        pc: usize,
        /// Its out-of-range target index.
        target: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::DanglingTarget { pc, target } => {
                write!(f, "instruction {pc} targets out-of-range index {target}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl<I: Isa> Program<I> {
    /// Creates a program from a name, instruction sequence and data-memory
    /// size (in words), validating every branch/jump target so foreign
    /// instruction streams are rejected with a typed error rather than a
    /// later panic.
    ///
    /// # Errors
    ///
    /// [`ProgramError::DanglingTarget`] when an instruction's target lies
    /// beyond the instruction sequence (a target *equal to* the length is
    /// allowed: it halts by falling off the end).
    pub fn try_new(
        name: impl Into<String>,
        instrs: Vec<I::Instr>,
        mem_words: usize,
    ) -> Result<Self, ProgramError> {
        for (pc, instr) in instrs.iter().enumerate() {
            if let Some(target) = I::flow(instr).target() {
                if target > instrs.len() {
                    return Err(ProgramError::DanglingTarget { pc, target });
                }
            }
        }
        Ok(Program {
            name: name.into(),
            instrs,
            mem_words,
        })
    }

    /// The program's name (benchmark identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence.
    pub fn instrs(&self) -> &[I::Instr] {
        &self.instrs
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Size of the data memory in words.
    pub fn mem_words(&self) -> usize {
        self.mem_words
    }

    /// The instruction at `pc`, if in range.
    pub fn get(&self, pc: usize) -> Option<&I::Instr> {
        self.instrs.get(pc)
    }

    /// Renders the whole program as an assembly listing, one instruction per
    /// line, prefixed with its static PC.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (pc, instr) in self.instrs.iter().enumerate() {
            out.push_str(&format!("{pc:5}: {instr}\n"));
        }
        out
    }
}

impl<I: Isa> fmt::Display for Program<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} instrs, {} mem words)",
            self.name,
            self.len(),
            self.mem_words
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::opcode::BranchCond;
    use crate::reg::Reg;

    #[test]
    fn disassembly_lists_every_instruction() {
        let p: Program =
            Program::try_new("t", vec![Instr::Li { rd: Reg(1), imm: 1 }, Instr::Halt], 8).unwrap();
        let listing = p.disassemble();
        assert!(listing.contains("0: li r1, 1"));
        assert!(listing.contains("1: halt"));
        assert_eq!(listing.lines().count(), 2);
    }

    #[test]
    fn try_new_reports_dangling_targets_without_panicking() {
        let bad: Result<Program, _> = Program::try_new(
            "bad",
            vec![
                Instr::Branch {
                    cond: BranchCond::Eq,
                    rs1: Reg(0),
                    rs2: Reg(0),
                    target: 100,
                },
                Instr::Halt,
            ],
            8,
        );
        assert_eq!(
            bad,
            Err(ProgramError::DanglingTarget { pc: 0, target: 100 })
        );
        let dangling: Result<Program, _> =
            Program::try_new("bad", vec![Instr::Jump { target: 7 }, Instr::Halt], 8);
        assert_eq!(
            dangling,
            Err(ProgramError::DanglingTarget { pc: 0, target: 7 })
        );
        let ok: Result<Program, _> =
            Program::try_new("ok", vec![Instr::Jump { target: 2 }, Instr::Halt], 8);
        assert!(ok.is_ok());
    }

    #[test]
    fn accessors() {
        let p: Program = Program::try_new("t", vec![Instr::Halt], 4).unwrap();
        assert_eq!(p.mem_words(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.get(0), Some(&Instr::Halt));
        assert_eq!(p.get(1), None);
    }
}
