use std::fmt;

/// Integer ALU operations for [`Instr::Alu`](crate::Instr::Alu) and
/// [`Instr::AluImm`](crate::Instr::AluImm).
///
/// `Div` and `Rem` trap (processor exception → program Crash) when the
/// divisor is zero, mirroring the divide-by-zero crash class of the paper's
/// fault model. Shift amounts are taken modulo 64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluOp {
    /// Wrapping signed addition.
    Add,
    /// Wrapping signed subtraction.
    Sub,
    /// Wrapping signed multiplication.
    Mul,
    /// Signed division; traps on a zero divisor.
    Div,
    /// Signed remainder; traps on a zero divisor.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (amount mod 64).
    Shl,
    /// Logical shift right (amount mod 64).
    Shr,
    /// Arithmetic shift right (amount mod 64).
    Sra,
    /// Set to 1 if signed less-than, else 0.
    Slt,
    /// Set to 1 if unsigned less-than, else 0.
    Sltu,
    /// Set to 1 if equal, else 0.
    Seq,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 14] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Seq,
    ];

    /// Mnemonic used in disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Seq => "seq",
        }
    }

    /// Returns `true` if the operation can raise a trap (divide-by-zero).
    pub fn can_trap(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Rem)
    }
}

/// Binary floating-point operations; operands are register bits viewed as
/// IEEE-754 `f64`. Comparison variants produce an integer 0/1 result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FpuOp {
    /// `f64` addition.
    FAdd,
    /// `f64` subtraction.
    FSub,
    /// `f64` multiplication.
    FMul,
    /// `f64` division (IEEE semantics: produces ±inf/NaN, never traps).
    FDiv,
    /// Minimum of two `f64` values.
    FMin,
    /// Maximum of two `f64` values.
    FMax,
    /// Integer 1 if `rs1 < rs2` as `f64`, else 0.
    FLt,
    /// Integer 1 if `rs1 <= rs2` as `f64`, else 0.
    FLe,
    /// Integer 1 if `rs1 == rs2` as `f64`, else 0.
    FEq,
}

impl FpuOp {
    /// All FPU operations, in encoding order.
    pub const ALL: [FpuOp; 9] = [
        FpuOp::FAdd,
        FpuOp::FSub,
        FpuOp::FMul,
        FpuOp::FDiv,
        FpuOp::FMin,
        FpuOp::FMax,
        FpuOp::FLt,
        FpuOp::FLe,
        FpuOp::FEq,
    ];

    /// Mnemonic used in disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::FAdd => "fadd",
            FpuOp::FSub => "fsub",
            FpuOp::FMul => "fmul",
            FpuOp::FDiv => "fdiv",
            FpuOp::FMin => "fmin",
            FpuOp::FMax => "fmax",
            FpuOp::FLt => "flt",
            FpuOp::FLe => "fle",
            FpuOp::FEq => "feq",
        }
    }

    /// Returns `true` if the result is an integer 0/1 comparison outcome
    /// rather than an `f64` bit pattern.
    pub fn is_compare(self) -> bool {
        matches!(self, FpuOp::FLt | FpuOp::FLe | FpuOp::FEq)
    }
}

/// Unary floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FpuUnaryOp {
    /// Negation.
    FNeg,
    /// Absolute value.
    FAbs,
    /// Square root (IEEE: NaN for negative inputs, never traps).
    FSqrt,
}

impl FpuUnaryOp {
    /// All unary FPU operations, in encoding order.
    pub const ALL: [FpuUnaryOp; 3] = [FpuUnaryOp::FNeg, FpuUnaryOp::FAbs, FpuUnaryOp::FSqrt];

    /// Mnemonic used in disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpuUnaryOp::FNeg => "fneg",
            FpuUnaryOp::FAbs => "fabs",
            FpuUnaryOp::FSqrt => "fsqrt",
        }
    }
}

/// Conversions between the integer and floating-point views of a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CvtOp {
    /// Signed integer → `f64`.
    IntToFloat,
    /// `f64` → signed integer (truncation; saturates at i64 bounds, NaN → 0).
    FloatToInt,
}

impl CvtOp {
    /// All conversion operations, in encoding order.
    pub const ALL: [CvtOp; 2] = [CvtOp::IntToFloat, CvtOp::FloatToInt];

    /// Mnemonic used in disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CvtOp::IntToFloat => "cvt.i2f",
            CvtOp::FloatToInt => "cvt.f2i",
        }
    }
}

/// Conditions for conditional branches over two integer register operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if signed less-or-equal.
    Le,
    /// Branch if signed greater-than.
    Gt,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// All branch conditions, in encoding order.
    pub const ALL: [BranchCond; 8] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Le,
        BranchCond::Gt,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// Mnemonic used in disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Le => "ble",
            BranchCond::Gt => "bgt",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => sa < sb,
            BranchCond::Ge => sa >= sb,
            BranchCond::Le => sa <= sb,
            BranchCond::Gt => sa > sb,
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// The coarse opcode identity of an instruction, used as a one-hot node
/// feature in the bit-level CDFG ("Op code" row of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// Integer ALU operation (register or immediate form).
    Alu(AluOp),
    /// Binary floating-point operation.
    Fpu(FpuOp),
    /// Unary floating-point operation.
    FpuUnary(FpuUnaryOp),
    /// Int/float conversion.
    Cvt(CvtOp),
    /// Load immediate (integer or float bit pattern).
    Li,
    /// Register move.
    Mov,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch(BranchCond),
    /// Unconditional jump.
    Jump,
    /// Append a register value to the program output buffer.
    Out,
    /// Stop execution.
    Halt,
}

impl Opcode {
    /// Total number of distinct opcode identities, i.e. the width of the
    /// opcode one-hot feature.
    pub const COUNT: usize = AluOp::ALL.len()
        + FpuOp::ALL.len()
        + FpuUnaryOp::ALL.len()
        + CvtOp::ALL.len()
        + BranchCond::ALL.len()
        + 7; // Li, Mov, Load, Store, Jump, Out, Halt

    /// A dense index in `0..Opcode::COUNT` identifying this opcode, used to
    /// build one-hot feature vectors.
    pub fn index(self) -> usize {
        let alu_base = 0;
        let fpu_base = alu_base + AluOp::ALL.len();
        let fpu1_base = fpu_base + FpuOp::ALL.len();
        let cvt_base = fpu1_base + FpuUnaryOp::ALL.len();
        let br_base = cvt_base + CvtOp::ALL.len();
        let misc_base = br_base + BranchCond::ALL.len();
        match self {
            Opcode::Alu(op) => alu_base + op as usize,
            Opcode::Fpu(op) => fpu_base + op as usize,
            Opcode::FpuUnary(op) => fpu1_base + op as usize,
            Opcode::Cvt(op) => cvt_base + op as usize,
            Opcode::Branch(c) => br_base + c as usize,
            Opcode::Li => misc_base,
            Opcode::Mov => misc_base + 1,
            Opcode::Load => misc_base + 2,
            Opcode::Store => misc_base + 3,
            Opcode::Jump => misc_base + 4,
            Opcode::Out => misc_base + 5,
            Opcode::Halt => misc_base + 6,
        }
    }

    /// The instruction class ("Op code type" row of Table I).
    pub fn class(self) -> OpcodeClass {
        match self {
            Opcode::Alu(_) => OpcodeClass::IntAlu,
            Opcode::Fpu(_) | Opcode::FpuUnary(_) => OpcodeClass::FpAlu,
            Opcode::Cvt(_) | Opcode::Li | Opcode::Mov => OpcodeClass::Move,
            Opcode::Load | Opcode::Store => OpcodeClass::Memory,
            Opcode::Branch(_) | Opcode::Jump | Opcode::Halt => OpcodeClass::Control,
            Opcode::Out => OpcodeClass::Output,
        }
    }
}

/// Coarse instruction classes used as Boolean node features (Table I
/// "Op code type": control, memory-related, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpcodeClass {
    /// Integer arithmetic/logic.
    IntAlu,
    /// Floating-point arithmetic.
    FpAlu,
    /// Data movement: immediates, moves, conversions.
    Move,
    /// Loads and stores.
    Memory,
    /// Branches, jumps, halt.
    Control,
    /// Output-buffer writes.
    Output,
}

impl OpcodeClass {
    /// All opcode classes, in feature order.
    pub const ALL: [OpcodeClass; 6] = [
        OpcodeClass::IntAlu,
        OpcodeClass::FpAlu,
        OpcodeClass::Move,
        OpcodeClass::Memory,
        OpcodeClass::Control,
        OpcodeClass::Output,
    ];

    /// Dense index in `0..6` for one-hot feature construction.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::Alu(op) => op.mnemonic(),
            Opcode::Fpu(op) => op.mnemonic(),
            Opcode::FpuUnary(op) => op.mnemonic(),
            Opcode::Cvt(op) => op.mnemonic(),
            Opcode::Branch(c) => c.mnemonic(),
            Opcode::Li => "li",
            Opcode::Mov => "mov",
            Opcode::Load => "ld",
            Opcode::Store => "st",
            Opcode::Jump => "jmp",
            Opcode::Out => "out",
            Opcode::Halt => "halt",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn opcode_indices_are_dense_and_unique() {
        let mut seen = HashSet::new();
        let mut all: Vec<Opcode> = Vec::new();
        all.extend(AluOp::ALL.iter().map(|&op| Opcode::Alu(op)));
        all.extend(FpuOp::ALL.iter().map(|&op| Opcode::Fpu(op)));
        all.extend(FpuUnaryOp::ALL.iter().map(|&op| Opcode::FpuUnary(op)));
        all.extend(CvtOp::ALL.iter().map(|&op| Opcode::Cvt(op)));
        all.extend(BranchCond::ALL.iter().map(|&c| Opcode::Branch(c)));
        all.extend([
            Opcode::Li,
            Opcode::Mov,
            Opcode::Load,
            Opcode::Store,
            Opcode::Jump,
            Opcode::Out,
            Opcode::Halt,
        ]);
        assert_eq!(all.len(), Opcode::COUNT);
        for op in all {
            let idx = op.index();
            assert!(idx < Opcode::COUNT, "{op:?} index {idx} out of range");
            assert!(seen.insert(idx), "duplicate index {idx} for {op:?}");
        }
    }

    #[test]
    fn branch_cond_eval_signed_vs_unsigned() {
        let a = (-1i64) as u64;
        let b = 1u64;
        assert!(BranchCond::Lt.eval(a, b)); // -1 < 1 signed
        assert!(!BranchCond::Ltu.eval(a, b)); // u64::MAX not < 1 unsigned
        assert!(BranchCond::Geu.eval(a, b));
        assert!(BranchCond::Ne.eval(a, b));
    }

    #[test]
    fn branch_cond_eval_equalities() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(BranchCond::Le.eval(5, 5));
        assert!(BranchCond::Ge.eval(5, 5));
        assert!(!BranchCond::Gt.eval(5, 5));
        assert!(!BranchCond::Lt.eval(5, 5));
    }

    #[test]
    fn trapping_ops() {
        assert!(AluOp::Div.can_trap());
        assert!(AluOp::Rem.can_trap());
        assert!(!AluOp::Add.can_trap());
    }

    #[test]
    fn fpu_compare_classification() {
        assert!(FpuOp::FLt.is_compare());
        assert!(!FpuOp::FAdd.is_compare());
    }

    #[test]
    fn class_assignment() {
        assert_eq!(Opcode::Alu(AluOp::Add).class(), OpcodeClass::IntAlu);
        assert_eq!(Opcode::Fpu(FpuOp::FAdd).class(), OpcodeClass::FpAlu);
        assert_eq!(Opcode::Load.class(), OpcodeClass::Memory);
        assert_eq!(Opcode::Branch(BranchCond::Eq).class(), OpcodeClass::Control);
        assert_eq!(Opcode::Out.class(), OpcodeClass::Output);
        assert_eq!(Opcode::Li.class(), OpcodeClass::Move);
    }
}
