use std::fmt;

use crate::opcode::{AluOp, BranchCond, CvtOp, FpuOp, FpuUnaryOp, Opcode};
use crate::reg::Reg;

/// Length in bytes of the fixed-width binary encoding of an instruction.
pub const INSTR_ENCODING_LEN: usize = 16;

/// A single machine instruction.
///
/// Branch and jump targets are absolute instruction indices within the
/// containing [`Program`](crate::Program); the [`Asm`](crate::Asm) builder
/// resolves symbolic labels to these indices.
///
/// # Example
///
/// ```
/// use glaive_isa::{Instr, AluOp, Reg};
/// let i = Instr::Alu { op: AluOp::Add, rd: Reg(1), rs1: Reg(2), rs2: Reg(3) };
/// assert_eq!(i.defs(), vec![Reg(1)]);
/// assert_eq!(i.uses(), vec![Reg(2), Reg(3)]);
/// assert_eq!(i.to_string(), "add r1, r2, r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Three-register integer ALU operation: `rd = rs1 op rs2`.
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Register-immediate integer ALU operation: `rd = rs1 op imm`.
    AluImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i64,
    },
    /// Three-register floating-point operation: `rd = rs1 op rs2` (f64 view).
    Fpu {
        op: FpuOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Unary floating-point operation: `rd = op rs1` (f64 view).
    FpuUnary { op: FpuUnaryOp, rd: Reg, rs1: Reg },
    /// Conversion between integer and f64 views: `rd = cvt(rs1)`.
    Cvt { op: CvtOp, rd: Reg, rs1: Reg },
    /// Load a 64-bit immediate: `rd = imm`. Floating-point constants are
    /// materialised via `imm = f64::to_bits(..) as i64`.
    Li { rd: Reg, imm: i64 },
    /// Register copy: `rd = rs1`.
    Mov { rd: Reg, rs1: Reg },
    /// Memory load: `rd = mem[rs1 + offset]` (word-addressed; traps on
    /// out-of-bounds addresses).
    Load { rd: Reg, base: Reg, offset: i64 },
    /// Memory store: `mem[base + offset] = rs` (word-addressed; traps on
    /// out-of-bounds addresses).
    Store { rs: Reg, base: Reg, offset: i64 },
    /// Conditional branch to absolute instruction index `target`.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: usize,
    },
    /// Unconditional jump to absolute instruction index `target`.
    Jump { target: usize },
    /// Append the value of `rs1` to the program output buffer.
    Out { rs1: Reg },
    /// Stop execution successfully.
    Halt,
}

impl Instr {
    /// The coarse opcode identity of this instruction.
    pub fn opcode(&self) -> Opcode {
        match *self {
            Instr::Alu { op, .. } | Instr::AluImm { op, .. } => Opcode::Alu(op),
            Instr::Fpu { op, .. } => Opcode::Fpu(op),
            Instr::FpuUnary { op, .. } => Opcode::FpuUnary(op),
            Instr::Cvt { op, .. } => Opcode::Cvt(op),
            Instr::Li { .. } => Opcode::Li,
            Instr::Mov { .. } => Opcode::Mov,
            Instr::Load { .. } => Opcode::Load,
            Instr::Store { .. } => Opcode::Store,
            Instr::Branch { cond, .. } => Opcode::Branch(cond),
            Instr::Jump { .. } => Opcode::Jump,
            Instr::Out { .. } => Opcode::Out,
            Instr::Halt => Opcode::Halt,
        }
    }

    /// Registers written by this instruction (the destination operands).
    pub fn defs(&self) -> Vec<Reg> {
        match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Fpu { rd, .. }
            | Instr::FpuUnary { rd, .. }
            | Instr::Cvt { rd, .. }
            | Instr::Li { rd, .. }
            | Instr::Mov { rd, .. }
            | Instr::Load { rd, .. } => vec![rd],
            _ => Vec::new(),
        }
    }

    /// Registers read by this instruction (the source operands), in operand
    /// order. A register appearing in two source slots is listed twice.
    pub fn uses(&self) -> Vec<Reg> {
        match *self {
            Instr::Alu { rs1, rs2, .. } | Instr::Fpu { rs1, rs2, .. } => vec![rs1, rs2],
            Instr::AluImm { rs1, .. }
            | Instr::FpuUnary { rs1, .. }
            | Instr::Cvt { rs1, .. }
            | Instr::Mov { rs1, .. }
            | Instr::Out { rs1 } => vec![rs1],
            Instr::Load { base, .. } => vec![base],
            Instr::Store { rs, base, .. } => vec![rs, base],
            Instr::Branch { rs1, rs2, .. } => vec![rs1, rs2],
            Instr::Li { .. } | Instr::Jump { .. } | Instr::Halt => Vec::new(),
        }
    }

    /// All register operands (sources first, then destinations), in operand
    /// order — the fault sites of the paper's fault model ("registers that
    /// store instruction inputs and outputs").
    pub fn operands(&self) -> Vec<Reg> {
        let mut ops = self.uses();
        ops.extend(self.defs());
        ops
    }

    /// Returns `true` if the instruction's register values are interpreted
    /// as `f64` bit patterns (used for the "register type" node feature).
    pub fn is_float(&self) -> bool {
        matches!(
            self,
            Instr::Fpu { .. } | Instr::FpuUnary { .. } | Instr::Cvt { .. }
        )
    }

    /// Returns `true` if the instruction may read or write memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// Returns `true` if the instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::Halt
        )
    }

    /// The branch/jump target if this is a control-transfer instruction.
    pub fn target(&self) -> Option<usize> {
        match *self {
            Instr::Branch { target, .. } | Instr::Jump { target } => Some(target),
            _ => None,
        }
    }

    /// Encodes the instruction into a fixed-width byte array.
    ///
    /// The encoding is `[tag, sub, a, b, c, 0, 0, 0, imm:8]` where `imm`
    /// holds the little-endian immediate, offset or target.
    pub fn encode(&self) -> [u8; INSTR_ENCODING_LEN] {
        let mut buf = [0u8; INSTR_ENCODING_LEN];
        let (tag, sub, a, b, c, imm): (u8, u8, u8, u8, u8, i64) = match *self {
            Instr::Alu { op, rd, rs1, rs2 } => (0, op as u8, rd.0, rs1.0, rs2.0, 0),
            Instr::AluImm { op, rd, rs1, imm } => (1, op as u8, rd.0, rs1.0, 0, imm),
            Instr::Fpu { op, rd, rs1, rs2 } => (2, op as u8, rd.0, rs1.0, rs2.0, 0),
            Instr::FpuUnary { op, rd, rs1 } => (3, op as u8, rd.0, rs1.0, 0, 0),
            Instr::Cvt { op, rd, rs1 } => (4, op as u8, rd.0, rs1.0, 0, 0),
            Instr::Li { rd, imm } => (5, 0, rd.0, 0, 0, imm),
            Instr::Mov { rd, rs1 } => (6, 0, rd.0, rs1.0, 0, 0),
            Instr::Load { rd, base, offset } => (7, 0, rd.0, base.0, 0, offset),
            Instr::Store { rs, base, offset } => (8, 0, rs.0, base.0, 0, offset),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => (9, cond as u8, rs1.0, rs2.0, 0, target as i64),
            Instr::Jump { target } => (10, 0, 0, 0, 0, target as i64),
            Instr::Out { rs1 } => (11, 0, rs1.0, 0, 0, 0),
            Instr::Halt => (12, 0, 0, 0, 0, 0),
        };
        buf[0] = tag;
        buf[1] = sub;
        buf[2] = a;
        buf[3] = b;
        buf[4] = c;
        buf[8..16].copy_from_slice(&imm.to_le_bytes());
        buf
    }

    /// Decodes an instruction previously produced by [`Instr::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the tag or sub-opcode is unknown or a
    /// register index is out of range.
    pub fn decode(buf: &[u8; INSTR_ENCODING_LEN]) -> Result<Instr, DecodeError> {
        let (tag, sub, a, b, c) = (buf[0], buf[1], buf[2], buf[3], buf[4]);
        let imm = i64::from_le_bytes(buf[8..16].try_into().expect("slice len 8"));
        let reg = |r: u8| -> Result<Reg, DecodeError> {
            let reg = Reg(r);
            if reg.is_valid() {
                Ok(reg)
            } else {
                Err(DecodeError::BadRegister(r))
            }
        };
        let alu = |s: u8| {
            AluOp::ALL
                .get(s as usize)
                .copied()
                .ok_or(DecodeError::BadSubOpcode(s))
        };
        let fpu = |s: u8| {
            FpuOp::ALL
                .get(s as usize)
                .copied()
                .ok_or(DecodeError::BadSubOpcode(s))
        };
        match tag {
            0 => Ok(Instr::Alu {
                op: alu(sub)?,
                rd: reg(a)?,
                rs1: reg(b)?,
                rs2: reg(c)?,
            }),
            1 => Ok(Instr::AluImm {
                op: alu(sub)?,
                rd: reg(a)?,
                rs1: reg(b)?,
                imm,
            }),
            2 => Ok(Instr::Fpu {
                op: fpu(sub)?,
                rd: reg(a)?,
                rs1: reg(b)?,
                rs2: reg(c)?,
            }),
            3 => Ok(Instr::FpuUnary {
                op: FpuUnaryOp::ALL
                    .get(sub as usize)
                    .copied()
                    .ok_or(DecodeError::BadSubOpcode(sub))?,
                rd: reg(a)?,
                rs1: reg(b)?,
            }),
            4 => Ok(Instr::Cvt {
                op: CvtOp::ALL
                    .get(sub as usize)
                    .copied()
                    .ok_or(DecodeError::BadSubOpcode(sub))?,
                rd: reg(a)?,
                rs1: reg(b)?,
            }),
            5 => Ok(Instr::Li { rd: reg(a)?, imm }),
            6 => Ok(Instr::Mov {
                rd: reg(a)?,
                rs1: reg(b)?,
            }),
            7 => Ok(Instr::Load {
                rd: reg(a)?,
                base: reg(b)?,
                offset: imm,
            }),
            8 => Ok(Instr::Store {
                rs: reg(a)?,
                base: reg(b)?,
                offset: imm,
            }),
            9 => Ok(Instr::Branch {
                cond: BranchCond::ALL
                    .get(sub as usize)
                    .copied()
                    .ok_or(DecodeError::BadSubOpcode(sub))?,
                rs1: reg(a)?,
                rs2: reg(b)?,
                target: imm as usize,
            }),
            10 => Ok(Instr::Jump {
                target: imm as usize,
            }),
            11 => Ok(Instr::Out { rs1: reg(a)? }),
            12 => Ok(Instr::Halt),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Instr::Fpu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::FpuUnary { op, rd, rs1 } => write!(f, "{} {rd}, {rs1}", op.mnemonic()),
            Instr::Cvt { op, rd, rs1 } => write!(f, "{} {rd}, {rs1}", op.mnemonic()),
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Mov { rd, rs1 } => write!(f, "mov {rd}, {rs1}"),
            Instr::Load { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Instr::Store { rs, base, offset } => write!(f, "st {rs}, {offset}({base})"),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "{} {rs1}, {rs2}, @{target}", cond.mnemonic())
            }
            Instr::Jump { target } => write!(f, "jmp @{target}"),
            Instr::Out { rs1 } => write!(f, "out {rs1}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

/// Error returned by [`Instr::decode`] for malformed encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown instruction tag byte.
    BadTag(u8),
    /// Unknown sub-opcode for the given tag.
    BadSubOpcode(u8),
    /// Register index outside `0..NUM_REGS`.
    BadRegister(u8),
    /// Byte buffer is not exactly the backend's encoding length.
    Truncated {
        /// Provided buffer length.
        len: usize,
        /// Required encoding length.
        want: usize,
    },
    /// An immediate field holds a value invalid for its instruction (e.g. a
    /// negative branch target).
    BadImmediate(i64),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadTag(t) => write!(f, "unknown instruction tag {t}"),
            DecodeError::BadSubOpcode(s) => write!(f, "unknown sub-opcode {s}"),
            DecodeError::BadRegister(r) => write!(f, "register index {r} out of range"),
            DecodeError::Truncated { len, want } => {
                write!(f, "encoded instruction is {len} bytes, want {want}")
            }
            DecodeError::BadImmediate(imm) => {
                write!(f, "immediate {imm} is invalid for this instruction")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(3),
            },
            Instr::AluImm {
                op: AluOp::Mul,
                rd: Reg(4),
                rs1: Reg(5),
                imm: -17,
            },
            Instr::Fpu {
                op: FpuOp::FDiv,
                rd: Reg(6),
                rs1: Reg(7),
                rs2: Reg(8),
            },
            Instr::FpuUnary {
                op: FpuUnaryOp::FSqrt,
                rd: Reg(9),
                rs1: Reg(10),
            },
            Instr::Cvt {
                op: CvtOp::FloatToInt,
                rd: Reg(11),
                rs1: Reg(12),
            },
            Instr::Li {
                rd: Reg(13),
                imm: i64::MIN,
            },
            Instr::Mov {
                rd: Reg(14),
                rs1: Reg(15),
            },
            Instr::Load {
                rd: Reg(16),
                base: Reg(17),
                offset: 40,
            },
            Instr::Store {
                rs: Reg(18),
                base: Reg(19),
                offset: -8,
            },
            Instr::Branch {
                cond: BranchCond::Ltu,
                rs1: Reg(20),
                rs2: Reg(21),
                target: 99,
            },
            Instr::Jump { target: 3 },
            Instr::Out { rs1: Reg(22) },
            Instr::Halt,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for i in sample_instrs() {
            let decoded = Instr::decode(&i.encode()).expect("valid encoding");
            assert_eq!(decoded, i);
        }
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut buf = [0u8; INSTR_ENCODING_LEN];
        buf[0] = 200;
        assert_eq!(Instr::decode(&buf), Err(DecodeError::BadTag(200)));
    }

    #[test]
    fn decode_rejects_bad_register() {
        let mut buf = Instr::Out { rs1: Reg(0) }.encode();
        buf[2] = 32;
        assert_eq!(Instr::decode(&buf), Err(DecodeError::BadRegister(32)));
    }

    #[test]
    fn decode_rejects_bad_sub_opcode() {
        let mut buf = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(0),
            rs1: Reg(0),
            rs2: Reg(0),
        }
        .encode();
        buf[1] = 99;
        assert_eq!(Instr::decode(&buf), Err(DecodeError::BadSubOpcode(99)));
    }

    #[test]
    fn defs_uses_store() {
        let st = Instr::Store {
            rs: Reg(1),
            base: Reg(2),
            offset: 0,
        };
        assert!(st.defs().is_empty());
        assert_eq!(st.uses(), vec![Reg(1), Reg(2)]);
        assert_eq!(st.operands(), vec![Reg(1), Reg(2)]);
    }

    #[test]
    fn defs_uses_branch() {
        let br = Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg(1),
            rs2: Reg(2),
            target: 0,
        };
        assert!(br.defs().is_empty());
        assert_eq!(br.uses(), vec![Reg(1), Reg(2)]);
        assert!(br.is_control());
        assert_eq!(br.target(), Some(0));
    }

    #[test]
    fn duplicate_source_listed_twice() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(2),
        };
        assert_eq!(i.uses(), vec![Reg(2), Reg(2)]);
    }

    #[test]
    fn classification_helpers() {
        assert!(Instr::Fpu {
            op: FpuOp::FAdd,
            rd: Reg(0),
            rs1: Reg(0),
            rs2: Reg(0)
        }
        .is_float());
        assert!(Instr::Load {
            rd: Reg(0),
            base: Reg(0),
            offset: 0
        }
        .is_memory());
        assert!(Instr::Halt.is_control());
        assert_eq!(Instr::Halt.target(), None);
    }

    #[test]
    fn display_formats() {
        let i = Instr::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            imm: 5,
        };
        assert_eq!(i.to_string(), "addi r1, r2, 5");
        let l = Instr::Load {
            rd: Reg(3),
            base: Reg(4),
            offset: 16,
        };
        assert_eq!(l.to_string(), "ld r3, 16(r4)");
    }
}
