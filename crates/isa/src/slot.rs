use std::fmt;

/// Which register operand of an instruction a fault or graph node refers to.
///
/// Indices refer to the operand lists returned by
/// [`Instr::uses`](crate::Instr::uses) and [`Instr::defs`](crate::Instr::defs).
/// In fault injection, a `Use` fault flips the register bit immediately
/// *before* the instruction executes and a `Def` fault immediately *after*
/// it writes; in the bit-level CDFG each (instruction, slot, bit) triple is
/// one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OperandSlot {
    /// The `i`-th source operand.
    Use(usize),
    /// The `i`-th destination operand (always 0 in this ISA).
    Def(usize),
}

impl OperandSlot {
    /// Returns `true` for source-operand slots.
    pub fn is_use(self) -> bool {
        matches!(self, OperandSlot::Use(_))
    }

    /// Returns `true` for destination-operand slots.
    pub fn is_def(self) -> bool {
        matches!(self, OperandSlot::Def(_))
    }
}

impl fmt::Display for OperandSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperandSlot::Use(i) => write!(f, "use{i}"),
            OperandSlot::Def(i) => write!(f, "def{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_predicates() {
        assert_eq!(OperandSlot::Use(1).to_string(), "use1");
        assert_eq!(OperandSlot::Def(0).to_string(), "def0");
        assert!(OperandSlot::Use(0).is_use());
        assert!(OperandSlot::Def(0).is_def());
        assert!(!OperandSlot::Def(0).is_use());
    }
}
