//! `RvIsa` — a RISC-V-like second backend ("ISA-B") for cross-ISA transfer
//! experiments.
//!
//! A deliberately small RV64-integer-flavoured subset: 32 registers with
//! `x0` hardwired to zero, 64-bit words, register/immediate ALU forms,
//! `lui`, word-addressed `ld`/`sd`, the six RISC-V branch comparisons,
//! `jal` with a link register, and `ecall`/`ebreak` standing in for output
//! and halt. The semantic differences from [`GlaiveIsa`](crate::GlaiveIsa)
//! are real ones:
//!
//! - **division never traps** — `div` by zero yields all-ones and `rem` by
//!   zero yields the dividend, per the RISC-V spec, so a fault that zeroes
//!   a divisor is an SDC here where ISA-A makes it a Crash;
//! - **`x0` discards writes and reads as zero**, so any fault injected into
//!   it is architecturally masked;
//! - its own fixed-width 12-byte encoding, distinct from ISA-A's 16-byte
//!   format.
//!
//! What is *shared* is the portable feature vocabulary: every `RvInstr`
//! maps onto the canonical [`Opcode::index`] space (`add`/`addi` → `add`,
//! `lui` → `li`, `ld` → `ld`, `beq` → `beq`, `jal` → `jump`, `ecall` →
//! `out`, `ebreak` → `halt`), which is what lets a GNN trained on ISA-A
//! CDFGs score ISA-B programs. See DESIGN.md §13.

use std::fmt;

use crate::asm::AsmError;
use crate::instr::DecodeError;
use crate::isa::{Flow, Isa, MachineState, MemAccess, Step, Trap};
use crate::opcode::{AluOp, BranchCond, Opcode, OpcodeClass};
use crate::program::Program;
use crate::reg::{Reg, NUM_REGS, WORD_BITS};

/// Length in bytes of one encoded ISA-B instruction:
/// `[tag, sub, rd, rs1, rs2, 0, 0, 0, imm: i32 LE]`.
pub const RV_INSTR_ENCODING_LEN: usize = 12;

/// The RISC-V-like backend marker ("ISA-B").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RvIsa;

/// Register–register ALU operations (RV64 `OP` major opcode subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RvAluOp {
    /// `rd = rs1 + rs2` (wrapping).
    Add,
    /// `rd = rs1 - rs2` (wrapping).
    Sub,
    /// `rd = rs1 * rs2` (wrapping, low 64 bits).
    Mul,
    /// Signed division; by zero yields all-ones, `MIN / -1` wraps.
    Div,
    /// Signed remainder; by zero yields the dividend.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical left shift by `rs2 mod 64`.
    Sll,
    /// Logical right shift by `rs2 mod 64`.
    Srl,
    /// Arithmetic right shift by `rs2 mod 64`.
    Sra,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
}

impl RvAluOp {
    /// All operations, in encoding order.
    pub const ALL: [RvAluOp; 13] = [
        RvAluOp::Add,
        RvAluOp::Sub,
        RvAluOp::Mul,
        RvAluOp::Div,
        RvAluOp::Rem,
        RvAluOp::And,
        RvAluOp::Or,
        RvAluOp::Xor,
        RvAluOp::Sll,
        RvAluOp::Srl,
        RvAluOp::Sra,
        RvAluOp::Slt,
        RvAluOp::Sltu,
    ];

    /// RISC-V integer arithmetic: wrapping, and division that never traps.
    fn apply(self, a: u64, b: u64) -> u64 {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            RvAluOp::Add => sa.wrapping_add(sb) as u64,
            RvAluOp::Sub => sa.wrapping_sub(sb) as u64,
            RvAluOp::Mul => sa.wrapping_mul(sb) as u64,
            RvAluOp::Div => {
                if sb == 0 {
                    u64::MAX
                } else {
                    sa.wrapping_div(sb) as u64
                }
            }
            RvAluOp::Rem => {
                if sb == 0 {
                    a
                } else {
                    sa.wrapping_rem(sb) as u64
                }
            }
            RvAluOp::And => a & b,
            RvAluOp::Or => a | b,
            RvAluOp::Xor => a ^ b,
            RvAluOp::Sll => a.wrapping_shl(b as u32),
            RvAluOp::Srl => a.wrapping_shr(b as u32),
            RvAluOp::Sra => sa.wrapping_shr(b as u32) as u64,
            RvAluOp::Slt => u64::from(sa < sb),
            RvAluOp::Sltu => u64::from(a < b),
        }
    }

    /// The canonical-vocabulary opcode this operation one-hots as.
    fn canonical(self) -> Opcode {
        Opcode::Alu(match self {
            RvAluOp::Add => AluOp::Add,
            RvAluOp::Sub => AluOp::Sub,
            RvAluOp::Mul => AluOp::Mul,
            RvAluOp::Div => AluOp::Div,
            RvAluOp::Rem => AluOp::Rem,
            RvAluOp::And => AluOp::And,
            RvAluOp::Or => AluOp::Or,
            RvAluOp::Xor => AluOp::Xor,
            RvAluOp::Sll => AluOp::Shl,
            RvAluOp::Srl => AluOp::Shr,
            RvAluOp::Sra => AluOp::Sra,
            RvAluOp::Slt => AluOp::Slt,
            RvAluOp::Sltu => AluOp::Sltu,
        })
    }

    fn mnemonic(self) -> &'static str {
        match self {
            RvAluOp::Add => "add",
            RvAluOp::Sub => "sub",
            RvAluOp::Mul => "mul",
            RvAluOp::Div => "div",
            RvAluOp::Rem => "rem",
            RvAluOp::And => "and",
            RvAluOp::Or => "or",
            RvAluOp::Xor => "xor",
            RvAluOp::Sll => "sll",
            RvAluOp::Srl => "srl",
            RvAluOp::Sra => "sra",
            RvAluOp::Slt => "slt",
            RvAluOp::Sltu => "sltu",
        }
    }
}

/// Register–immediate ALU operations (RV64 `OP-IMM` subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RvImmOp {
    /// `rd = rs1 + imm`.
    Addi,
    /// `rd = rs1 & imm`.
    Andi,
    /// `rd = rs1 | imm`.
    Ori,
    /// `rd = rs1 ^ imm`.
    Xori,
    /// `rd = rs1 << (imm mod 64)`.
    Slli,
    /// `rd = rs1 >> (imm mod 64)` (logical).
    Srli,
    /// `rd = rs1 >> (imm mod 64)` (arithmetic).
    Srai,
    /// `rd = (rs1 <s imm)`.
    Slti,
    /// `rd = (rs1 <u imm)`.
    Sltiu,
}

impl RvImmOp {
    /// All operations, in encoding order.
    pub const ALL: [RvImmOp; 9] = [
        RvImmOp::Addi,
        RvImmOp::Andi,
        RvImmOp::Ori,
        RvImmOp::Xori,
        RvImmOp::Slli,
        RvImmOp::Srli,
        RvImmOp::Srai,
        RvImmOp::Slti,
        RvImmOp::Sltiu,
    ];

    /// The register-form operation with identical arithmetic.
    fn reg_form(self) -> RvAluOp {
        match self {
            RvImmOp::Addi => RvAluOp::Add,
            RvImmOp::Andi => RvAluOp::And,
            RvImmOp::Ori => RvAluOp::Or,
            RvImmOp::Xori => RvAluOp::Xor,
            RvImmOp::Slli => RvAluOp::Sll,
            RvImmOp::Srli => RvAluOp::Srl,
            RvImmOp::Srai => RvAluOp::Sra,
            RvImmOp::Slti => RvAluOp::Slt,
            RvImmOp::Sltiu => RvAluOp::Sltu,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            RvImmOp::Addi => "addi",
            RvImmOp::Andi => "andi",
            RvImmOp::Ori => "ori",
            RvImmOp::Xori => "xori",
            RvImmOp::Slli => "slli",
            RvImmOp::Srli => "srli",
            RvImmOp::Srai => "srai",
            RvImmOp::Slti => "slti",
            RvImmOp::Sltiu => "sltiu",
        }
    }
}

/// RISC-V branch comparisons. Unlike ISA-A, there are no `Le`/`Gt` forms —
/// compilers swap operands instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RvBranchCond {
    /// `rs1 == rs2`.
    Beq,
    /// `rs1 != rs2`.
    Bne,
    /// Signed `rs1 < rs2`.
    Blt,
    /// Signed `rs1 >= rs2`.
    Bge,
    /// Unsigned `rs1 < rs2`.
    Bltu,
    /// Unsigned `rs1 >= rs2`.
    Bgeu,
}

impl RvBranchCond {
    /// All comparisons, in encoding order.
    pub const ALL: [RvBranchCond; 6] = [
        RvBranchCond::Beq,
        RvBranchCond::Bne,
        RvBranchCond::Blt,
        RvBranchCond::Bge,
        RvBranchCond::Bltu,
        RvBranchCond::Bgeu,
    ];

    /// Evaluates the comparison.
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            RvBranchCond::Beq => a == b,
            RvBranchCond::Bne => a != b,
            RvBranchCond::Blt => sa < sb,
            RvBranchCond::Bge => sa >= sb,
            RvBranchCond::Bltu => a < b,
            RvBranchCond::Bgeu => a >= b,
        }
    }

    fn canonical(self) -> Opcode {
        Opcode::Branch(match self {
            RvBranchCond::Beq => BranchCond::Eq,
            RvBranchCond::Bne => BranchCond::Ne,
            RvBranchCond::Blt => BranchCond::Lt,
            RvBranchCond::Bge => BranchCond::Ge,
            RvBranchCond::Bltu => BranchCond::Ltu,
            RvBranchCond::Bgeu => BranchCond::Geu,
        })
    }

    fn mnemonic(self) -> &'static str {
        match self {
            RvBranchCond::Beq => "beq",
            RvBranchCond::Bne => "bne",
            RvBranchCond::Blt => "blt",
            RvBranchCond::Bge => "bge",
            RvBranchCond::Bltu => "bltu",
            RvBranchCond::Bgeu => "bgeu",
        }
    }
}

/// One ISA-B instruction. Branch and jump targets are absolute instruction
/// indices, like ISA-A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RvInstr {
    /// `rd = rs1 op rs2`.
    Alu {
        /// Operation.
        op: RvAluOp,
        /// Destination (writes to `x0` are discarded).
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `rd = rs1 op imm`.
    AluImm {
        /// Operation.
        op: RvImmOp,
        /// Destination (writes to `x0` are discarded).
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Sign-extended immediate.
        imm: i32,
    },
    /// `rd = imm << 12` — load upper immediate.
    Lui {
        /// Destination.
        rd: Reg,
        /// Upper-immediate value (pre-shift).
        imm: i32,
    },
    /// `rd = mem[rs1 + offset]` (word-addressed).
    Ld {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        offset: i32,
    },
    /// `mem[rs1 + offset] = rs2` (word-addressed).
    Sd {
        /// Source value register.
        rs2: Reg,
        /// Base address register.
        base: Reg,
        /// Word offset.
        offset: i32,
    },
    /// Conditional branch to an absolute instruction index.
    Branch {
        /// Comparison.
        cond: RvBranchCond,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Absolute target instruction index.
        target: usize,
    },
    /// Unconditional jump; `rd` receives the return address `pc + 1`
    /// (`rd = x0` gives a plain jump).
    Jal {
        /// Link register.
        rd: Reg,
        /// Absolute target instruction index.
        target: usize,
    },
    /// Environment call: emits `x10` (`a0`) to the output stream.
    Ecall,
    /// Environment break: halts the program.
    Ebreak,
}

impl RvInstr {
    /// The canonical-vocabulary opcode this instruction one-hots as.
    ///
    /// The standard pseudo-instructions are recognised structurally so they
    /// land on the canonical opcode that names their *meaning*, not their
    /// encoding: `addi rd, x0, imm` is `li` and `addi rd, rs, 0` is `mv`.
    /// Leaving them on `add` would teach a cross-ISA model that ISA-B is
    /// full of adds whose outcome statistics match constant loads.
    pub fn canonical_opcode(&self) -> Opcode {
        match *self {
            RvInstr::Alu { op, .. } => op.canonical(),
            RvInstr::AluImm {
                op: RvImmOp::Addi,
                rs1: Reg(0),
                ..
            } => Opcode::Li,
            RvInstr::AluImm {
                op: RvImmOp::Addi,
                imm: 0,
                ..
            } => Opcode::Mov,
            RvInstr::AluImm { op, .. } => op.reg_form().canonical(),
            RvInstr::Lui { .. } => Opcode::Li,
            RvInstr::Ld { .. } => Opcode::Load,
            RvInstr::Sd { .. } => Opcode::Store,
            RvInstr::Branch { cond, .. } => cond.canonical(),
            RvInstr::Jal { .. } => Opcode::Jump,
            RvInstr::Ecall => Opcode::Out,
            RvInstr::Ebreak => Opcode::Halt,
        }
    }
}

impl fmt::Display for RvInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let x = |r: Reg| format!("x{}", r.index());
        match *self {
            RvInstr::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {}, {}, {}", op.mnemonic(), x(rd), x(rs1), x(rs2))
            }
            RvInstr::AluImm { op, rd, rs1, imm } => {
                write!(f, "{} {}, {}, {}", op.mnemonic(), x(rd), x(rs1), imm)
            }
            RvInstr::Lui { rd, imm } => write!(f, "lui {}, {}", x(rd), imm),
            RvInstr::Ld { rd, base, offset } => {
                write!(f, "ld {}, {}({})", x(rd), offset, x(base))
            }
            RvInstr::Sd { rs2, base, offset } => {
                write!(f, "sd {}, {}({})", x(rs2), offset, x(base))
            }
            RvInstr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "{} {}, {}, @{target}", cond.mnemonic(), x(rs1), x(rs2)),
            RvInstr::Jal { rd, target } => write!(f, "jal {}, @{target}", x(rd)),
            RvInstr::Ecall => write!(f, "ecall"),
            RvInstr::Ebreak => write!(f, "ebreak"),
        }
    }
}

/// `x0` reads as zero regardless of what a fault wrote into the backing
/// register file — the hardwired-zero invariant is enforced at read time,
/// which is exactly what makes `x0` faults architecturally masked.
fn rd_reg(regs: &[u64], r: Reg) -> u64 {
    if r.index() == 0 {
        0
    } else {
        regs[r.index()]
    }
}

/// Writes to `x0` are discarded.
fn wr_reg(regs: &mut [u64], r: Reg, v: u64) {
    if r.index() != 0 {
        regs[r.index()] = v;
    }
}

impl Isa for RvIsa {
    type Instr = RvInstr;

    const NAME: &'static str = "rv";
    const WORD_BITS: usize = WORD_BITS;
    const NUM_REGS: usize = NUM_REGS;
    const INSTR_ENCODING_LEN: usize = RV_INSTR_ENCODING_LEN;

    fn defs(instr: &RvInstr) -> Vec<Reg> {
        // A write to x0 is discarded, so it is not a definition: excluding
        // it keeps def-use chains (and thus D_D edges) truthful.
        let rd = match *instr {
            RvInstr::Alu { rd, .. }
            | RvInstr::AluImm { rd, .. }
            | RvInstr::Lui { rd, .. }
            | RvInstr::Ld { rd, .. }
            | RvInstr::Jal { rd, .. } => rd,
            RvInstr::Sd { .. } | RvInstr::Branch { .. } | RvInstr::Ecall | RvInstr::Ebreak => {
                return Vec::new()
            }
        };
        if rd.index() == 0 {
            Vec::new()
        } else {
            vec![rd]
        }
    }

    fn uses(instr: &RvInstr) -> Vec<Reg> {
        match *instr {
            RvInstr::Alu { rs1, rs2, .. } => vec![rs1, rs2],
            // The `li` pseudo (`addi rd, x0, imm`) reads only the hardwired
            // zero: like ISA-A's `Li` it has no dataflow use, and there is
            // no physical register behind an `x0` read to fault.
            RvInstr::AluImm { rs1: Reg(0), .. } => Vec::new(),
            RvInstr::AluImm { rs1, .. } => vec![rs1],
            RvInstr::Lui { .. } | RvInstr::Jal { .. } | RvInstr::Ebreak => Vec::new(),
            RvInstr::Ld { base, .. } => vec![base],
            // Value register first, base second — the D_M analysis expects
            // a store's value operand in Use(0), matching ISA-A's `Store`.
            RvInstr::Sd { rs2, base, .. } => vec![rs2, base],
            RvInstr::Branch { rs1, rs2, .. } => vec![rs1, rs2],
            RvInstr::Ecall => vec![Reg(10)],
        }
    }

    fn opcode_index(instr: &RvInstr) -> usize {
        instr.canonical_opcode().index()
    }

    fn opcode_class(instr: &RvInstr) -> OpcodeClass {
        instr.canonical_opcode().class()
    }

    fn is_float(_instr: &RvInstr) -> bool {
        false
    }

    fn flow(instr: &RvInstr) -> Flow {
        match *instr {
            RvInstr::Branch { target, .. } => Flow::Branch(target),
            RvInstr::Jal { target, .. } => Flow::Jump(target),
            RvInstr::Ebreak => Flow::Halt,
            _ => Flow::Fallthrough,
        }
    }

    fn mem_access(instr: &RvInstr) -> Option<MemAccess> {
        match *instr {
            RvInstr::Ld { offset, .. } => Some(MemAccess {
                is_store: false,
                alias: i64::from(offset),
            }),
            RvInstr::Sd { offset, .. } => Some(MemAccess {
                is_store: true,
                alias: i64::from(offset),
            }),
            _ => None,
        }
    }

    fn encode(instr: &RvInstr) -> Vec<u8> {
        let mut b = vec![0u8; RV_INSTR_ENCODING_LEN];
        let mut imm = 0i32;
        match *instr {
            RvInstr::Alu { op, rd, rs1, rs2 } => {
                b[0] = 0;
                b[1] = RvAluOp::ALL.iter().position(|o| *o == op).unwrap() as u8;
                b[2] = rd.0;
                b[3] = rs1.0;
                b[4] = rs2.0;
            }
            RvInstr::AluImm {
                op,
                rd,
                rs1,
                imm: i,
            } => {
                b[0] = 1;
                b[1] = RvImmOp::ALL.iter().position(|o| *o == op).unwrap() as u8;
                b[2] = rd.0;
                b[3] = rs1.0;
                imm = i;
            }
            RvInstr::Lui { rd, imm: i } => {
                b[0] = 2;
                b[2] = rd.0;
                imm = i;
            }
            RvInstr::Ld { rd, base, offset } => {
                b[0] = 3;
                b[2] = rd.0;
                b[3] = base.0;
                imm = offset;
            }
            RvInstr::Sd { rs2, base, offset } => {
                b[0] = 4;
                b[3] = base.0;
                b[4] = rs2.0;
                imm = offset;
            }
            RvInstr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                b[0] = 5;
                b[1] = RvBranchCond::ALL.iter().position(|c| *c == cond).unwrap() as u8;
                b[3] = rs1.0;
                b[4] = rs2.0;
                imm = target as i32;
            }
            RvInstr::Jal { rd, target } => {
                b[0] = 6;
                b[2] = rd.0;
                imm = target as i32;
            }
            RvInstr::Ecall => b[0] = 7,
            RvInstr::Ebreak => b[0] = 8,
        }
        b[8..12].copy_from_slice(&imm.to_le_bytes());
        b
    }

    fn decode(bytes: &[u8]) -> Result<RvInstr, DecodeError> {
        if bytes.len() != RV_INSTR_ENCODING_LEN {
            return Err(DecodeError::Truncated {
                len: bytes.len(),
                want: RV_INSTR_ENCODING_LEN,
            });
        }
        let reg = |b: u8| {
            let r = Reg(b);
            if r.is_valid() {
                Ok(r)
            } else {
                Err(DecodeError::BadRegister(b))
            }
        };
        let imm = i32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let target = || {
            if imm < 0 {
                Err(DecodeError::BadImmediate(i64::from(imm)))
            } else {
                Ok(imm as usize)
            }
        };
        match bytes[0] {
            0 => Ok(RvInstr::Alu {
                op: *RvAluOp::ALL
                    .get(bytes[1] as usize)
                    .ok_or(DecodeError::BadSubOpcode(bytes[1]))?,
                rd: reg(bytes[2])?,
                rs1: reg(bytes[3])?,
                rs2: reg(bytes[4])?,
            }),
            1 => Ok(RvInstr::AluImm {
                op: *RvImmOp::ALL
                    .get(bytes[1] as usize)
                    .ok_or(DecodeError::BadSubOpcode(bytes[1]))?,
                rd: reg(bytes[2])?,
                rs1: reg(bytes[3])?,
                imm,
            }),
            2 => Ok(RvInstr::Lui {
                rd: reg(bytes[2])?,
                imm,
            }),
            3 => Ok(RvInstr::Ld {
                rd: reg(bytes[2])?,
                base: reg(bytes[3])?,
                offset: imm,
            }),
            4 => Ok(RvInstr::Sd {
                rs2: reg(bytes[4])?,
                base: reg(bytes[3])?,
                offset: imm,
            }),
            5 => Ok(RvInstr::Branch {
                cond: *RvBranchCond::ALL
                    .get(bytes[1] as usize)
                    .ok_or(DecodeError::BadSubOpcode(bytes[1]))?,
                rs1: reg(bytes[3])?,
                rs2: reg(bytes[4])?,
                target: target()?,
            }),
            6 => Ok(RvInstr::Jal {
                rd: reg(bytes[2])?,
                target: target()?,
            }),
            7 => Ok(RvInstr::Ecall),
            8 => Ok(RvInstr::Ebreak),
            t => Err(DecodeError::BadTag(t)),
        }
    }

    fn execute(instr: &RvInstr, state: &mut MachineState) -> Result<Step, Trap> {
        match *instr {
            RvInstr::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(rd_reg(&state.regs, rs1), rd_reg(&state.regs, rs2));
                wr_reg(&mut state.regs, rd, v);
                Ok(Step::Next)
            }
            RvInstr::AluImm { op, rd, rs1, imm } => {
                let v = op
                    .reg_form()
                    .apply(rd_reg(&state.regs, rs1), i64::from(imm) as u64);
                wr_reg(&mut state.regs, rd, v);
                Ok(Step::Next)
            }
            RvInstr::Lui { rd, imm } => {
                wr_reg(&mut state.regs, rd, (i64::from(imm) << 12) as u64);
                Ok(Step::Next)
            }
            RvInstr::Ld { rd, base, offset } => {
                let addr = rd_reg(&state.regs, base).wrapping_add(i64::from(offset) as u64);
                let v = *state
                    .mem
                    .get(addr as usize)
                    .ok_or(Trap::OutOfBoundsLoad { addr })?;
                wr_reg(&mut state.regs, rd, v);
                Ok(Step::Next)
            }
            RvInstr::Sd { rs2, base, offset } => {
                let addr = rd_reg(&state.regs, base).wrapping_add(i64::from(offset) as u64);
                let v = rd_reg(&state.regs, rs2);
                let slot = state
                    .mem
                    .get_mut(addr as usize)
                    .ok_or(Trap::OutOfBoundsStore { addr })?;
                *slot = v;
                Ok(Step::Next)
            }
            RvInstr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(rd_reg(&state.regs, rs1), rd_reg(&state.regs, rs2)) {
                    Ok(Step::Goto(target))
                } else {
                    Ok(Step::Next)
                }
            }
            RvInstr::Jal { rd, target } => {
                wr_reg(&mut state.regs, rd, (state.pc + 1) as u64);
                Ok(Step::Goto(target))
            }
            RvInstr::Ecall => {
                state.output.push(rd_reg(&state.regs, Reg(10)));
                Ok(Step::Next)
            }
            RvInstr::Ebreak => Ok(Step::Halt),
        }
    }
}

const UNBOUND: usize = usize::MAX;
const LABEL_BASE: usize = usize::MAX / 2;

/// A forward-referenceable ISA-B code label (see [`RvAsm::label`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RvLabel(usize);

/// An assembler for ISA-B programs, mirroring [`Asm`](crate::Asm).
///
/// # Example
///
/// ```
/// use glaive_isa::rv::{RvAsm, RvAluOp, RvBranchCond};
/// use glaive_isa::Reg;
///
/// // Sum 1..=10 into x5 and emit it via a0/ecall.
/// let mut asm = RvAsm::new("rv-sum");
/// let (acc, i, lim) = (Reg(5), Reg(6), Reg(7));
/// asm.addi(acc, Reg(0), 0);
/// asm.addi(i, Reg(0), 1);
/// asm.addi(lim, Reg(0), 10);
/// let top = asm.label();
/// asm.bind(top);
/// asm.alu(RvAluOp::Add, acc, acc, i);
/// asm.addi(i, i, 1);
/// asm.branch(RvBranchCond::Bge, lim, i, top);
/// asm.mv(Reg(10), acc);
/// asm.ecall();
/// asm.ebreak();
/// let p = asm.finish().expect("labels resolve");
/// assert_eq!(p.len(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct RvAsm {
    name: String,
    instrs: Vec<RvInstr>,
    bindings: Vec<usize>,
    mem_words: usize,
}

impl RvAsm {
    /// Creates an empty assembler for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        RvAsm {
            name: name.into(),
            instrs: Vec::new(),
            bindings: Vec::new(),
            mem_words: 0,
        }
    }

    /// Sets the data-memory size in words (default 0).
    pub fn set_mem_words(&mut self, words: usize) -> &mut Self {
        self.mem_words = words;
        self
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> RvLabel {
        self.bindings.push(UNBOUND);
        RvLabel(self.bindings.len() - 1)
    }

    /// Binds `label` to the next instruction to be emitted.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: RvLabel) -> &mut Self {
        assert_eq!(self.bindings[label.0], UNBOUND, "label bound twice");
        self.bindings[label.0] = self.instrs.len();
        self
    }

    /// Index of the next instruction to be emitted.
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Emits a raw instruction (absolute targets).
    pub fn push(&mut self, instr: RvInstr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Emits `rd = rs1 op rs2`.
    pub fn alu(&mut self, op: RvAluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(RvInstr::Alu { op, rd, rs1, rs2 })
    }

    /// Emits `rd = rs1 op imm`.
    pub fn alu_imm(&mut self, op: RvImmOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(RvInstr::AluImm { op, rd, rs1, imm })
    }

    /// Emits `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alu_imm(RvImmOp::Addi, rd, rs1, imm)
    }

    /// Emits the `mv` pseudo-instruction (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// Emits the `li` pseudo-instruction (`addi rd, x0, imm`).
    pub fn li(&mut self, rd: Reg, imm: i32) -> &mut Self {
        self.addi(rd, Reg(0), imm)
    }

    /// Emits `lui rd, imm`.
    pub fn lui(&mut self, rd: Reg, imm: i32) -> &mut Self {
        self.push(RvInstr::Lui { rd, imm })
    }

    /// Emits `ld rd, offset(base)`.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.push(RvInstr::Ld { rd, base, offset })
    }

    /// Emits `sd rs2, offset(base)`.
    pub fn sd(&mut self, rs2: Reg, base: Reg, offset: i32) -> &mut Self {
        self.push(RvInstr::Sd { rs2, base, offset })
    }

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: RvBranchCond, rs1: Reg, rs2: Reg, label: RvLabel) -> &mut Self {
        self.push(RvInstr::Branch {
            cond,
            rs1,
            rs2,
            target: LABEL_BASE + label.0,
        })
    }

    /// Emits `jal rd, label`.
    pub fn jal(&mut self, rd: Reg, label: RvLabel) -> &mut Self {
        self.push(RvInstr::Jal {
            rd,
            target: LABEL_BASE + label.0,
        })
    }

    /// Emits the `j` pseudo-instruction (`jal x0, label`).
    pub fn j(&mut self, label: RvLabel) -> &mut Self {
        self.jal(Reg(0), label)
    }

    /// Emits `ecall` (outputs `a0`).
    pub fn ecall(&mut self) -> &mut Self {
        self.push(RvInstr::Ecall)
    }

    /// Emits `ebreak` (halts).
    pub fn ebreak(&mut self) -> &mut Self {
        self.push(RvInstr::Ebreak)
    }

    /// Resolves all labels and produces the final ISA-B [`Program`].
    ///
    /// # Errors
    ///
    /// [`AsmError::UnboundLabel`] if any referenced label was never bound,
    /// or [`AsmError::Program`] if a raw `push` left a dangling target.
    pub fn finish(mut self) -> Result<Program<RvIsa>, AsmError> {
        for (pc, instr) in self.instrs.iter_mut().enumerate() {
            let target = match *instr {
                RvInstr::Branch { target, .. } | RvInstr::Jal { target, .. }
                    if target >= LABEL_BASE =>
                {
                    let id = target - LABEL_BASE;
                    let bound = self.bindings[id];
                    if bound == UNBOUND {
                        return Err(AsmError::UnboundLabel { label: id, pc });
                    }
                    bound
                }
                _ => continue,
            };
            match instr {
                RvInstr::Branch { target: t, .. } | RvInstr::Jal { target: t, .. } => *t = target,
                _ => unreachable!(),
            }
        }
        Program::try_new(self.name, self.instrs, self.mem_words).map_err(AsmError::Program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rv(p: &Program<RvIsa>) -> Vec<u64> {
        // A miniature interpreter local to the tests: the real simulator
        // lives in glaive-sim, which this crate cannot depend on.
        let mut state = MachineState::new(NUM_REGS, vec![0; p.mem_words()]);
        let mut pc = 0usize;
        for _ in 0..100_000 {
            let Some(instr) = p.get(pc) else { break };
            state.pc = pc;
            match RvIsa::execute(instr, &mut state).expect("no trap") {
                Step::Next => pc += 1,
                Step::Goto(t) => pc = t,
                Step::Halt => return state.output,
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn sum_loop_runs() {
        let mut asm = RvAsm::new("sum");
        let (acc, i, lim) = (Reg(5), Reg(6), Reg(7));
        asm.li(acc, 0);
        asm.li(i, 1);
        asm.li(lim, 10);
        let top = asm.label();
        asm.bind(top);
        asm.alu(RvAluOp::Add, acc, acc, i);
        asm.addi(i, i, 1);
        asm.branch(RvBranchCond::Bge, lim, i, top);
        asm.mv(Reg(10), acc);
        asm.ecall();
        asm.ebreak();
        let p = asm.finish().expect("resolves");
        assert_eq!(run_rv(&p), vec![55]);
    }

    #[test]
    fn division_by_zero_does_not_trap() {
        assert_eq!(RvAluOp::Div.apply(7, 0), u64::MAX);
        assert_eq!(RvAluOp::Rem.apply(7, 0), 7);
        assert_eq!(
            RvAluOp::Div.apply(i64::MIN as u64, (-1i64) as u64),
            i64::MIN as u64
        );
        assert_eq!(RvAluOp::Rem.apply(i64::MIN as u64, (-1i64) as u64), 0);
    }

    #[test]
    fn x0_reads_zero_and_discards_writes() {
        let mut state = MachineState::new(NUM_REGS, vec![]);
        // Simulate a fault that corrupted the backing storage of x0.
        state.regs[0] = 0xdead_beef;
        let add = RvInstr::Alu {
            op: RvAluOp::Add,
            rd: Reg(1),
            rs1: Reg(0),
            rs2: Reg(0),
        };
        RvIsa::execute(&add, &mut state).unwrap();
        assert_eq!(state.regs[1], 0, "x0 must read as zero even when corrupted");
        let li = RvInstr::AluImm {
            op: RvImmOp::Addi,
            rd: Reg(0),
            rs1: Reg(1),
            imm: 7,
        };
        RvIsa::execute(&li, &mut state).unwrap();
        assert_eq!(state.regs[0], 0xdead_beef, "writes to x0 are discarded");
    }

    #[test]
    fn jal_links_return_address() {
        let mut state = MachineState::new(NUM_REGS, vec![]);
        state.pc = 4;
        let jal = RvInstr::Jal {
            rd: Reg(1),
            target: 9,
        };
        assert_eq!(RvIsa::execute(&jal, &mut state), Ok(Step::Goto(9)));
        assert_eq!(state.regs[1], 5);
    }

    #[test]
    fn defs_exclude_x0() {
        let nop = RvInstr::AluImm {
            op: RvImmOp::Addi,
            rd: Reg(0),
            rs1: Reg(0),
            imm: 0,
        };
        assert!(RvIsa::defs(&nop).is_empty());
        let j = RvInstr::Jal {
            rd: Reg(0),
            target: 0,
        };
        assert!(RvIsa::defs(&j).is_empty());
        let link = RvInstr::Jal {
            rd: Reg(1),
            target: 0,
        };
        assert_eq!(RvIsa::defs(&link), vec![Reg(1)]);
    }

    #[test]
    fn store_value_operand_is_use_zero() {
        let sd = RvInstr::Sd {
            rs2: Reg(3),
            base: Reg(4),
            offset: 8,
        };
        assert_eq!(RvIsa::uses(&sd), vec![Reg(3), Reg(4)]);
        assert_eq!(
            RvIsa::mem_access(&sd),
            Some(MemAccess {
                is_store: true,
                alias: 8
            })
        );
    }

    #[test]
    fn encode_decode_roundtrip_all_variants() {
        let mut samples = vec![
            RvInstr::Lui {
                rd: Reg(9),
                imm: -12345,
            },
            RvInstr::Ld {
                rd: Reg(1),
                base: Reg(2),
                offset: -3,
            },
            RvInstr::Sd {
                rs2: Reg(3),
                base: Reg(4),
                offset: 17,
            },
            RvInstr::Jal {
                rd: Reg(1),
                target: 7,
            },
            RvInstr::Ecall,
            RvInstr::Ebreak,
        ];
        for op in RvAluOp::ALL {
            samples.push(RvInstr::Alu {
                op,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(31),
            });
        }
        for op in RvImmOp::ALL {
            samples.push(RvInstr::AluImm {
                op,
                rd: Reg(1),
                rs1: Reg(2),
                imm: -9,
            });
        }
        for cond in RvBranchCond::ALL {
            samples.push(RvInstr::Branch {
                cond,
                rs1: Reg(5),
                rs2: Reg(6),
                target: 3,
            });
        }
        for instr in samples {
            let bytes = RvIsa::encode(&instr);
            assert_eq!(bytes.len(), RV_INSTR_ENCODING_LEN);
            assert_eq!(RvIsa::decode(&bytes).unwrap(), instr, "{instr}");
        }
    }

    #[test]
    fn decode_rejects_bad_bytes_without_panicking() {
        assert!(matches!(
            RvIsa::decode(&[0u8; 5]),
            Err(DecodeError::Truncated { len: 5, want: 12 })
        ));
        let mut bad_tag = vec![0u8; RV_INSTR_ENCODING_LEN];
        bad_tag[0] = 200;
        assert_eq!(RvIsa::decode(&bad_tag), Err(DecodeError::BadTag(200)));
        let mut bad_reg = vec![0u8; RV_INSTR_ENCODING_LEN];
        bad_reg[2] = 99;
        assert_eq!(RvIsa::decode(&bad_reg), Err(DecodeError::BadRegister(99)));
        let mut neg_target = vec![0u8; RV_INSTR_ENCODING_LEN];
        neg_target[0] = 6;
        neg_target[8..12].copy_from_slice(&(-1i32).to_le_bytes());
        assert_eq!(
            RvIsa::decode(&neg_target),
            Err(DecodeError::BadImmediate(-1))
        );
    }

    #[test]
    fn pseudo_instructions_canonicalise_to_their_meaning() {
        let li = RvInstr::AluImm {
            op: RvImmOp::Addi,
            rd: Reg(5),
            rs1: Reg(0),
            imm: 42,
        };
        assert_eq!(li.canonical_opcode(), Opcode::Li);
        assert!(RvIsa::uses(&li).is_empty(), "li reads only hardwired zero");

        let mv = RvInstr::AluImm {
            op: RvImmOp::Addi,
            rd: Reg(5),
            rs1: Reg(6),
            imm: 0,
        };
        assert_eq!(mv.canonical_opcode(), Opcode::Mov);
        assert_eq!(RvIsa::uses(&mv), vec![Reg(6)]);

        // A genuine immediate add is still an add.
        let addi = RvInstr::AluImm {
            op: RvImmOp::Addi,
            rd: Reg(5),
            rs1: Reg(6),
            imm: 1,
        };
        assert_eq!(addi.canonical_opcode(), RvAluOp::Add.canonical());
    }

    #[test]
    fn canonical_opcodes_stay_inside_shared_vocabulary() {
        let all = [
            RvInstr::Alu {
                op: RvAluOp::Sll,
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(3),
            },
            RvInstr::AluImm {
                op: RvImmOp::Sltiu,
                rd: Reg(1),
                rs1: Reg(2),
                imm: 1,
            },
            RvInstr::Lui { rd: Reg(1), imm: 1 },
            RvInstr::Ld {
                rd: Reg(1),
                base: Reg(2),
                offset: 0,
            },
            RvInstr::Sd {
                rs2: Reg(1),
                base: Reg(2),
                offset: 0,
            },
            RvInstr::Branch {
                cond: RvBranchCond::Bgeu,
                rs1: Reg(1),
                rs2: Reg(2),
                target: 0,
            },
            RvInstr::Jal {
                rd: Reg(0),
                target: 0,
            },
            RvInstr::Ecall,
            RvInstr::Ebreak,
        ];
        for instr in all {
            assert!(RvIsa::opcode_index(&instr) < Opcode::COUNT, "{instr}");
            assert!(!RvIsa::is_float(&instr));
        }
        assert_eq!(RvIsa::opcode_index(&RvInstr::Ecall), Opcode::Out.index());
        assert_eq!(RvIsa::opcode_class(&RvInstr::Ecall), OpcodeClass::Output);
        assert_eq!(RvIsa::opcode_index(&RvInstr::Ebreak), Opcode::Halt.index());
    }
}
