//! Property and robustness tests for the ISA-B ([`RvIsa`]) 12-byte
//! instruction encoding, driven by a deterministic inline RNG so the suite
//! builds offline with no external crates.
//!
//! Beyond the encode/decode round-trip, the decoder is exercised against
//! *every* single-bit corruption of every generated encoding and every
//! truncated prefix: it must never panic, and whatever it does accept must
//! re-encode to a stable fixed point (no decode-normalisation loops).

use glaive_isa::{
    Isa, Opcode, Reg, RvAluOp, RvBranchCond, RvImmOp, RvInstr, RvIsa, NUM_REGS,
    RV_INSTR_ENCODING_LEN,
};

const CASES: u64 = 2048;

/// SplitMix64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn reg(&mut self) -> Reg {
        Reg(self.below(NUM_REGS as u64) as u8)
    }

    fn pick<T: Copy>(&mut self, pool: &[T]) -> T {
        pool[self.below(pool.len() as u64) as usize]
    }

    /// A uniformly chosen well-formed ISA-B instruction.
    fn instr(&mut self) -> RvInstr {
        match self.below(9) {
            0 => RvInstr::Alu {
                op: self.pick(&RvAluOp::ALL),
                rd: self.reg(),
                rs1: self.reg(),
                rs2: self.reg(),
            },
            1 => RvInstr::AluImm {
                op: self.pick(&RvImmOp::ALL),
                rd: self.reg(),
                rs1: self.reg(),
                imm: self.next() as i32,
            },
            2 => RvInstr::Lui {
                rd: self.reg(),
                imm: self.next() as i32,
            },
            3 => RvInstr::Ld {
                rd: self.reg(),
                base: self.reg(),
                offset: self.below(2048) as i32 - 1024,
            },
            4 => RvInstr::Sd {
                rs2: self.reg(),
                base: self.reg(),
                offset: self.below(2048) as i32 - 1024,
            },
            5 => RvInstr::Branch {
                cond: self.pick(&RvBranchCond::ALL),
                rs1: self.reg(),
                rs2: self.reg(),
                target: self.below(4096) as usize,
            },
            6 => RvInstr::Jal {
                rd: self.reg(),
                target: self.below(4096) as usize,
            },
            7 => RvInstr::Ecall,
            _ => RvInstr::Ebreak,
        }
    }
}

/// encode → decode is the identity on all well-formed instructions, and the
/// encoding always has the fixed ISA-B width.
#[test]
fn encode_decode_roundtrip() {
    let mut rng = Rng(11);
    for _ in 0..CASES {
        let instr = rng.instr();
        let bytes = RvIsa::encode(&instr);
        assert_eq!(bytes.len(), RV_INSTR_ENCODING_LEN);
        assert_eq!(RvIsa::decode(&bytes).expect("well-formed"), instr);
    }
}

/// Flipping any single bit of any encoding must yield either a typed decode
/// error or another well-formed instruction — never a panic, and never an
/// instruction whose own encoding fails to round-trip.
#[test]
fn every_single_bit_flip_is_handled() {
    let mut rng = Rng(12);
    for _ in 0..512 {
        let bytes = RvIsa::encode(&rng.instr());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[byte] ^= 1 << bit;
                if let Ok(mutant) = RvIsa::decode(&evil) {
                    let reencoded = RvIsa::encode(&mutant);
                    assert_eq!(
                        RvIsa::decode(&reencoded).expect("mutant re-encoding decodes"),
                        mutant,
                        "accepted mutant is not an encode/decode fixed point"
                    );
                }
            }
        }
    }
}

/// Every strict prefix of a valid encoding is rejected, not misparsed.
#[test]
fn every_truncation_is_rejected() {
    let mut rng = Rng(13);
    for _ in 0..512 {
        let bytes = RvIsa::encode(&rng.instr());
        for len in 0..bytes.len() {
            assert!(
                RvIsa::decode(&bytes[..len]).is_err(),
                "truncated {len}-byte prefix decoded"
            );
        }
    }
}

/// Register operands reported through the [`Isa`] trait are always valid,
/// `x0` never appears as a definition or a dataflow use of the `li` pseudo,
/// and every canonical opcode index stays inside the shared vocabulary.
#[test]
fn operands_and_opcodes_respect_isa_b_rules() {
    let mut rng = Rng(14);
    for _ in 0..CASES {
        let instr = rng.instr();
        for r in RvIsa::defs(&instr).iter().chain(RvIsa::uses(&instr).iter()) {
            assert!(r.is_valid());
        }
        assert!(
            !RvIsa::defs(&instr).contains(&Reg(0)),
            "x0 write reported as a definition: {instr}"
        );
        if let RvInstr::AluImm { rs1: Reg(0), .. } = instr {
            assert!(
                RvIsa::uses(&instr).is_empty(),
                "hardwired-zero read reported as a use: {instr}"
            );
        }
        assert!(RvIsa::opcode_index(&instr) < Opcode::COUNT);
    }
}
