//! Property-based tests for instruction encoding and operand accessors,
//! driven by a deterministic inline RNG so the suite builds offline with
//! no external crates.

use glaive_isa::{AluOp, BranchCond, CvtOp, FpuOp, FpuUnaryOp, Instr, Reg, NUM_REGS};

const CASES: u64 = 4096;

/// SplitMix64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn reg(&mut self) -> Reg {
        Reg(self.below(NUM_REGS as u64) as u8)
    }

    fn pick<T: Copy>(&mut self, pool: &[T]) -> T {
        pool[self.below(pool.len() as u64) as usize]
    }

    /// A uniformly chosen well-formed instruction.
    fn instr(&mut self) -> Instr {
        match self.below(13) {
            0 => Instr::Alu {
                op: self.pick(&AluOp::ALL),
                rd: self.reg(),
                rs1: self.reg(),
                rs2: self.reg(),
            },
            1 => Instr::AluImm {
                op: self.pick(&AluOp::ALL),
                rd: self.reg(),
                rs1: self.reg(),
                imm: self.next() as i64,
            },
            2 => Instr::Fpu {
                op: self.pick(&FpuOp::ALL),
                rd: self.reg(),
                rs1: self.reg(),
                rs2: self.reg(),
            },
            3 => Instr::FpuUnary {
                op: self.pick(&FpuUnaryOp::ALL),
                rd: self.reg(),
                rs1: self.reg(),
            },
            4 => Instr::Cvt {
                op: self.pick(&CvtOp::ALL),
                rd: self.reg(),
                rs1: self.reg(),
            },
            5 => Instr::Li {
                rd: self.reg(),
                imm: self.next() as i64,
            },
            6 => Instr::Mov {
                rd: self.reg(),
                rs1: self.reg(),
            },
            7 => Instr::Load {
                rd: self.reg(),
                base: self.reg(),
                offset: self.below(2048) as i64 - 1024,
            },
            8 => Instr::Store {
                rs: self.reg(),
                base: self.reg(),
                offset: self.below(2048) as i64 - 1024,
            },
            9 => Instr::Branch {
                cond: self.pick(&BranchCond::ALL),
                rs1: self.reg(),
                rs2: self.reg(),
                target: self.below(4096) as usize,
            },
            10 => Instr::Jump {
                target: self.below(4096) as usize,
            },
            11 => Instr::Out { rs1: self.reg() },
            _ => Instr::Halt,
        }
    }
}

/// encode → decode is the identity on all well-formed instructions.
#[test]
fn encode_decode_roundtrip() {
    let mut rng = Rng(1);
    for _ in 0..CASES {
        let instr = rng.instr();
        let decoded = Instr::decode(&instr.encode()).expect("well-formed");
        assert_eq!(decoded, instr);
    }
}

/// Every operand reported by defs()/uses() is a valid register, and
/// operands() is exactly uses() followed by defs().
#[test]
fn operands_are_valid_and_ordered() {
    let mut rng = Rng(2);
    for _ in 0..CASES {
        let instr = rng.instr();
        for r in instr.defs().iter().chain(instr.uses().iter()) {
            assert!(r.is_valid());
        }
        let mut expect = instr.uses();
        expect.extend(instr.defs());
        assert_eq!(instr.operands(), expect);
    }
}

/// At most one destination register per instruction in this ISA.
#[test]
fn at_most_one_def() {
    let mut rng = Rng(3);
    for _ in 0..CASES {
        assert!(rng.instr().defs().len() <= 1);
    }
}

/// Control instructions never write registers.
#[test]
fn control_instrs_define_nothing() {
    let mut rng = Rng(4);
    for _ in 0..CASES {
        let instr = rng.instr();
        if instr.is_control() {
            assert!(instr.defs().is_empty());
        }
    }
}

/// Disassembly text is non-empty and stable under re-format.
#[test]
fn display_is_nonempty() {
    let mut rng = Rng(5);
    for _ in 0..CASES {
        let instr = rng.instr();
        let s = instr.to_string();
        assert!(!s.is_empty());
        assert_eq!(s, instr.to_string());
    }
}

/// BranchCond::eval matches the Rust comparison it models.
#[test]
fn branch_eval_matches_semantics() {
    let mut rng = Rng(6);
    for _ in 0..CASES {
        let (a, b) = (rng.next(), rng.next());
        assert_eq!(BranchCond::Eq.eval(a, b), a == b);
        assert_eq!(BranchCond::Ne.eval(a, b), a != b);
        assert_eq!(BranchCond::Lt.eval(a, b), (a as i64) < (b as i64));
        assert_eq!(BranchCond::Ge.eval(a, b), (a as i64) >= (b as i64));
        assert_eq!(BranchCond::Le.eval(a, b), (a as i64) <= (b as i64));
        assert_eq!(BranchCond::Gt.eval(a, b), (a as i64) > (b as i64));
        assert_eq!(BranchCond::Ltu.eval(a, b), a < b);
        assert_eq!(BranchCond::Geu.eval(a, b), a >= b);
    }
}
