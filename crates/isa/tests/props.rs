//! Property-based tests for instruction encoding and operand accessors.

use glaive_isa::{AluOp, BranchCond, CvtOp, FpuOp, FpuUnaryOp, Instr, Reg, NUM_REGS};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0..NUM_REGS as u8).prop_map(Reg)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let target = 0usize..4096;
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (arb_alu_op(), arb_reg(), arb_reg(), any::<i64>())
            .prop_map(|(op, rd, rs1, imm)| Instr::AluImm { op, rd, rs1, imm }),
        (
            proptest::sample::select(FpuOp::ALL.to_vec()),
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Fpu { op, rd, rs1, rs2 }),
        (
            proptest::sample::select(FpuUnaryOp::ALL.to_vec()),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs1)| Instr::FpuUnary { op, rd, rs1 }),
        (
            proptest::sample::select(CvtOp::ALL.to_vec()),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs1)| Instr::Cvt { op, rd, rs1 }),
        (arb_reg(), any::<i64>()).prop_map(|(rd, imm)| Instr::Li { rd, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Instr::Mov { rd, rs1 }),
        (arb_reg(), arb_reg(), -1024i64..1024).prop_map(|(rd, base, offset)| Instr::Load {
            rd,
            base,
            offset
        }),
        (arb_reg(), arb_reg(), -1024i64..1024).prop_map(|(rs, base, offset)| Instr::Store {
            rs,
            base,
            offset
        }),
        (
            proptest::sample::select(BranchCond::ALL.to_vec()),
            arb_reg(),
            arb_reg(),
            target.clone()
        )
            .prop_map(|(cond, rs1, rs2, target)| Instr::Branch {
                cond,
                rs1,
                rs2,
                target
            }),
        target.prop_map(|target| Instr::Jump { target }),
        arb_reg().prop_map(|rs1| Instr::Out { rs1 }),
        Just(Instr::Halt),
    ]
}

proptest! {
    /// encode → decode is the identity on all well-formed instructions.
    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let decoded = Instr::decode(&instr.encode()).expect("well-formed");
        prop_assert_eq!(decoded, instr);
    }

    /// Every operand reported by defs()/uses() is a valid register, and
    /// operands() is exactly uses() followed by defs().
    #[test]
    fn operands_are_valid_and_ordered(instr in arb_instr()) {
        for r in instr.defs().iter().chain(instr.uses().iter()) {
            prop_assert!(r.is_valid());
        }
        let mut expect = instr.uses();
        expect.extend(instr.defs());
        prop_assert_eq!(instr.operands(), expect);
    }

    /// At most one destination register per instruction in this ISA.
    #[test]
    fn at_most_one_def(instr in arb_instr()) {
        prop_assert!(instr.defs().len() <= 1);
    }

    /// Control instructions never write registers.
    #[test]
    fn control_instrs_define_nothing(instr in arb_instr()) {
        if instr.is_control() {
            prop_assert!(instr.defs().is_empty());
        }
    }

    /// Disassembly text is non-empty and stable under re-format.
    #[test]
    fn display_is_nonempty(instr in arb_instr()) {
        let s = instr.to_string();
        prop_assert!(!s.is_empty());
        prop_assert_eq!(s.clone(), instr.to_string());
    }

    /// BranchCond::eval matches the Rust comparison it models.
    #[test]
    fn branch_eval_matches_semantics(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(BranchCond::Eq.eval(a, b), a == b);
        prop_assert_eq!(BranchCond::Ne.eval(a, b), a != b);
        prop_assert_eq!(BranchCond::Lt.eval(a, b), (a as i64) < (b as i64));
        prop_assert_eq!(BranchCond::Ge.eval(a, b), (a as i64) >= (b as i64));
        prop_assert_eq!(BranchCond::Le.eval(a, b), (a as i64) <= (b as i64));
        prop_assert_eq!(BranchCond::Gt.eval(a, b), (a as i64) > (b as i64));
        prop_assert_eq!(BranchCond::Ltu.eval(a, b), a < b);
        prop_assert_eq!(BranchCond::Geu.eval(a, b), a >= b);
    }
}
