//! Chaos-layer integration tests for the campaign fabric: seeded network
//! fault injection on every worker connection, coordinator kill+restart
//! with checkpoint resume, and the typed give-up path. The invariant
//! throughout is the fabric's defining one — the merged `GroundTruth` is
//! byte-identical to a serial run no matter what the transport does.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use glaive_campaign::{run_worker_with, Coordinator, FabricConfig, FabricError, WorkerOptions};
use glaive_faultsim::{
    Campaign, CampaignConfig, CampaignError, CampaignProgress, CheckpointSink, InterruptReason,
    MemoryCheckpoint, RunControl,
};
use glaive_isa::{AluOp, Asm, BranchCond, Program, Reg};
use glaive_wire::{ChaosConfig, ChaosPlan, RetryPolicy};

fn sum_program() -> Program {
    let mut asm = Asm::new("sum");
    let (acc, i, one, lim) = (Reg(1), Reg(2), Reg(3), Reg(4));
    asm.li(acc, 0);
    asm.li(i, 1);
    asm.li(one, 1);
    asm.li(lim, 10);
    let top = asm.label();
    asm.bind(top);
    asm.alu(AluOp::Add, acc, acc, i);
    asm.alu(AluOp::Add, i, i, one);
    asm.branch(BranchCond::Le, i, lim, top);
    asm.out(acc);
    asm.halt();
    asm.finish().expect("resolves")
}

fn config() -> CampaignConfig {
    CampaignConfig {
        bit_stride: 4,
        instances_per_site: 2,
        hang_factor: 4,
        threads: 1,
        predict_dead_defs: true,
    }
}

fn fabric() -> FabricConfig {
    FabricConfig {
        chunk_size: 16,
        lease: Duration::from_secs(5),
        retry_ms: 5,
        stall: Duration::from_secs(5),
    }
}

fn patient_chaos_options(plan: &ChaosPlan, worker: u64) -> WorkerOptions {
    WorkerOptions {
        retry: RetryPolicy::patient(Duration::from_secs(60)),
        chaos: Some(plan.clone()),
        stream_base: worker << 32,
        ..WorkerOptions::default()
    }
}

#[test]
fn chaos_fleet_matches_serial_bit_for_bit() {
    let p = sum_program();
    let serial = Campaign::try_new(&p, &[], config())
        .expect("valid config")
        .run();

    let plan = ChaosPlan::new(ChaosConfig::new(0xC4A0_5EED).with_fault_ppm(2_000));
    let coordinator =
        Coordinator::try_new(&p, &[], config(), fabric()).expect("valid fabric config");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let finished = AtomicBool::new(false);

    let (truth, survived) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3u64)
            .map(|i| {
                let addr = addr.clone();
                let options = patient_chaos_options(&plan, i);
                let finished = &finished;
                scope.spawn(move || {
                    run_worker_with(&addr, &format!("chaos-{i}"), Some(finished), options)
                        .expect("patient worker outlasts the chaos")
                })
            })
            .collect();
        let truth = coordinator
            .run(listener, &RunControl::new())
            .expect("campaign merges under chaos");
        finished.store(true, Ordering::Relaxed);
        let mut survived = 0u64;
        for h in handles {
            let report = h.join().expect("worker thread");
            survived += report.retries;
        }
        (truth, survived)
    });

    assert_eq!(serial.to_bytes(), truth.to_bytes());
    assert!(
        plan.report().total() > 0,
        "the schedule must actually inject faults for this test to mean anything"
    );
    let _ = survived; // how many is schedule-dependent; zero is legal here
}

/// Raises a cancellation flag once a threshold of injections completes.
struct CancelAt<'a> {
    threshold: usize,
    cancel: &'a AtomicBool,
}

impl CampaignProgress for CancelAt<'_> {
    fn injections(&self, done: usize, _total: usize) {
        if done >= self.threshold {
            self.cancel.store(true, Ordering::Relaxed);
        }
    }
}

#[test]
fn coordinator_restart_mid_fleet_workers_reconnect_and_match_serial() {
    let p = sum_program();
    let campaign = Campaign::try_new(&p, &[], config()).expect("valid config");
    let uninterrupted = campaign.run();
    let total = uninterrupted.total_injections();
    assert!(total > 256, "need enough work to interrupt mid-way");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let finished = AtomicBool::new(false);
    let sink = MemoryCheckpoint::new();

    let (truth, reconnects) = std::thread::scope(|scope| {
        // A fleet that outlives the coordinator: patient enough to ride
        // out the restart window on backoff alone.
        let handles: Vec<_> = (0..2u64)
            .map(|i| {
                let addr = addr.clone();
                let options = WorkerOptions {
                    retry: RetryPolicy::patient(Duration::from_secs(60)),
                    stream_base: i << 32,
                    ..WorkerOptions::default()
                };
                let finished = &finished;
                scope.spawn(move || {
                    run_worker_with(&addr, &format!("survivor-{i}"), Some(finished), options)
                        .expect("worker survives the restart")
                })
            })
            .collect();

        // Incarnation one: checkpoints as it goes, then dies mid-fleet
        // (cancelled once a quarter of the campaign has merged).
        let cancel = AtomicBool::new(false);
        let progress = CancelAt {
            threshold: total / 4,
            cancel: &cancel,
        };
        let ctrl = RunControl {
            progress: &progress,
            cancel: Some(&cancel),
            checkpoint: Some(&sink),
            checkpoint_interval: 16,
            ..RunControl::new()
        };
        let err = Coordinator::try_new(&p, &[], config(), fabric())
            .expect("valid fabric config")
            .run(listener, &ctrl)
            .expect_err("incarnation one dies mid-fleet");
        match err {
            FabricError::Campaign(CampaignError::Interrupted { reason, .. }) => {
                assert_eq!(reason, InterruptReason::Cancelled)
            }
            other => panic!("expected an interruption, got {other}"),
        }
        assert!(sink.load().is_some(), "checkpoint saved before death");

        // Incarnation two: rebind the *same* address (the workers only
        // know that one) and resume from the checkpoint. The OS may hold
        // the port briefly, so binding retries.
        let deadline = Instant::now() + Duration::from_secs(30);
        let relisten = loop {
            match TcpListener::bind(&addr) {
                Ok(l) => break l,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => panic!("could not rebind {addr}: {e}"),
            }
        };
        let truth = Coordinator::try_new(&p, &[], config(), fabric())
            .expect("valid fabric config")
            .run(
                relisten,
                &RunControl {
                    checkpoint: Some(&sink),
                    ..RunControl::new()
                },
            )
            .expect("incarnation two finishes the campaign");
        finished.store(true, Ordering::Relaxed);

        let mut reconnects = 0u64;
        for h in handles {
            reconnects += h.join().expect("worker thread").reconnects;
        }
        (truth, reconnects)
    });

    assert_eq!(uninterrupted.to_bytes(), truth.to_bytes());
    assert!(
        reconnects > 0,
        "at least one worker must have redialled across the restart"
    );
}

#[test]
fn dead_coordinator_yields_typed_retries_exhausted() {
    // Bind, learn the address, close: nothing listens there afterwards.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let options = WorkerOptions {
        retry: RetryPolicy {
            base: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        ..WorkerOptions::default()
    };
    let err =
        run_worker_with(&addr, "orphan", None, options).expect_err("no coordinator ever answers");
    match err {
        FabricError::RetriesExhausted { attempts, last } => {
            assert_eq!(attempts, 3);
            assert!(last.is_transient(), "the wrapped failure was transient");
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

#[test]
fn cancellation_interrupts_a_worker_blocked_on_a_silent_coordinator() {
    // A listener that accepts and then never speaks: the worker's Hello
    // gets no Welcome, so it blocks in the reply read.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let cancel = AtomicBool::new(false);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            let (stream, _) = listener.accept().expect("accept");
            // Hold the socket open, silently, until the test ends.
            std::thread::sleep(Duration::from_secs(5));
            drop(stream);
        });
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(150));
            cancel.store(true, Ordering::Relaxed);
        });
        let start = Instant::now();
        let report = run_worker_with(&addr, "cancelled", Some(&cancel), WorkerOptions::default())
            .expect("cancellation is a clean exit, not an error");
        assert_eq!(report.chunks, 0);
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "cancellation must cut the reply wait short, took {:?}",
            start.elapsed()
        );
    });
}
