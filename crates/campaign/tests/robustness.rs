//! Byte-level robustness of the `GLVCMP01` campaign-fabric frames.
//!
//! Like `GLVSRV01` and the persistent artifact formats, every fabric frame
//! carries a trailing FNV-1a checksum verified before anything is parsed.
//! FNV-1a folds each input byte through `(h ^ b) * prime` with an odd
//! (hence invertible) multiplier, so changing any single byte always
//! changes the digest: every single-byte flip must be rejected, at every
//! position, and every truncation must decode to a typed error — never a
//! panic, and never a silently different message. A coordinator feeds
//! these decoders bytes from arbitrary peers; this property is what keeps
//! a hostile worker from corrupting a merge.

use glaive_campaign::protocol::{CampaignJob, ChunkAssignment, ToCoordinator, ToWorker};
use glaive_faultsim::{BitSite, InjectionRecord};
use glaive_isa::{AluOp, Asm, Program, Reg};
use glaive_sim::{OperandSlot, Outcome};

fn tiny_program() -> Program {
    let mut asm = Asm::new("cmp-robustness");
    asm.set_mem_words(2);
    asm.li(Reg(1), 11)
        .alu_imm(AluOp::Mul, Reg(2), Reg(1), 3)
        .store(Reg(2), Reg(0), 0)
        .out(Reg(2))
        .halt();
    asm.finish().expect("assembles")
}

fn sample_records() -> Vec<InjectionRecord> {
    vec![
        InjectionRecord {
            site: BitSite {
                pc: 0,
                slot: OperandSlot::Def(0),
                bit: 0,
            },
            instance: 0,
            outcome: Outcome::Masked,
        },
        InjectionRecord {
            site: BitSite {
                pc: 3,
                slot: OperandSlot::Use(0),
                bit: 63,
            },
            instance: 7,
            outcome: Outcome::Sdc,
        },
        InjectionRecord {
            site: BitSite {
                pc: 1,
                slot: OperandSlot::Use(1),
                bit: 17,
            },
            instance: 2,
            outcome: Outcome::Crash,
        },
    ]
}

fn worker_frames() -> Vec<Vec<u8>> {
    let frames = vec![
        ToCoordinator::Hello {
            worker: "robustness".into(),
        }
        .to_frame(),
        ToCoordinator::Fetch.to_frame(),
        ToCoordinator::Heartbeat { chunk: 12 }.to_frame(),
        ToCoordinator::Complete {
            chunk: 12,
            sub_seed: 0x0123_4567_89ab_cdef,
            records: sample_records(),
        }
        .to_frame(),
    ];
    frames
        .into_iter()
        .map(glaive_wire::Frame::into_bytes)
        .collect()
}

fn coordinator_frames() -> Vec<Vec<u8>> {
    let frames = vec![
        ToWorker::Welcome(CampaignJob {
            fingerprint: 0xfeed_f00d_dead_beef,
            total: 4096,
            program: tiny_program(),
            init_mem: vec![0, u64::MAX, 42],
            bit_stride: 4,
            instances_per_site: 2,
            hang_factor: 4,
            predict_dead_defs: true,
        })
        .to_frame(),
        ToWorker::Assign(ChunkAssignment {
            chunk: 12,
            start: 768,
            len: 64,
            sub_seed: 0x0123_4567_89ab_cdef,
            lease_ms: 5000,
        })
        .to_frame(),
        ToWorker::Wait { retry_ms: 25 }.to_frame(),
        ToWorker::Done.to_frame(),
        ToWorker::Ack.to_frame(),
        ToWorker::Error {
            message: "sub-seed mismatch for chunk 12".into(),
        }
        .to_frame(),
    ];
    frames
        .into_iter()
        .map(glaive_wire::Frame::into_bytes)
        .collect()
}

/// Any single flipped byte — magic, opcode, body, or checksum — must yield
/// a typed decode error, at every position of every frame kind.
#[test]
fn every_byte_flip_is_rejected_in_worker_frames() {
    for frame in worker_frames() {
        assert!(ToCoordinator::from_frame(&frame).is_ok(), "intact decodes");
        for pos in 0..frame.len() {
            for mask in [0x01u8, 0xff] {
                let mut bad = frame.clone();
                bad[pos] ^= mask;
                assert!(
                    ToCoordinator::from_frame(&bad).is_err(),
                    "flip {mask:#04x} at byte {pos}/{} must be rejected",
                    frame.len()
                );
            }
        }
    }
}

#[test]
fn every_byte_flip_is_rejected_in_coordinator_frames() {
    for frame in coordinator_frames() {
        assert!(ToWorker::from_frame(&frame).is_ok(), "intact decodes");
        for pos in 0..frame.len() {
            for mask in [0x01u8, 0xff] {
                let mut bad = frame.clone();
                bad[pos] ^= mask;
                assert!(
                    ToWorker::from_frame(&bad).is_err(),
                    "flip {mask:#04x} at byte {pos}/{} must be rejected",
                    frame.len()
                );
            }
        }
    }
}

/// Every truncated prefix must decode to a typed error, never a panic.
#[test]
fn every_truncation_is_rejected() {
    for frame in worker_frames() {
        for cut in 0..frame.len() {
            assert!(
                ToCoordinator::from_frame(&frame[..cut]).is_err(),
                "cut at {cut}/{} must be rejected",
                frame.len()
            );
        }
    }
    for frame in coordinator_frames() {
        for cut in 0..frame.len() {
            assert!(
                ToWorker::from_frame(&frame[..cut]).is_err(),
                "cut at {cut}/{} must be rejected",
                frame.len()
            );
        }
    }
}

/// Cross-protocol confusion: a `GLVSRV01` frame presented to the fabric
/// decoder (and vice versa) is a `BadMagic`, not a misparse.
#[test]
fn cross_protocol_frames_are_bad_magic() {
    // Build a *validly sealed* frame under the foreign magic — the sealed
    // builder API happily signs for other protocols; what it cannot do is
    // emit an unchecksummed payload.
    let mut b = glaive_wire::FrameBuilder::new(b"GLVSRV01");
    b.u8(0x02);
    let reframed = b.seal();
    assert_eq!(
        ToCoordinator::from_frame(reframed.bytes()),
        Err(glaive_wire::ProtocolError::BadMagic)
    );
}
