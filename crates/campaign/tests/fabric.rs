//! Fault-tolerance and determinism integration tests for the campaign
//! fabric: worker death, lease expiry, duplicate completions, malformed
//! completions, and checkpoint interop with the serial campaign — every
//! scenario must still merge a `GroundTruth` byte-identical to a serial
//! single-process run of the same configuration.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use glaive_campaign::protocol::{chunk_sub_seed, ToCoordinator, ToWorker};
use glaive_campaign::FabricError;
use glaive_campaign::{run_distributed, run_worker, Coordinator, FabricConfig};
use glaive_faultsim::{
    Campaign, CampaignConfig, CampaignError, CampaignPlan, CampaignProgress, CheckpointSink,
    InjectionRecord, InterruptReason, MemoryCheckpoint, RunControl,
};
use glaive_isa::{AluOp, Asm, BranchCond, Program, Reg};
use glaive_wire::{read_frame, write_frame};

fn sum_program() -> Program {
    let mut asm = Asm::new("sum");
    let (acc, i, one, lim) = (Reg(1), Reg(2), Reg(3), Reg(4));
    asm.li(acc, 0);
    asm.li(i, 1);
    asm.li(one, 1);
    asm.li(lim, 10);
    let top = asm.label();
    asm.bind(top);
    asm.alu(AluOp::Add, acc, acc, i);
    asm.alu(AluOp::Add, i, i, one);
    asm.branch(BranchCond::Le, i, lim, top);
    asm.out(acc);
    asm.halt();
    asm.finish().expect("resolves")
}

fn config() -> CampaignConfig {
    CampaignConfig {
        bit_stride: 4,
        instances_per_site: 2,
        hang_factor: 4,
        threads: 1,
        predict_dead_defs: true,
    }
}

fn fabric() -> FabricConfig {
    FabricConfig {
        chunk_size: 32,
        lease: Duration::from_secs(5),
        retry_ms: 5,
        stall: Duration::from_secs(5),
    }
}

/// A hand-driven protocol client for misbehaving-worker scenarios.
struct HandWorker {
    stream: TcpStream,
}

impl HandWorker {
    fn connect(addr: &str) -> HandWorker {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut w = HandWorker { stream };
        w.send(&ToCoordinator::Hello {
            worker: "hand".into(),
        });
        match w.recv() {
            ToWorker::Welcome(_) => {}
            other => panic!("expected Welcome, got {other:?}"),
        }
        w
    }

    fn send(&mut self, msg: &ToCoordinator) {
        write_frame(&mut self.stream, &msg.to_frame()).expect("send");
    }

    fn recv(&mut self) -> ToWorker {
        ToWorker::from_frame(&read_frame(&mut self.stream).expect("frame")).expect("decode")
    }

    fn fetch(&mut self) -> ToWorker {
        self.send(&ToCoordinator::Fetch);
        self.recv()
    }
}

/// Computes the correct records for a chunk span directly from the plan
/// (what an honest worker would send).
fn chunk_records(
    campaign: &Campaign<'_>,
    plan: &CampaignPlan,
    start: u64,
    len: u64,
) -> Vec<InjectionRecord> {
    let mut predicted = vec![None; plan.specs.len()];
    for &(i, rec) in &plan.predicted {
        predicted[i] = Some(rec);
    }
    (start..start + len)
        .map(|i| {
            let i = i as usize;
            predicted[i]
                .unwrap_or_else(|| campaign.inject(&plan.specs[i], &plan.golden, &plan.fault_cfg))
        })
        .collect()
}

/// Runs a coordinator in a scoped thread against an ephemeral listener,
/// hands the address to `scenario`, and returns the merged truth.
fn with_coordinator<F>(
    program: &Program,
    config: CampaignConfig,
    fabric: FabricConfig,
    scenario: F,
) -> Result<glaive_faultsim::GroundTruth, FabricError>
where
    F: FnOnce(&str) + Send,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::scope(|scope| {
        let coord = scope.spawn(|| {
            // Safety net: a scenario that panics mid-protocol must not hang
            // the test suite on an eternal coordinator join.
            let ctrl = RunControl {
                deadline: Some(std::time::Instant::now() + Duration::from_secs(120)),
                ..RunControl::new()
            };
            Coordinator::try_new(program, &[], config, fabric)
                .expect("valid fabric config")
                .run(listener, &ctrl)
        });
        scenario(&addr);
        coord.join().expect("coordinator thread")
    })
}

#[test]
fn two_workers_match_serial_bit_for_bit() {
    let p = sum_program();
    let serial = Campaign::try_new(&p, &[], config())
        .expect("valid config")
        .run();
    let distributed = run_distributed(&p, &[], config(), fabric(), 2, &RunControl::new())
        .expect("fabric completes");
    assert_eq!(serial.to_bytes(), distributed.to_bytes());
    assert_eq!(
        serial.predicted_injections(),
        distributed.predicted_injections()
    );
}

#[test]
fn worker_death_mid_chunk_reroutes_and_stays_bit_identical() {
    let p = sum_program();
    let serial = Campaign::try_new(&p, &[], config())
        .expect("valid config")
        .run();
    let truth = with_coordinator(&p, config(), fabric(), |addr| {
        // A worker takes a chunk and dies holding the lease: the dropped
        // connection must release the chunk immediately.
        let mut dying = HandWorker::connect(addr);
        match dying.fetch() {
            ToWorker::Assign(_) => {}
            other => panic!("expected an assignment, got {other:?}"),
        }
        drop(dying); // death, mid-chunk, lease unexpired

        let report = run_worker(addr, "survivor", None).expect("survivor finishes");
        assert!(report.chunks > 0);
    })
    .expect("campaign completes despite the death");
    assert_eq!(serial.to_bytes(), truth.to_bytes());
}

#[test]
fn lease_expiry_reassigns_the_chunk_to_the_same_connection() {
    let p = sum_program();
    let serial = Campaign::try_new(&p, &[], config())
        .expect("valid config")
        .run();
    let campaign = Campaign::try_new(&p, &[], config()).expect("valid config");
    let plan = campaign.plan().expect("plan");
    let short_lease = FabricConfig {
        lease: Duration::from_millis(50),
        ..fabric()
    };
    let truth = with_coordinator(&p, config(), short_lease, |addr| {
        let mut w = HandWorker::connect(addr);
        // Take the first chunk and silently straggle past the lease.
        let first = match w.fetch() {
            ToWorker::Assign(a) => a,
            other => panic!("expected an assignment, got {other:?}"),
        };
        std::thread::sleep(Duration::from_millis(200));
        // Now behave honestly: keep fetching and completing. The expired
        // chunk must come around again (to this same connection — there is
        // no other), or the campaign could never finish.
        let mut saw_first_again = false;
        loop {
            match w.fetch() {
                ToWorker::Assign(a) => {
                    if a.chunk == first.chunk {
                        saw_first_again = true;
                    }
                    let records = chunk_records(&campaign, &plan, a.start, a.len);
                    w.send(&ToCoordinator::Complete {
                        chunk: a.chunk,
                        sub_seed: a.sub_seed,
                        records,
                    });
                    match w.recv() {
                        ToWorker::Ack | ToWorker::Done => {}
                        other => panic!("expected Ack, got {other:?}"),
                    }
                }
                ToWorker::Wait { retry_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_ms));
                }
                ToWorker::Done => break,
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert!(saw_first_again, "expired chunk must be reassigned");
    })
    .expect("campaign completes");
    assert_eq!(serial.to_bytes(), truth.to_bytes());
}

#[test]
fn duplicate_completion_is_acknowledged_and_merged_once() {
    let p = sum_program();
    let serial = Campaign::try_new(&p, &[], config())
        .expect("valid config")
        .run();
    let campaign = Campaign::try_new(&p, &[], config()).expect("valid config");
    let plan = campaign.plan().expect("plan");
    let truth = with_coordinator(&p, config(), fabric(), |addr| {
        let mut w = HandWorker::connect(addr);
        let a = match w.fetch() {
            ToWorker::Assign(a) => a,
            other => panic!("expected an assignment, got {other:?}"),
        };
        let records = chunk_records(&campaign, &plan, a.start, a.len);
        let complete = ToCoordinator::Complete {
            chunk: a.chunk,
            sub_seed: a.sub_seed,
            records,
        };
        w.send(&complete);
        assert_eq!(w.recv(), ToWorker::Ack);
        // The same completion again — a retry after a lost Ack, say.
        w.send(&complete);
        assert_eq!(w.recv(), ToWorker::Ack, "duplicates are deduplicated");
        drop(w);
        run_worker(addr, "finisher", None).expect("finisher completes");
    })
    .expect("campaign completes");
    assert_eq!(serial.to_bytes(), truth.to_bytes());
}

#[test]
fn malformed_completions_are_rejected_with_typed_errors_not_panics() {
    let p = sum_program();
    let serial = Campaign::try_new(&p, &[], config())
        .expect("valid config")
        .run();
    let campaign = Campaign::try_new(&p, &[], config()).expect("valid config");
    let plan = campaign.plan().expect("plan");
    let truth = with_coordinator(&p, config(), fabric(), |addr| {
        // Wrong sub-seed: a completion from some other campaign.
        let mut w = HandWorker::connect(addr);
        let a = match w.fetch() {
            ToWorker::Assign(a) => a,
            other => panic!("expected an assignment, got {other:?}"),
        };
        let records = chunk_records(&campaign, &plan, a.start, a.len);
        w.send(&ToCoordinator::Complete {
            chunk: a.chunk,
            sub_seed: a.sub_seed ^ 1,
            records: records.clone(),
        });
        match w.recv() {
            ToWorker::Error { message } => assert!(message.contains("sub-seed"), "{message}"),
            other => panic!("expected rejection, got {other:?}"),
        }

        // Wrong record count.
        let a = match w.fetch() {
            ToWorker::Assign(a) => a,
            other => panic!("expected an assignment, got {other:?}"),
        };
        w.send(&ToCoordinator::Complete {
            chunk: a.chunk,
            sub_seed: a.sub_seed,
            records: vec![],
        });
        match w.recv() {
            ToWorker::Error { message } => assert!(message.contains("records"), "{message}"),
            other => panic!("expected rejection, got {other:?}"),
        }

        // Records that do not match their specs (shifted by one chunk).
        let a = match w.fetch() {
            ToWorker::Assign(a) => a,
            other => panic!("expected an assignment, got {other:?}"),
        };
        let foreign_start = if a.start == 0 { a.len } else { 0 };
        let wrong = chunk_records(&campaign, &plan, foreign_start, a.len);
        w.send(&ToCoordinator::Complete {
            chunk: a.chunk,
            sub_seed: a.sub_seed,
            records: wrong,
        });
        match w.recv() {
            ToWorker::Error { message } => {
                assert!(message.contains("does not match"), "{message}")
            }
            other => panic!("expected rejection, got {other:?}"),
        }

        // Out-of-range chunk id.
        w.send(&ToCoordinator::Complete {
            chunk: u64::MAX,
            sub_seed: 0,
            records: vec![],
        });
        match w.recv() {
            ToWorker::Error { .. } => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        drop(w);

        // Every rejected chunk was requeued: an honest worker finishes.
        run_worker(addr, "honest", None).expect("honest worker completes");
    })
    .expect("campaign completes despite the vandal");
    assert_eq!(serial.to_bytes(), truth.to_bytes());
}

/// Raises a cancellation flag once a threshold of injections completes.
struct CancelAt<'a> {
    threshold: usize,
    cancel: &'a AtomicBool,
}

impl CampaignProgress for CancelAt<'_> {
    fn injections(&self, done: usize, _total: usize) {
        if done >= self.threshold {
            self.cancel.store(true, Ordering::Relaxed);
        }
    }
}

#[test]
fn interrupted_distributed_campaign_resumes_serially_bit_identically() {
    let p = sum_program();
    let campaign = Campaign::try_new(&p, &[], config()).expect("valid config");
    let uninterrupted = campaign.run();
    let total = uninterrupted.total_injections();
    assert!(total > 256, "need enough work to interrupt mid-way");

    // Distributed run, cancelled mid-way, checkpointing as it goes.
    let cancel = AtomicBool::new(false);
    let sink = MemoryCheckpoint::new();
    let progress = CancelAt {
        threshold: total / 4,
        cancel: &cancel,
    };
    let small_chunks = FabricConfig {
        chunk_size: 16,
        ..fabric()
    };
    let ctrl = RunControl {
        progress: &progress,
        cancel: Some(&cancel),
        checkpoint: Some(&sink),
        checkpoint_interval: 32,
        ..RunControl::new()
    };
    let err = run_distributed(&p, &[], config(), small_chunks, 2, &ctrl)
        .expect_err("must be cancelled mid-way");
    match err {
        FabricError::Campaign(CampaignError::Interrupted {
            reason, completed, ..
        }) => {
            assert_eq!(reason, InterruptReason::Cancelled);
            assert!(completed < total);
        }
        other => panic!("expected an interruption, got {other}"),
    }
    assert!(sink.load().is_some(), "final checkpoint saved");

    // The *serial* campaign resumes the distributed checkpoint: the
    // fingerprint formula is shared, so snapshots interoperate.
    let resumed = campaign
        .run_supervised(&RunControl {
            checkpoint: Some(&sink),
            ..RunControl::new()
        })
        .expect("serial resume completes");
    assert_eq!(resumed.to_bytes(), uninterrupted.to_bytes());
}

#[test]
fn interrupted_serial_campaign_resumes_distributed_bit_identically() {
    let p = sum_program();
    let campaign = Campaign::try_new(&p, &[], config()).expect("valid config");
    let uninterrupted = campaign.run();
    let total = uninterrupted.total_injections();

    let cancel = AtomicBool::new(false);
    let sink = MemoryCheckpoint::new();
    let progress = CancelAt {
        threshold: total / 4,
        cancel: &cancel,
    };
    campaign
        .run_supervised(&RunControl {
            progress: &progress,
            cancel: Some(&cancel),
            checkpoint: Some(&sink),
            checkpoint_interval: 64,
            ..RunControl::new()
        })
        .expect_err("serial run cancelled mid-way");

    // The fabric adopts the serial checkpoint and finishes the remainder.
    let resumed = run_distributed(
        &p,
        &[],
        config(),
        fabric(),
        2,
        &RunControl {
            checkpoint: Some(&sink),
            ..RunControl::new()
        },
    )
    .expect("distributed resume completes");
    assert_eq!(resumed.to_bytes(), uninterrupted.to_bytes());
}

#[test]
fn four_workers_match_serial_bit_for_bit() {
    let p = sum_program();
    let serial = Campaign::try_new(&p, &[], config())
        .expect("valid config")
        .run();
    let distributed = run_distributed(
        &p,
        &[],
        config(),
        FabricConfig {
            chunk_size: 16,
            ..fabric()
        },
        4,
        &RunControl::new(),
    )
    .expect("fabric completes");
    assert_eq!(serial.to_bytes(), distributed.to_bytes());
}

#[test]
fn heartbeat_keeps_a_slow_chunk_leased() {
    let p = sum_program();
    let serial = Campaign::try_new(&p, &[], config())
        .expect("valid config")
        .run();
    let campaign = Campaign::try_new(&p, &[], config()).expect("valid config");
    let plan = campaign.plan().expect("plan");
    let lease = Duration::from_millis(300);
    let truth = with_coordinator(&p, config(), FabricConfig { lease, ..fabric() }, |addr| {
        let mut slow = HandWorker::connect(addr);
        let a = match slow.fetch() {
            ToWorker::Assign(a) => a,
            other => panic!("expected an assignment, got {other:?}"),
        };
        // Straggle for 3 lease periods, heartbeating the whole time.
        for _ in 0..9 {
            std::thread::sleep(lease / 3);
            slow.send(&ToCoordinator::Heartbeat { chunk: a.chunk });
            assert_eq!(slow.recv(), ToWorker::Ack);
        }
        // A second worker drains the rest but must never be handed the
        // heartbeated chunk. The slow worker keeps heartbeating through
        // the drain; `Wait` means only the leased chunk remains.
        let mut other = HandWorker::connect(addr);
        loop {
            slow.send(&ToCoordinator::Heartbeat { chunk: a.chunk });
            assert_eq!(slow.recv(), ToWorker::Ack);
            match other.fetch() {
                ToWorker::Assign(b) => {
                    assert_ne!(b.chunk, a.chunk, "leased chunk must not be reassigned");
                    let records = chunk_records(&campaign, &plan, b.start, b.len);
                    other.send(&ToCoordinator::Complete {
                        chunk: b.chunk,
                        sub_seed: b.sub_seed,
                        records,
                    });
                    match other.recv() {
                        ToWorker::Ack | ToWorker::Done => {}
                        o => panic!("expected Ack, got {o:?}"),
                    }
                }
                ToWorker::Wait { .. } => break,
                ToWorker::Done => panic!("campaign cannot finish without the leased chunk"),
                o => panic!("unexpected reply {o:?}"),
            }
        }
        // Only now does the slow worker deliver: the campaign needs it.
        let records = chunk_records(&campaign, &plan, a.start, a.len);
        slow.send(&ToCoordinator::Complete {
            chunk: a.chunk,
            sub_seed: a.sub_seed,
            records,
        });
        match slow.recv() {
            ToWorker::Ack | ToWorker::Done => {}
            o => panic!("expected Ack, got {o:?}"),
        }
    })
    .expect("campaign completes");
    assert_eq!(serial.to_bytes(), truth.to_bytes());
}

#[test]
fn sub_seeds_are_bound_to_the_campaign_fingerprint() {
    let p = sum_program();
    let plan = Campaign::try_new(&p, &[], config())
        .expect("valid config")
        .plan()
        .expect("plan");
    let other = Campaign::try_new(
        &p,
        &[],
        CampaignConfig {
            bit_stride: 8,
            ..config()
        },
    )
    .expect("valid config")
    .plan()
    .expect("plan");
    assert_ne!(plan.fingerprint, other.fingerprint);
    for chunk in 0..4u64 {
        assert_ne!(
            chunk_sub_seed(plan.fingerprint, chunk),
            chunk_sub_seed(other.fingerprint, chunk),
            "sub-seeds must differ across campaigns"
        );
    }
}
