//! The fabric as a pipeline truth source: distributed preparation must
//! be a *drop-in* for the local campaign — same truths byte-for-byte,
//! same labels, and the same artifact-cache entries, so a cache written
//! by a distributed run is a hit for a local run and vice versa.

use std::sync::Arc;

use glaive::telemetry::TimingRecorder;
use glaive::{truth_key, ArtifactCache, Pipeline, PipelineConfig};
use glaive_bench_suite::control::dijkstra;
use glaive_campaign::DistributedTruthSource;

fn temp_cache(tag: &str) -> ArtifactCache {
    let dir = std::env::temp_dir().join(format!(
        "glaive-campaign-pipeline-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    ArtifactCache::new(dir)
}

#[test]
fn distributed_truth_source_is_a_bit_identical_drop_in() {
    let config = PipelineConfig::quick_test();
    let local = Pipeline::builder(config)
        .build()
        .expect("valid")
        .prepare_benchmark(dijkstra::build(1))
        .expect("local prepares");
    let distributed = Pipeline::builder(config)
        .truth_source(DistributedTruthSource::with_workers(2).arc())
        .build()
        .expect("valid")
        .prepare_benchmark(dijkstra::build(1))
        .expect("distributed prepares");

    assert_eq!(local.truth.to_bytes(), distributed.truth.to_bytes());
    assert_eq!(local.labels, distributed.labels);
    assert_eq!(local.fi_tuples, distributed.fi_tuples);
}

#[test]
fn distributed_truths_land_under_the_local_cache_key() {
    let config = PipelineConfig::quick_test();
    let cache = temp_cache("cache-key");

    Pipeline::builder(config)
        .cache(cache.clone())
        .truth_source(DistributedTruthSource::with_workers(2).arc())
        .build()
        .expect("valid")
        .prepare_benchmark(dijkstra::build(1))
        .expect("distributed prepares");

    let key = truth_key(&dijkstra::build(1), &config.campaign());
    assert!(
        cache.load_truth(key).is_some(),
        "distributed truth cached under the shared key"
    );

    // A local pipeline over the same cache never runs a campaign at all.
    let rec = Arc::new(TimingRecorder::new());
    Pipeline::builder(config)
        .cache(cache)
        .observer(rec.clone())
        .build()
        .expect("valid")
        .prepare_benchmark(dijkstra::build(1))
        .expect("local prepares from cache");
    assert_eq!(rec.cache_counts(), (1, 0), "local run hits the cache");
}
